/// \file test_ensemble.cpp
/// \brief Monte Carlo ensembles: spec validation and expansion, the JSON
/// round trip through the tagged spec union, the Welford reduction, and the
/// thread-count determinism contract (job-order accumulation means the
/// statistics are bit-identical for 1, 2 or 8 workers).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "experiments/ensemble.hpp"
#include "experiments/metrics.hpp"
#include "experiments/scenarios.hpp"
#include "io/json.hpp"
#include "io/spec_json.hpp"

namespace {

using ehsim::ModelError;
using ehsim::experiments::BatchKernel;
using ehsim::experiments::BatchOptions;
using ehsim::experiments::BatchStats;
using ehsim::experiments::EnsembleProbeStats;
using ehsim::experiments::EnsembleResult;
using ehsim::experiments::EnsembleSpec;
using ehsim::experiments::EnsembleStat;
using ehsim::experiments::ExcitationEvent;
using ehsim::experiments::ExperimentSpec;
using ehsim::experiments::ProbeSpec;
using ehsim::experiments::RandomWalkParams;
using ehsim::experiments::WelfordAccumulator;
using ehsim::io::JsonValue;

/// Miniature drifting-ambient experiment: one seeded random walk plus a
/// recorded power probe, short enough to run a dozen replicas per test.
ExperimentSpec walk_spec() {
  ExperimentSpec spec;
  spec.name = "ens-test";
  spec.duration = 1.0;
  spec.pre_tuned_hz = 70.0;
  spec.with_mcu = true;
  spec.power_bin_width = 0.25;
  spec.excitation.initial_frequency_hz = 70.0;
  RandomWalkParams walk;
  walk.step_interval = 0.1;
  walk.frequency_sigma = 0.4;
  walk.seed = 11;
  walk.min_frequency_hz = 60.0;
  walk.max_frequency_hz = 80.0;
  spec.excitation.random_walk(0.2, 0.7, walk);
  ProbeSpec power;
  power.label = "Pgen";
  power.kind = ProbeSpec::Kind::kGeneratorPower;
  power.record = false;
  spec.probes.push_back(power);
  return spec;
}

EnsembleSpec small_ensemble() {
  EnsembleSpec ensemble;
  ensemble.base = walk_spec();
  ensemble.seeds = {3, 1, 7};
  return ensemble;
}

void expect_stat_eq(const EnsembleStat& a, const EnsembleStat& b) {
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stderr_mean, b.stderr_mean);
  EXPECT_EQ(a.minimum, b.minimum);
  EXPECT_EQ(a.maximum, b.maximum);
}

/// Bitwise equality of the reduced statistics (the determinism contract).
void expect_stats_identical(const EnsembleResult& a, const EnsembleResult& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.engine, b.engine);
  EXPECT_EQ(a.seeds, b.seeds);
  expect_stat_eq(a.final_vc, b.final_vc);
  expect_stat_eq(a.final_resonance_hz, b.final_resonance_hz);
  expect_stat_eq(a.rms_power_before, b.rms_power_before);
  expect_stat_eq(a.rms_power_after, b.rms_power_after);
  ASSERT_EQ(a.probes.size(), b.probes.size());
  for (std::size_t i = 0; i < a.probes.size(); ++i) {
    EXPECT_EQ(a.probes[i].label, b.probes[i].label);
    expect_stat_eq(a.probes[i].final_value, b.probes[i].final_value);
    expect_stat_eq(a.probes[i].minimum, b.probes[i].minimum);
    expect_stat_eq(a.probes[i].maximum, b.probes[i].maximum);
    expect_stat_eq(a.probes[i].mean, b.probes[i].mean);
    expect_stat_eq(a.probes[i].rms, b.probes[i].rms);
  }
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].scenario, b.runs[i].scenario);
    EXPECT_EQ(a.runs[i].final_vc, b.runs[i].final_vc);
    EXPECT_EQ(a.runs[i].stats.steps, b.runs[i].stats.steps);
  }
}

// ---- Welford reduction ------------------------------------------------------

TEST(Welford, MatchesDirectFormulas) {
  const std::vector<double> samples = {1.5, -0.25, 3.0, 2.25, 0.5};
  WelfordAccumulator acc;
  double sum = 0.0;
  for (const double x : samples) {
    acc.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(samples.size());
  double ss = 0.0;
  for (const double x : samples) {
    ss += (x - mean) * (x - mean);
  }
  const double variance = ss / static_cast<double>(samples.size() - 1);
  EXPECT_EQ(acc.count(), samples.size());
  EXPECT_NEAR(acc.mean(), mean, 1e-15);
  EXPECT_NEAR(acc.variance(), variance, 1e-14);
  EXPECT_NEAR(acc.standard_error(),
              std::sqrt(variance / static_cast<double>(samples.size())), 1e-14);
  EXPECT_EQ(acc.minimum(), -0.25);
  EXPECT_EQ(acc.maximum(), 3.0);
}

TEST(Welford, SingleSampleHasZeroVariance) {
  WelfordAccumulator acc;
  acc.add(42.0);
  EXPECT_EQ(acc.mean(), 42.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.standard_error(), 0.0);
}

// ---- spec validation and expansion -----------------------------------------

TEST(EnsembleSpecTest, RejectsBaseWithoutRandomWalk) {
  EnsembleSpec ensemble = small_ensemble();
  ensemble.base.excitation.events.clear();
  EXPECT_THROW(ensemble.validate(), ModelError);
}

TEST(EnsembleSpecTest, RejectsBothAndNeitherSeedForms) {
  EnsembleSpec both = small_ensemble();
  both.num_seeds = 4;
  EXPECT_THROW(both.validate(), ModelError);

  EnsembleSpec neither = small_ensemble();
  neither.seeds.clear();
  EXPECT_THROW(neither.validate(), ModelError);
}

TEST(EnsembleSpecTest, RejectsFewerThanTwoReplicasAndDuplicateSeeds) {
  EnsembleSpec one = small_ensemble();
  one.seeds = {5};
  EXPECT_THROW(one.validate(), ModelError);

  EnsembleSpec dup = small_ensemble();
  dup.seeds = {3, 9, 3};
  EXPECT_THROW(dup.validate(), ModelError);
}

TEST(EnsembleSpecTest, NumSeedsGeneratesOneThroughN) {
  EnsembleSpec ensemble = small_ensemble();
  ensemble.seeds.clear();
  ensemble.num_seeds = 4;
  ensemble.validate();
  EXPECT_EQ(ensemble.replica_seeds(), (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

TEST(EnsembleSpecTest, ExpandNamesReplicasAndReseedsEveryWalk) {
  const EnsembleSpec ensemble = small_ensemble();
  const std::vector<ExperimentSpec> replicas = ensemble.expand();
  ASSERT_EQ(replicas.size(), 3u);
  EXPECT_EQ(replicas[0].name, "ens-test/seed=3");
  EXPECT_EQ(replicas[1].name, "ens-test/seed=1");
  EXPECT_EQ(replicas[2].name, "ens-test/seed=7");

  std::vector<std::uint64_t> walk_seeds;
  for (const ExperimentSpec& replica : replicas) {
    for (const ExcitationEvent& event : replica.excitation.events) {
      if (event.kind == ExcitationEvent::Kind::kRandomWalk) {
        walk_seeds.push_back(event.walk.seed);
      }
    }
  }
  ASSERT_EQ(walk_seeds.size(), 3u);
  // Reseeded: distinct across replicas, never the base seed, and stable
  // (expand() twice gives the same seeds — no hidden global state).
  EXPECT_NE(walk_seeds[0], walk_seeds[1]);
  EXPECT_NE(walk_seeds[0], walk_seeds[2]);
  EXPECT_NE(walk_seeds[1], walk_seeds[2]);
  for (const std::uint64_t seed : walk_seeds) {
    EXPECT_NE(seed, 11u);
  }
  const std::vector<ExperimentSpec> again = ensemble.expand();
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    EXPECT_EQ(replicas[i], again[i]);
  }
}

// ---- JSON round trip through the tagged spec union -------------------------

TEST(EnsembleSpecTest, RoundTripsThroughJsonBothSeedForms) {
  EnsembleSpec explicit_seeds = small_ensemble();
  explicit_seeds.threads = 2;
  explicit_seeds.warm_start = true;
  explicit_seeds.batch_kernel = BatchKernel::kLockstep;
  const JsonValue a = ehsim::io::to_json(explicit_seeds);
  EXPECT_EQ(a.at("type").as_string(), "ensemble");
  EXPECT_EQ(ehsim::io::ensemble_from_json(JsonValue::parse(a.dump(2))), explicit_seeds);

  EnsembleSpec counted = small_ensemble();
  counted.seeds.clear();
  counted.num_seeds = 5;
  const JsonValue b = ehsim::io::to_json(counted);
  EXPECT_FALSE(b.contains("seeds"));
  EXPECT_EQ(ehsim::io::ensemble_from_json(JsonValue::parse(b.dump(2))), counted);
}

TEST(EnsembleSpecTest, SpecUnionDispatchesEnsembleDocuments) {
  const EnsembleSpec ensemble = small_ensemble();
  const ehsim::io::AnySpec any = ehsim::io::spec_from_json(ehsim::io::to_json(ensemble));
  EXPECT_EQ(any.type_id(), std::string("ensemble"));
  ASSERT_NE(any.get_if<EnsembleSpec>(), nullptr);
  EXPECT_EQ(*any.get_if<EnsembleSpec>(), ensemble);
  EXPECT_EQ(any.get_if<ExperimentSpec>(), nullptr);
}

TEST(EnsembleSpecTest, JsonRejectsMalformedSeedLists) {
  const JsonValue document = ehsim::io::to_json(small_ensemble());

  JsonValue unknown = document;
  unknown.set("surprise", JsonValue(1.0));
  EXPECT_THROW((void)ehsim::io::ensemble_from_json(unknown), ModelError);

  JsonValue negative = document;
  JsonValue seeds = JsonValue::make_array();
  seeds.push_back(JsonValue(-3.0));
  negative.set("seeds", seeds);
  EXPECT_THROW((void)ehsim::io::ensemble_from_json(negative), ModelError);

  JsonValue fractional = document;
  seeds = JsonValue::make_array();
  seeds.push_back(JsonValue(1.5));
  fractional.set("seeds", seeds);
  EXPECT_THROW((void)ehsim::io::ensemble_from_json(fractional), ModelError);
}

// ---- the reduction and its determinism contract ----------------------------

TEST(EnsembleRun, StatisticsAgreeWithPerReplicaResults) {
  const EnsembleSpec ensemble = small_ensemble();
  const EnsembleResult result = ehsim::experiments::run_ensemble(ensemble);
  ASSERT_EQ(result.runs.size(), 3u);
  EXPECT_EQ(result.name, "ens-test");
  EXPECT_EQ(result.seeds, (std::vector<std::uint64_t>{3, 1, 7}));

  WelfordAccumulator direct;
  for (const auto& run : result.runs) {
    direct.add(run.final_vc);
  }
  EXPECT_EQ(result.final_vc.mean, direct.mean());
  EXPECT_EQ(result.final_vc.stderr_mean, direct.standard_error());
  EXPECT_EQ(result.final_vc.minimum, direct.minimum());
  EXPECT_EQ(result.final_vc.maximum, direct.maximum());

  // Different walk seeds must actually produce different trajectories, or
  // the "ensemble" is vacuous and stderr collapses to zero.
  EXPECT_GT(result.final_vc.maximum, result.final_vc.minimum);
  EXPECT_GT(result.final_vc.stderr_mean, 0.0);

  ASSERT_EQ(result.probes.size(), 1u);
  EXPECT_EQ(result.probes[0].label, "Pgen");
  WelfordAccumulator probe_mean;
  for (const auto& run : result.runs) {
    probe_mean.add(run.probes[0].mean);
  }
  EXPECT_EQ(result.probes[0].mean.mean, probe_mean.mean());
}

TEST(EnsembleRun, BitIdenticalAcrossWorkerCounts) {
  EnsembleSpec ensemble = small_ensemble();
  ensemble.seeds = {3, 1, 7, 12, 5};

  BatchOptions options;
  options.threads = 1;
  const EnsembleResult serial = ehsim::experiments::run_ensemble(ensemble, options);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    options.threads = threads;
    const EnsembleResult parallel = ehsim::experiments::run_ensemble(ensemble, options);
    expect_stats_identical(serial, parallel);
  }
}

TEST(EnsembleRun, LockstepKernelSharesWorkAcrossReplicas) {
  EnsembleSpec ensemble = small_ensemble();
  ensemble.batch_kernel = BatchKernel::kLockstep;

  BatchStats stats;
  const EnsembleResult result = ehsim::experiments::run_ensemble(ensemble, &stats);
  EXPECT_EQ(stats.jobs, 3u);
  // Seed replicas differ only in their drift realisation, so the lockstep
  // kernel must group them and share factorisations instead of running
  // three isolated sessions.
  EXPECT_GT(stats.lockstep_groups, 0u);
  EXPECT_GT(stats.shared_factorisations, 0u);

  // Sharing is an implementation detail of the lockstep march, not a
  // licence for nondeterminism: a second lockstep execution reproduces the
  // ensemble statistics bit for bit.
  const EnsembleResult again = ehsim::experiments::run_ensemble(ensemble);
  expect_stats_identical(result, again);
}

}  // namespace
