/// \file test_checkpoint.cpp
/// \brief Checkpoint/restart contract: a killed run resumed from its last
/// checkpoint file is bit-identical (modulo cpu_seconds) to an uninterrupted
/// run with the same checkpoint options — across both engine families, all
/// three batch kernels, mid-multistep-history boundaries, mid-PWL-segment
/// excitation and seeded random-walk drift.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "experiments/scenarios.hpp"
#include "experiments/sweep.hpp"
#include "sim/checkpoint.hpp"

namespace {

using ehsim::ModelError;
using ehsim::experiments::BatchKernel;
using ehsim::experiments::BatchOptions;
using ehsim::experiments::CheckpointOptions;
using ehsim::experiments::EngineKind;
using ehsim::experiments::ExperimentSpec;
using ehsim::experiments::ProbeSpec;
using ehsim::experiments::RandomWalkParams;
using ehsim::experiments::RunOptions;
using ehsim::experiments::ScenarioJob;
using ehsim::experiments::ScenarioResult;
using ehsim::experiments::SweepAxis;
using ehsim::experiments::SweepSpec;

/// Fresh scratch directory per test (removed on destruction).
struct ScratchDir {
  std::filesystem::path path;
  explicit ScratchDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() / ("ehsim_ckpt_" + name)) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScratchDir() { std::filesystem::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
};

/// Miniature retune experiment: MCU on, a mid-run frequency step (PWL
/// segment change), a recorded probe and a threshold probe.
ExperimentSpec small_spec(EngineKind kind = EngineKind::kProposed) {
  ExperimentSpec spec;
  spec.name = "ckpt-test";
  spec.duration = 2.0;
  spec.pre_tuned_hz = 70.0;
  spec.with_mcu = true;
  spec.trace_interval = 0.02;
  spec.power_bin_width = 0.25;
  spec.engine = kind;
  spec.excitation.initial_frequency_hz = 70.0;
  spec.excitation.step_frequency(0.9, 71.0);
  ProbeSpec power;
  power.label = "Pgen";
  power.kind = ProbeSpec::Kind::kGeneratorPower;
  power.threshold = 1e-6;
  spec.probes.push_back(power);
  ProbeSpec state;
  state.label = "sleep_duty";
  state.kind = ProbeSpec::Kind::kMcuState;
  state.target = "sleep";
  state.record = false;
  spec.probes.push_back(state);
  return spec;
}

/// Bitwise equality of everything a result reports except the wall-clock
/// fields (cpu_seconds is execution cost, not simulation state).
void expect_identical(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.scenario, b.scenario);
  EXPECT_EQ(a.engine, b.engine);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.stats.steps, b.stats.steps);
  EXPECT_EQ(a.stats.jacobian_builds, b.stats.jacobian_builds);
  EXPECT_EQ(a.stats.jacobian_reuses, b.stats.jacobian_reuses);
  EXPECT_EQ(a.stats.algebraic_solves, b.stats.algebraic_solves);
  EXPECT_EQ(a.stats.newton_iterations, b.stats.newton_iterations);
  EXPECT_EQ(a.stats.lu_factorisations, b.stats.lu_factorisations);
  EXPECT_EQ(a.stats.stability_recomputes, b.stats.stability_recomputes);
  EXPECT_EQ(a.stats.history_resets, b.stats.history_resets);
  EXPECT_EQ(a.stats.step_rejections, b.stats.step_rejections);
  EXPECT_EQ(a.stats.last_step, b.stats.last_step);
  EXPECT_EQ(a.stats.min_step, b.stats.min_step);
  EXPECT_EQ(a.warm_start, b.warm_start);
  EXPECT_EQ(a.initial_terminals, b.initial_terminals);
  EXPECT_EQ(a.batch_kernel, b.batch_kernel);
  EXPECT_EQ(a.lockstep_groups, b.lockstep_groups);
  EXPECT_EQ(a.shared_factorisations, b.shared_factorisations);
  EXPECT_EQ(a.expm_segments, b.expm_segments);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.vc, b.vc);
  EXPECT_EQ(a.power_time, b.power_time);
  EXPECT_EQ(a.power_mean, b.power_mean);
  EXPECT_EQ(a.power_rms, b.power_rms);
  ASSERT_EQ(a.probes.size(), b.probes.size());
  for (std::size_t i = 0; i < a.probes.size(); ++i) {
    EXPECT_EQ(a.probes[i].label, b.probes[i].label);
    EXPECT_EQ(a.probes[i].samples, b.probes[i].samples);
    EXPECT_EQ(a.probes[i].covered_time, b.probes[i].covered_time);
    EXPECT_EQ(a.probes[i].final_value, b.probes[i].final_value);
    EXPECT_EQ(a.probes[i].minimum, b.probes[i].minimum);
    EXPECT_EQ(a.probes[i].maximum, b.probes[i].maximum);
    EXPECT_EQ(a.probes[i].mean, b.probes[i].mean);
    EXPECT_EQ(a.probes[i].rms, b.probes[i].rms);
    EXPECT_EQ(a.probes[i].duty_cycle, b.probes[i].duty_cycle);
    EXPECT_EQ(a.probes[i].crossings, b.probes[i].crossings);
    EXPECT_EQ(a.probes[i].trace, b.probes[i].trace);
  }
  ASSERT_EQ(a.mcu_events.size(), b.mcu_events.size());
  for (std::size_t i = 0; i < a.mcu_events.size(); ++i) {
    EXPECT_EQ(a.mcu_events[i].time, b.mcu_events[i].time);
    EXPECT_EQ(a.mcu_events[i].type, b.mcu_events[i].type);
    EXPECT_EQ(a.mcu_events[i].value, b.mcu_events[i].value);
  }
  EXPECT_EQ(a.final_resonance_hz, b.final_resonance_hz);
  EXPECT_EQ(a.final_vc, b.final_vc);
  EXPECT_EQ(a.rms_power_before, b.rms_power_before);
  EXPECT_EQ(a.rms_power_after, b.rms_power_after);
}

/// Run the spec twice with identical checkpoint cadence: once straight
/// through, once killed after \p abort_after checkpoints and resumed from
/// the files left on disk. Both must agree bit for bit.
void check_kill_resume(const ExperimentSpec& spec, double every, int abort_after,
                       const std::string& tag) {
  ScratchDir full_dir(tag + "_full");
  ScratchDir kill_dir(tag + "_kill");
  CheckpointOptions full;
  full.every = every;
  full.dir = full_dir.str();
  const auto uninterrupted = run_experiment_checkpointed(spec, RunOptions{}, full);
  ASSERT_TRUE(uninterrupted.has_value());

  CheckpointOptions kill = full;
  kill.dir = kill_dir.str();
  kill.abort_after = abort_after;
  ASSERT_FALSE(run_experiment_checkpointed(spec, RunOptions{}, kill).has_value());

  CheckpointOptions resume;
  resume.every = every;
  resume.dir = kill_dir.str();
  resume.resume = true;
  const auto resumed = run_experiment_checkpointed(spec, RunOptions{}, resume);
  ASSERT_TRUE(resumed.has_value());
  expect_identical(*uninterrupted, *resumed);
}

TEST(Checkpoint, KillResumeBitIdenticalProposed) {
  // 0.37 s boundaries land mid-multistep-history and mid-PWL-sine-segment;
  // the retune burst is in flight across several of them.
  check_kill_resume(small_spec(EngineKind::kProposed), 0.37, 2, "proposed");
}

TEST(Checkpoint, KillResumeBitIdenticalBaselineNr) {
  check_kill_resume(small_spec(EngineKind::kPspice), 0.37, 2, "pspice");
}

TEST(Checkpoint, KillResumeBitIdenticalEventBoundary) {
  // Boundaries aligned with the excitation step (0.9) and MCU activity.
  ExperimentSpec spec = small_spec(EngineKind::kProposed);
  check_kill_resume(spec, 0.45, 1, "event_boundary");
}

TEST(Checkpoint, KillResumeAtExactParameterEventBoundary) {
  // The MCU watchdog wakes at exactly the checkpoint cut (period ==
  // checkpoint cadence), and the wake's load-mode switch bumps the supercap
  // epoch *at* the boundary — so the saved document carries a pending epoch
  // bump: the blocks already advanced past the epoch the engine last
  // consumed. Restore used to refuse this legitimate state ("model epoch
  // does not match"); the resumed engine must instead re-notice the
  // discontinuity on its next step, exactly like the uninterrupted run.
  // (This is the scenario1 ambient-shift failure — watchdog wake at t = 60
  // on an every = 30 cut — shrunk to unit-test size.)
  ExperimentSpec spec = small_spec(EngineKind::kProposed);
  spec.overrides.push_back(
      ehsim::experiments::ParamOverride{"mcu.watchdog_period", 0.5});
  {
    ScratchDir dir("pending_epoch_doc");
    CheckpointOptions options;
    options.every = 0.5;
    options.dir = dir.str();
    options.abort_after = 1;
    ASSERT_FALSE(run_experiment_checkpointed(spec, RunOptions{}, options).has_value());
    const ehsim::sim::Checkpoint checkpoint =
        ehsim::sim::Checkpoint::read_file(checkpoint_file_path(options, spec.name));
    const auto& payload = checkpoint.payload;
    const std::uint64_t engine_epoch =
        static_cast<std::uint64_t>(payload.at("engine").at("last_epoch").as_number());
    const auto& harvester = payload.at("sections").at("harvester");
    const std::uint64_t model_epoch =
        static_cast<std::uint64_t>(harvester.at("generator_epoch").as_number()) +
        static_cast<std::uint64_t>(harvester.at("multiplier_epoch").as_number()) +
        static_cast<std::uint64_t>(harvester.at("supercap_epoch").as_number());
    // The regression only stays armed while the cut actually straddles the
    // event: blocks ahead of the engine inside one committed document.
    EXPECT_GT(model_epoch, engine_epoch);
  }
  check_kill_resume(spec, 0.5, 1, "pending_epoch");
  ExperimentSpec nr_spec = small_spec(EngineKind::kPspice);
  nr_spec.overrides = spec.overrides;
  check_kill_resume(nr_spec, 0.5, 1, "pending_epoch_nr");
}

TEST(Checkpoint, KillResumeBitIdenticalRandomWalkDrift) {
  ExperimentSpec spec = small_spec(EngineKind::kProposed);
  spec.excitation = {};
  spec.excitation.initial_frequency_hz = 70.0;
  RandomWalkParams walk;
  walk.step_interval = 0.1;
  walk.frequency_sigma = 0.4;
  walk.amplitude_sigma = 0.02;
  walk.seed = 42;
  spec.excitation.random_walk(0.2, 1.5, walk);
  // Kill mid-walk: the resumed run must continue the same drift realisation
  // (the checkpoint's expansion cursor pins the RNG stream position).
  EXPECT_GT(spec.excitation.expansion_cursor(1.0), 2u);
  check_kill_resume(spec, 0.33, 2, "drift");
}

TEST(Checkpoint, ResumeRejectsDifferentSpec) {
  ScratchDir dir("spec_mismatch");
  ExperimentSpec spec = small_spec();
  CheckpointOptions options;
  options.every = 0.5;
  options.dir = dir.str();
  options.abort_after = 1;
  ASSERT_FALSE(run_experiment_checkpointed(spec, RunOptions{}, options).has_value());

  ExperimentSpec other = spec;
  other.excitation.events[0].frequency_hz = 72.0;  // same name, different physics
  CheckpointOptions resume;
  resume.dir = dir.str();
  resume.resume = true;
  EXPECT_THROW((void)run_experiment_checkpointed(other, RunOptions{}, resume), ModelError);
}

TEST(Checkpoint, ResumeWithoutFilesStartsFresh) {
  ScratchDir ref_dir("fresh_ref");
  ScratchDir dir("fresh");
  ExperimentSpec spec = small_spec();
  CheckpointOptions reference;
  reference.every = 0.5;
  reference.dir = ref_dir.str();
  const auto straight = run_experiment_checkpointed(spec, RunOptions{}, reference);
  CheckpointOptions resume;
  resume.every = 0.5;
  resume.dir = dir.str();
  resume.resume = true;  // nothing on disk: a plain start
  const auto fresh = run_experiment_checkpointed(spec, RunOptions{}, resume);
  ASSERT_TRUE(straight.has_value());
  ASSERT_TRUE(fresh.has_value());
  expect_identical(*straight, *fresh);
}

// ---- sweeps across all three batch kernels --------------------------------

SweepSpec small_sweep(BatchKernel kernel) {
  SweepSpec sweep;
  sweep.base = small_spec();
  sweep.base.name = "ckpt-sweep";
  sweep.base.probes.clear();  // keep the sweep lean
  sweep.threads = 2;
  sweep.batch_kernel = kernel;
  SweepAxis axis;
  axis.param = "excitation.event[0].frequency_hz";
  axis.values = {70.5, 71.0, 71.5};
  sweep.axes.push_back(axis);
  return sweep;
}

void check_sweep_kill_resume(BatchKernel kernel, const std::string& tag) {
  const SweepSpec sweep = small_sweep(kernel);
  BatchOptions options;
  options.threads = 2;
  options.batch_kernel = kernel;

  ScratchDir full_dir(tag + "_full");
  CheckpointOptions full;
  full.every = 0.6;
  full.dir = full_dir.str();
  const auto uninterrupted = run_sweep_checkpointed(sweep, options, full);
  ASSERT_TRUE(uninterrupted.has_value());

  ScratchDir kill_dir(tag + "_kill");
  CheckpointOptions kill = full;
  kill.dir = kill_dir.str();
  kill.abort_after = 1;
  ASSERT_FALSE(run_sweep_checkpointed(sweep, options, kill).has_value());

  CheckpointOptions resume;
  resume.every = 0.6;
  resume.dir = kill_dir.str();
  resume.resume = true;
  const auto resumed = run_sweep_checkpointed(sweep, options, resume);
  ASSERT_TRUE(resumed.has_value());
  ASSERT_EQ(uninterrupted->size(), resumed->size());
  for (std::size_t i = 0; i < uninterrupted->size(); ++i) {
    expect_identical((*uninterrupted)[i], (*resumed)[i]);
  }
}

TEST(Checkpoint, SweepKillResumeJobs) { check_sweep_kill_resume(BatchKernel::kJobs, "jobs"); }

TEST(Checkpoint, SweepKillResumeLockstep) {
  check_sweep_kill_resume(BatchKernel::kLockstep, "lockstep");
}

TEST(Checkpoint, SweepKillResumeLockstepExpm) {
  check_sweep_kill_resume(BatchKernel::kLockstepExpm, "lockstep_expm");
}

TEST(Checkpoint, LockstepCheckpointRefusesJobsResume) {
  const SweepSpec sweep = small_sweep(BatchKernel::kLockstep);
  BatchOptions lockstep;
  lockstep.threads = 1;
  lockstep.batch_kernel = BatchKernel::kLockstep;
  ScratchDir dir("kernel_mismatch");
  CheckpointOptions options;
  options.every = 0.6;
  options.dir = dir.str();
  options.abort_after = 1;
  ASSERT_FALSE(run_sweep_checkpointed(sweep, lockstep, options).has_value());

  BatchOptions jobs;
  jobs.threads = 1;
  jobs.batch_kernel = BatchKernel::kJobs;
  CheckpointOptions resume;
  resume.dir = dir.str();
  resume.resume = true;
  EXPECT_THROW((void)run_sweep_checkpointed(sweep, jobs, resume), ModelError);
}

// ---- document strictness --------------------------------------------------

TEST(Checkpoint, DocumentRejectsUnknownKeysAndWrongVersion) {
  using ehsim::io::JsonValue;
  using ehsim::sim::Checkpoint;
  Checkpoint checkpoint;
  checkpoint.payload = JsonValue::make_object();
  JsonValue doc = checkpoint.to_json();
  JsonValue extra = doc;
  extra.set("surprise", 1.0);
  EXPECT_THROW((void)Checkpoint::from_json(extra), ModelError);
  JsonValue wrong_version = doc;
  wrong_version.set("version", 999.0);
  EXPECT_THROW((void)Checkpoint::from_json(wrong_version), ModelError);
  JsonValue wrong_type = doc;
  wrong_type.set("type", "ehsim_result");
  EXPECT_THROW((void)Checkpoint::from_json(wrong_type), ModelError);
}

}  // namespace
