/// \file test_baseline_nr.cpp
/// \brief Newton-Raphson baseline engine tests ("existing technique").
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baseline/nr_engine.hpp"
#include "core/linearised_solver.hpp"
#include "support/test_blocks.hpp"

namespace {

using ehsim::baseline::BaselineMethod;
using ehsim::baseline::NrEngine;
using ehsim::baseline::NrEngineConfig;
using ehsim::baseline::pspice_profile;
using ehsim::baseline::systemca_profile;
using ehsim::baseline::systemvision_profile;
using ehsim::core::SystemAssembler;
using ehsim::testing::CapacitorBlock;
using ehsim::testing::CubicDecayBlock;
using ehsim::testing::SourceResistorBlock;

struct RcSystem {
  SystemAssembler assembler;
  ehsim::core::BlockHandle source;
  double r = 10.0;
  double c = 0.05;

  RcSystem() {
    source = assembler.add_block(
        std::make_unique<SourceResistorBlock>([](double) { return 1.0; }, r));
    const auto cap = assembler.add_block(std::make_unique<CapacitorBlock>(c, 0.0));
    const auto v = assembler.net("V");
    const auto i = assembler.net("I");
    assembler.bind(source, 0, v);
    assembler.bind(source, 1, i);
    assembler.bind(cap, 0, v);
    assembler.bind(cap, 1, i);
    assembler.elaborate();
  }
};

class NrMethods : public ::testing::TestWithParam<BaselineMethod> {};

TEST_P(NrMethods, RcChargingMatchesAnalytic) {
  RcSystem rc;
  NrEngineConfig config;
  config.method = GetParam();
  NrEngine engine(rc.assembler, config);
  engine.initialise(0.0);
  engine.advance_to(1.5);  // tau = 0.5 -> 3 tau
  EXPECT_NEAR(engine.state()[0], 1.0 - std::exp(-3.0), 5e-3);
  EXPECT_NEAR(engine.terminals()[0], engine.state()[0], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Methods, NrMethods,
                         ::testing::Values(BaselineMethod::kBackwardEuler,
                                           BaselineMethod::kTrapezoidal,
                                           BaselineMethod::kGear2));

TEST(NrEngine, StiffSystemTakesLargeSteps) {
  // tau = 1e-5 but the implicit method cruises at h >> tau once the fast
  // transient is over — the defining advantage an implicit method has, and
  // the reason its *per-step* cost (NR + LU) is what the paper attacks.
  SystemAssembler assembler;
  const auto source = assembler.add_block(
      std::make_unique<SourceResistorBlock>([](double) { return 1.0; }, 1.0));
  const auto cap = assembler.add_block(std::make_unique<CapacitorBlock>(1e-5, 0.0));
  const auto v = assembler.net("V");
  const auto i = assembler.net("I");
  assembler.bind(source, 0, v);
  assembler.bind(source, 1, i);
  assembler.bind(cap, 0, v);
  assembler.bind(cap, 1, i);
  assembler.elaborate();

  NrEngineConfig config;  // uncapped: the profiles' AMS-style ceilings don't apply
  config.h_max = 5e-4;
  NrEngine engine(assembler, config);
  engine.initialise(0.0);
  engine.advance_to(0.1);
  EXPECT_NEAR(engine.state()[0], 1.0, 1e-5);
  EXPECT_GT(engine.stats().max_step, 1e-4);  // far beyond the explicit limit (~2e-5)
}

TEST(NrEngine, NewtonStatsAccumulate) {
  RcSystem rc;
  NrEngine engine(rc.assembler, systemvision_profile());
  engine.initialise(0.0);
  engine.advance_to(0.5);
  const auto& stats = engine.stats();
  EXPECT_GT(stats.steps, 0u);
  EXPECT_GT(stats.newton_iterations, 0u);
  EXPECT_GT(stats.lu_factorisations, 0u);
  EXPECT_GE(stats.newton_iterations, stats.steps);  // >= 1 NR iter per step
}

TEST(NrEngine, AgreesWithProposedEngineOnNonlinearPlant) {
  // The paper's accuracy claim: the linearised explicit engine matches "a
  // classical analogue solver". Run both on the same non-linear block.
  auto make = [] {
    auto assembler = std::make_unique<SystemAssembler>();
    assembler->add_block(std::make_unique<CubicDecayBlock>(1.0, 2.0));
    assembler->elaborate();
    return assembler;
  };
  auto sys_a = make();
  auto sys_b = make();

  ehsim::core::SolverConfig proposed_config;
  proposed_config.h_max = 1e-3;
  ehsim::core::LinearisedSolver proposed(*sys_a, proposed_config);
  proposed.initialise(0.0);
  proposed.advance_to(1.0);

  NrEngineConfig nr_config;
  nr_config.lte_rel_tol = 1e-5;
  NrEngine reference(*sys_b, nr_config);
  reference.initialise(0.0);
  reference.advance_to(1.0);

  EXPECT_NEAR(proposed.state()[0], reference.state()[0], 5e-4);
}

TEST(NrEngine, EpochChangeResetsMultistepHistory) {
  RcSystem rc;
  NrEngine engine(rc.assembler, pspice_profile());
  engine.initialise(0.0);
  engine.advance_to(0.2);
  const auto before = engine.stats().history_resets;
  rc.assembler.block_as<SourceResistorBlock>(rc.source).set_resistance(50.0);
  engine.advance_to(0.4);
  EXPECT_EQ(engine.stats().history_resets, before + 1);
}

TEST(NrEngine, ProfilesCarryDistinctNames) {
  EXPECT_STREQ(systemvision_profile().profile_name, "systemvision-vhdl-ams");
  EXPECT_STREQ(pspice_profile().profile_name, "orcad-pspice");
  EXPECT_STREQ(systemca_profile().profile_name, "systemc-a-newton");
}

TEST(NrEngine, PspiceProfileHonoursPrintStepCap) {
  RcSystem rc;
  NrEngine engine(rc.assembler, pspice_profile());
  engine.initialise(0.0);
  engine.advance_to(0.05);
  EXPECT_LE(engine.stats().max_step, pspice_profile().h_max * (1.0 + 1e-12));
}

TEST(NrEngine, ObserverReceivesAcceptedPoints) {
  RcSystem rc;
  NrEngine engine(rc.assembler, systemvision_profile());
  std::size_t count = 0;
  double last_t = -1.0;
  engine.add_observer([&](double t, std::span<const double>, std::span<const double>) {
    EXPECT_GT(t, last_t);
    last_t = t;
    ++count;
  });
  engine.initialise(0.0);
  engine.advance_to(0.2);
  EXPECT_GT(count, 5u);
  EXPECT_DOUBLE_EQ(last_t, 0.2);
}

TEST(NrEngine, AdvanceBeforeInitialiseThrows) {
  RcSystem rc;
  NrEngine engine(rc.assembler);
  EXPECT_THROW(engine.advance_to(1.0), ehsim::SolverError);
}

}  // namespace
