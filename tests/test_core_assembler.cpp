/// \file test_core_assembler.cpp
/// \brief System assembly and global Jacobian stacking tests (paper §III-E).
#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "core/assembler.hpp"
#include "linalg/lu.hpp"
#include "support/test_blocks.hpp"

namespace {

using ehsim::ModelError;
using ehsim::core::SystemAssembler;
using ehsim::linalg::Matrix;
using ehsim::testing::CapacitorBlock;
using ehsim::testing::OscillatorBlock;
using ehsim::testing::SourceResistorBlock;

/// RC circuit: source-resistor + capacitor over shared (V, I) nets.
struct RcFixture {
  SystemAssembler assembler;
  ehsim::core::BlockHandle source;
  ehsim::core::BlockHandle cap;

  explicit RcFixture(double r = 10.0, double c = 0.5, double vc0 = 0.0) {
    source = assembler.add_block(
        std::make_unique<SourceResistorBlock>([](double) { return 1.0; }, r));
    cap = assembler.add_block(std::make_unique<CapacitorBlock>(c, vc0));
    const auto v = assembler.net("V");
    const auto i = assembler.net("I");
    assembler.bind(source, 0, v);
    assembler.bind(source, 1, i);
    assembler.bind(cap, 0, v);
    assembler.bind(cap, 1, i);
    assembler.elaborate();
  }
};

TEST(Assembler, DimensionsAfterElaboration) {
  RcFixture rc;
  EXPECT_EQ(rc.assembler.num_states(), 1u);
  EXPECT_EQ(rc.assembler.num_nets(), 2u);
  EXPECT_EQ(rc.assembler.num_blocks(), 2u);
  EXPECT_TRUE(rc.assembler.elaborated());
}

TEST(Assembler, StateNamesAreQualified) {
  RcFixture rc;
  const auto names = rc.assembler.state_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "cap.vc");
}

TEST(Assembler, NetLookup) {
  RcFixture rc;
  ASSERT_TRUE(rc.assembler.find_net("V").has_value());
  ASSERT_TRUE(rc.assembler.find_net("I").has_value());
  EXPECT_FALSE(rc.assembler.find_net("missing").has_value());
  const auto names = rc.assembler.net_names();
  EXPECT_EQ(names[0], "V");
  EXPECT_EQ(names[1], "I");
}

TEST(Assembler, NetHandleIsIdempotent) {
  SystemAssembler assembler;
  const auto a = assembler.net("X");
  const auto b = assembler.net("X");
  EXPECT_EQ(a.index, b.index);
}

TEST(Assembler, UnboundTerminalFailsElaboration) {
  SystemAssembler assembler;
  const auto cap = assembler.add_block(std::make_unique<CapacitorBlock>(1.0, 0.0));
  assembler.bind(cap, 0, assembler.net("V"));
  // terminal 1 left unbound
  EXPECT_THROW(assembler.elaborate(), ModelError);
}

TEST(Assembler, NonSquareAlgebraicSystemFails) {
  // One capacitor alone: 1 algebraic row but 2 nets -> not square.
  SystemAssembler assembler;
  const auto cap = assembler.add_block(std::make_unique<CapacitorBlock>(1.0, 0.0));
  assembler.bind(cap, 0, assembler.net("V"));
  assembler.bind(cap, 1, assembler.net("I"));
  EXPECT_THROW(assembler.elaborate(), ModelError);
}

TEST(Assembler, DoubleBindRejected) {
  SystemAssembler assembler;
  const auto cap = assembler.add_block(std::make_unique<CapacitorBlock>(1.0, 0.0));
  const auto v = assembler.net("V");
  assembler.bind(cap, 0, v);
  EXPECT_THROW(assembler.bind(cap, 0, v), ModelError);
}

TEST(Assembler, MutationAfterElaborationRejected) {
  RcFixture rc;
  EXPECT_THROW(rc.assembler.add_block(std::make_unique<CapacitorBlock>(1.0, 0.0)),
               ModelError);
  EXPECT_THROW(rc.assembler.net("new"), ModelError);
}

TEST(Assembler, InitialStateGathersFromBlocks) {
  RcFixture rc(10.0, 0.5, 2.5);
  ehsim::linalg::Vector x(1);
  rc.assembler.initial_state(x.span());
  EXPECT_DOUBLE_EQ(x[0], 2.5);
}

TEST(Assembler, EvalStacksResiduals) {
  RcFixture rc(10.0, 0.5, 0.0);
  ehsim::linalg::Vector x{0.0};
  ehsim::linalg::Vector y{0.0, 0.0};  // V = 0, I = 0
  ehsim::linalg::Vector fx(1);
  ehsim::linalg::Vector fy(2);
  rc.assembler.eval(0.0, x.span(), y.span(), fx.span(), fy.span());
  // Source row: V - Vs + R I = -1; cap row: V - vc = 0.
  EXPECT_DOUBLE_EQ(fy[0], -1.0);
  EXPECT_DOUBLE_EQ(fy[1], 0.0);
  EXPECT_DOUBLE_EQ(fx[0], 0.0);
}

TEST(Assembler, GlobalJacobiansMatchHandDerivation) {
  const double r = 10.0;
  const double c = 0.5;
  RcFixture rc(r, c);
  ehsim::linalg::Vector x{0.0};
  ehsim::linalg::Vector y{0.0, 0.0};
  Matrix jxx, jxy, jyx, jyy;
  rc.assembler.jacobians(0.0, x.span(), y.span(), jxx, jxy, jyx, jyy);

  ASSERT_EQ(jxx.rows(), 1u);
  ASSERT_EQ(jyy.rows(), 2u);
  EXPECT_DOUBLE_EQ(jxx(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(jxy(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(jxy(0, 1), 1.0 / c);
  // Row 0: source (V, I); row 1: capacitor (V - vc).
  EXPECT_DOUBLE_EQ(jyy(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(jyy(0, 1), r);
  EXPECT_DOUBLE_EQ(jyy(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(jyy(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(jyx(1, 0), -1.0);
}

TEST(Assembler, EliminationReproducesRcTimeConstant) {
  // A = Jxx - Jxy Jyy^-1 Jyx must equal -1/(R C) for the RC circuit.
  const double r = 10.0;
  const double c = 0.5;
  RcFixture rc(r, c);
  ehsim::linalg::Vector x{0.0};
  ehsim::linalg::Vector y{0.0, 0.0};
  Matrix jxx, jxy, jyx, jyy;
  rc.assembler.jacobians(0.0, x.span(), y.span(), jxx, jxy, jyx, jyy);
  const Matrix jyy_inv = ehsim::linalg::inverse(jyy);
  const Matrix a = jxx - jxy * (jyy_inv * jyx);
  EXPECT_NEAR(a(0, 0), -1.0 / (r * c), 1e-12);
}

TEST(Assembler, TotalEpochSumsBlockEpochs) {
  RcFixture rc;
  const auto before = rc.assembler.total_epoch();
  rc.assembler.block_as<SourceResistorBlock>(rc.source).set_resistance(20.0);
  EXPECT_EQ(rc.assembler.total_epoch(), before + 1);
}

TEST(Assembler, BlockAsTypeMismatchThrows) {
  RcFixture rc;
  EXPECT_THROW((void)rc.assembler.block_as<CapacitorBlock>(rc.source), ModelError);
}

TEST(Assembler, StateIndexMapping) {
  SystemAssembler assembler;
  const auto osc = assembler.add_block(std::make_unique<OscillatorBlock>(1.0, 0.1, 1.0));
  const auto cubic =
      assembler.add_block(std::make_unique<ehsim::testing::CubicDecayBlock>(1.0, 1.0));
  assembler.elaborate();
  EXPECT_EQ(assembler.state_offset(osc), 0u);
  EXPECT_EQ(assembler.state_offset(cubic), 2u);
  EXPECT_EQ(assembler.state_index(cubic, 0), 2u);
  EXPECT_THROW((void)assembler.state_index(cubic, 1), ModelError);
}

TEST(Assembler, EmptyElaborationRejected) {
  SystemAssembler assembler;
  EXPECT_THROW(assembler.elaborate(), ModelError);
}

TEST(Assembler, BlocksWithoutTerminalsNeedNoNets) {
  SystemAssembler assembler;
  assembler.add_block(std::make_unique<OscillatorBlock>(2.0, 0.05, 1.0));
  assembler.elaborate();
  EXPECT_EQ(assembler.num_states(), 2u);
  EXPECT_EQ(assembler.num_nets(), 0u);
}

}  // namespace
