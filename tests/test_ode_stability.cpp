/// \file test_ode_stability.cpp
/// \brief Stability-limit tests (paper Eqs. 6-7) for the explicit march.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "linalg/eigen.hpp"
#include "ode/stability.hpp"

namespace {

using ehsim::linalg::Matrix;
using ehsim::ode::ab_real_axis_stability_limit;
using ehsim::ode::ab_root_amplification;
using ehsim::ode::ab_scalar_stable;
using ehsim::ode::is_ab_step_stable;
using ehsim::ode::max_stable_step;
using ehsim::ode::max_stable_step_spectral;
using ehsim::ode::refine_stable_step;
using ehsim::ode::StabilityLimitSource;

TEST(AbScalarStability, RealAxisLimitsMatchTheory) {
  // Known real-axis absolute-stability intervals (-L, 0):
  // AB1: 2, AB2: 1, AB3: 6/11, AB4: 0.3.
  for (std::size_t order = 1; order <= 4; ++order) {
    const double limit = ab_real_axis_stability_limit(order);
    EXPECT_TRUE(ab_scalar_stable({-0.98 * limit, 0.0}, order)) << "order " << order;
    EXPECT_FALSE(ab_scalar_stable({-1.05 * limit, 0.0}, order)) << "order " << order;
  }
}

TEST(AbScalarStability, OriginIsMarginallyStable) {
  for (std::size_t order = 1; order <= 4; ++order) {
    EXPECT_TRUE(ab_scalar_stable({0.0, 0.0}, order));
    EXPECT_NEAR(ab_root_amplification({0.0, 0.0}, order), 1.0, 1e-9);
  }
}

TEST(AbScalarStability, ForwardEulerCircle) {
  // AB1 = FE: stability region |1 + mu| <= 1.
  EXPECT_TRUE(ab_scalar_stable({-1.0, 0.9}, 1));
  EXPECT_FALSE(ab_scalar_stable({-1.0, 1.1}, 1));
  EXPECT_FALSE(ab_scalar_stable({0.0, 0.5}, 1));  // imaginary axis unstable
}

TEST(AbScalarStability, Ab3IncludesImaginarySegment) {
  // AB3's region famously includes a segment of the imaginary axis
  // (roughly up to |mu| ~ 0.72); AB2's does not.
  EXPECT_TRUE(ab_scalar_stable({0.0, 0.4}, 3));
  EXPECT_FALSE(ab_scalar_stable({0.0, 0.4}, 2));
  EXPECT_FALSE(ab_scalar_stable({0.0, 0.8}, 3));
}

TEST(AbScalarStability, AmplificationGrowsWithMu) {
  const double a1 = ab_root_amplification({-0.5, 0.0}, 2);
  const double a2 = ab_root_amplification({-1.5, 0.0}, 2);
  EXPECT_LT(a1, 1.0);
  EXPECT_GT(a2, 1.0);
}

TEST(MaxStableStep, DominantDiagonalUsesGershgorinPath) {
  const Matrix a{{-100.0, 10.0}, {10.0, -100.0}};
  const auto limit = max_stable_step(a, 1, 1.0);
  EXPECT_EQ(limit.source, StabilityLimitSource::kDiagonalDominance);
  EXPECT_NEAR(limit.h_max, 2.0 / 110.0, 1e-12);
}

TEST(MaxStableStep, OscillatorFallsBackToSpectralEstimate) {
  const Matrix a{{0.0, 1.0}, {-1e4, -10.0}};
  const auto limit = max_stable_step(a, 2, 1.0);
  EXPECT_EQ(limit.source, StabilityLimitSource::kPowerIteration);
  EXPECT_GT(limit.h_max, 0.0);
}

TEST(MaxStableStep, ZeroMatrixUnbounded) {
  const Matrix a(3, 3);
  const auto limit = max_stable_step(a, 2, 1.0);
  EXPECT_EQ(limit.source, StabilityLimitSource::kUnbounded);
  EXPECT_TRUE(std::isinf(limit.h_max));
}

TEST(SpectralStep, MatchesRealAxisTheoryForDiagonalSystem) {
  // Single mode lambda = -1000: h_max = L(order)/1000.
  const std::vector<std::complex<double>> spectrum{{-1000.0, 0.0}};
  for (std::size_t order = 1; order <= 4; ++order) {
    const double h = max_stable_step_spectral(spectrum, order, 1.0);
    EXPECT_NEAR(h, ab_real_axis_stability_limit(order) / 1000.0, 1e-6) << "order " << order;
  }
}

TEST(SpectralStep, LightlyDampedModeCanBind) {
  // A slow real mode plus a fast lightly damped oscillator: the oscillator
  // (not the real mode) binds, because the AB2 region near the imaginary
  // axis only extends to |mu| ~ 0.4. The naive real-axis scaling would get
  // this wrong — the regression test for the harvester's mechanical mode.
  const double w = 440.0;
  const double zeta = 0.005;
  const std::vector<std::complex<double>> spectrum{
      {-100.0, 0.0},
      {-zeta * w, w},
      {-zeta * w, -w},
  };
  const double h = max_stable_step_spectral(spectrum, 2, 1.0);
  // Must be stricter than the real-mode-only limit 1/100.
  EXPECT_LT(h, 1.0 / 100.0);
  // And every mode must actually be stable at the returned step.
  for (const auto& lambda : spectrum) {
    EXPECT_TRUE(ab_scalar_stable(lambda * h, 2));
  }
  // The boundary is tight for the oscillator pair.
  EXPECT_FALSE(ab_scalar_stable(spectrum[1] * (1.3 * h), 2));
}

TEST(SpectralStep, IntegratorModesImposeNoConstraint) {
  const std::vector<std::complex<double>> spectrum{{0.0, 0.0}, {-10.0, 0.0}};
  const double h = max_stable_step_spectral(spectrum, 1, 1.0);
  EXPECT_NEAR(h, 0.2, 1e-6);
}

TEST(SpectralStep, UpperBoundRespected) {
  const std::vector<std::complex<double>> spectrum{{-1.0, 0.0}};
  EXPECT_DOUBLE_EQ(max_stable_step_spectral(spectrum, 1, 0.05), 0.05);
}

TEST(IsAbStepStable, AgreesWithBruteForceOnOscillator) {
  const double w = 100.0;
  const double zeta = 0.05;
  const Matrix a{{0.0, 1.0}, {-w * w, -2.0 * zeta * w}};
  const double h_ok = 0.5 * 2.0 * zeta / w;   // well inside for FE
  const double h_bad = 10.0 * 2.0 * zeta / w; // well outside
  EXPECT_TRUE(is_ab_step_stable(a, 1, h_ok));
  EXPECT_FALSE(is_ab_step_stable(a, 1, h_bad));
  EXPECT_TRUE(ehsim::ode::is_step_empirically_stable(a, h_ok));
  EXPECT_FALSE(ehsim::ode::is_step_empirically_stable(a, h_bad));
}

TEST(RefineStableStep, ReturnsZeroBelowFloor) {
  Matrix a(1, 1);
  a(0, 0) = -1e9;
  EXPECT_EQ(refine_stable_step(a, 2, 1.0, 1e-3), 0.0);
}

TEST(RefineStableStep, KeepsCandidateWhenStable) {
  Matrix a(1, 1);
  a(0, 0) = -1.0;
  EXPECT_NEAR(refine_stable_step(a, 1, 0.1, 1e-9), 0.1, 1e-12);
}

/// Property: across orders and spectra, the returned step is stable and
/// 1.3x the returned step is unstable (boundary tightness), for binding
/// constraints strictly inside the upper bound.
struct SpectrumCase {
  const char* name;
  std::vector<std::complex<double>> spectrum;
};

class SpectralBoundary : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(SpectralBoundary, ReturnedStepIsTightlyStable) {
  const std::size_t order = std::get<0>(GetParam());
  const int which = std::get<1>(GetParam());
  std::vector<std::complex<double>> spectrum;
  switch (which) {
    case 0:
      spectrum = {{-5000.0, 0.0}, {-20.0, 0.0}};
      break;
    case 1:
      spectrum = {{-40.0, 800.0}, {-40.0, -800.0}};
      break;
    default:
      spectrum = {{-3000.0, 0.0}, {-5.0, 500.0}, {-5.0, -500.0}, {0.0, 0.0}};
      break;
  }
  const double h = max_stable_step_spectral(spectrum, order, 1.0);
  ASSERT_GT(h, 0.0);
  ASSERT_LT(h, 1.0);  // binding
  for (const auto& lambda : spectrum) {
    EXPECT_TRUE(ab_scalar_stable(lambda * h, order, 1e-6))
        << "order " << order << " case " << which;
  }
  bool any_unstable = false;
  for (const auto& lambda : spectrum) {
    any_unstable = any_unstable || !ab_scalar_stable(lambda * h * 1.3, order);
  }
  EXPECT_TRUE(any_unstable) << "boundary not tight: order " << order << " case " << which;
}

INSTANTIATE_TEST_SUITE_P(OrdersAndSpectra, SpectralBoundary,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                                            ::testing::Values(0, 1, 2)));

}  // namespace
