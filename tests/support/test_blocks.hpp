/// \file test_blocks.hpp
/// \brief Small analytic blocks shared by the core/baseline engine tests.
///
/// The canonical test system is a series RC circuit split into two blocks
/// joined by a (V, I) terminal net pair — the smallest system exercising the
/// paper's Eq. 4 terminal elimination with a known analytic solution
/// vc(t) = Vs + (vc0 - Vs) exp(-t/RC).
#pragma once

#include <cmath>
#include <functional>

#include "core/block.hpp"

namespace ehsim::testing {

/// Thevenin source: fy = V - Vs(t) + R*I (terminals: 0 = V, 1 = I).
class SourceResistorBlock final : public core::AnalogBlock {
 public:
  SourceResistorBlock(std::function<double(double)> vs, double r)
      : core::AnalogBlock("source", 0, 2, 1), vs_(std::move(vs)), r_(r) {}

  void set_resistance(double r) {
    r_ = r;
    bump_epoch();
  }
  [[nodiscard]] double resistance() const noexcept { return r_; }

  void eval(double t, std::span<const double>, std::span<const double> y,
            std::span<double>, std::span<double> fy) const override {
    fy[0] = y[0] - vs_(t) + r_ * y[1];
  }

  void jacobians(double, std::span<const double>, std::span<const double>,
                 linalg::Matrix&, linalg::Matrix&, linalg::Matrix&,
                 linalg::Matrix& jyy) const override {
    jyy(0, 0) = 1.0;
    jyy(0, 1) = r_;
  }

  [[nodiscard]] std::string terminal_name(std::size_t i) const override {
    return i == 0 ? "V" : "I";
  }

 private:
  std::function<double(double)> vs_;
  double r_;
};

/// Grounded capacitor: state vc; dvc/dt = I/C; fy = V - vc.
class CapacitorBlock final : public core::AnalogBlock {
 public:
  CapacitorBlock(double c, double vc0)
      : core::AnalogBlock("cap", 1, 2, 1), c_(c), vc0_(vc0) {}

  void initial_state(std::span<double> x) const override { x[0] = vc0_; }

  void eval(double, std::span<const double> x, std::span<const double> y,
            std::span<double> fx, std::span<double> fy) const override {
    fx[0] = y[1] / c_;
    fy[0] = y[0] - x[0];
  }

  void jacobians(double, std::span<const double>, std::span<const double>,
                 linalg::Matrix&, linalg::Matrix& jxy, linalg::Matrix& jyx,
                 linalg::Matrix& jyy) const override {
    jxy(0, 1) = 1.0 / c_;
    jyx(0, 0) = -1.0;
    jyy(0, 0) = 1.0;
  }

  [[nodiscard]] std::string state_name(std::size_t) const override { return "vc"; }

 private:
  double c_;
  double vc0_;
};

/// Standalone damped oscillator: x'' + 2 zeta w x' + w^2 x = 0.
class OscillatorBlock final : public core::AnalogBlock {
 public:
  OscillatorBlock(double omega, double zeta, double x0)
      : core::AnalogBlock("osc", 2, 0, 0), omega_(omega), zeta_(zeta), x0_(x0) {}

  void initial_state(std::span<double> x) const override {
    x[0] = x0_;
    x[1] = 0.0;
  }

  void eval(double, std::span<const double> x, std::span<const double>,
            std::span<double> fx, std::span<double>) const override {
    fx[0] = x[1];
    fx[1] = -omega_ * omega_ * x[0] - 2.0 * zeta_ * omega_ * x[1];
  }

  void jacobians(double, std::span<const double>, std::span<const double>,
                 linalg::Matrix& jxx, linalg::Matrix&, linalg::Matrix&,
                 linalg::Matrix&) const override {
    jxx(0, 1) = 1.0;
    jxx(1, 0) = -omega_ * omega_;
    jxx(1, 1) = -2.0 * zeta_ * omega_;
  }

 private:
  double omega_;
  double zeta_;
  double x0_;
};

/// Non-linear scalar decay dx/dt = -k x^3 (exercises per-step linearisation;
/// analytic solution x(t) = x0 / sqrt(1 + 2 k x0^2 t)).
class CubicDecayBlock final : public core::AnalogBlock {
 public:
  CubicDecayBlock(double k, double x0)
      : core::AnalogBlock("cubic", 1, 0, 0), k_(k), x0_(x0) {}

  void initial_state(std::span<double> x) const override { x[0] = x0_; }

  void eval(double, std::span<const double> x, std::span<const double>,
            std::span<double> fx, std::span<double>) const override {
    fx[0] = -k_ * x[0] * x[0] * x[0];
  }

  void jacobians(double, std::span<const double> x, std::span<const double>,
                 linalg::Matrix& jxx, linalg::Matrix&, linalg::Matrix&,
                 linalg::Matrix&) const override {
    jxx(0, 0) = -3.0 * k_ * x[0] * x[0];
  }

  [[nodiscard]] double analytic(double t) const {
    return x0_ / std::sqrt(1.0 + 2.0 * k_ * x0_ * x0_ * t);
  }

 private:
  double k_;
  double x0_;
};

}  // namespace ehsim::testing
