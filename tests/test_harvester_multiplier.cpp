/// \file test_harvester_multiplier.cpp
/// \brief Dickson voltage multiplier block tests (paper Eq. 14).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>

#include "core/linearised_solver.hpp"
#include "harvester/dickson_multiplier.hpp"
#include "linalg/matrix.hpp"

namespace {

using ehsim::core::SystemAssembler;
using ehsim::harvester::DeviceEvalMode;
using ehsim::harvester::DicksonMultiplier;
using ehsim::harvester::MultiplierParams;
using ehsim::linalg::Matrix;
using ehsim::linalg::Vector;

MultiplierParams small_params(std::size_t stages = 5) {
  MultiplierParams p;
  p.stages = stages;
  return p;
}

TEST(Multiplier, Dimensions) {
  DicksonMultiplier mult(small_params(5), DeviceEvalMode::kPwlTable);
  EXPECT_EQ(mult.num_states(), 6u);  // 5 pump caps + filter node
  EXPECT_EQ(mult.num_terminals(), 4u);
  EXPECT_EQ(mult.num_algebraic(), 2u);
  EXPECT_EQ(mult.state_name(4), "V5");
  EXPECT_EQ(mult.state_name(5), "Vf");
  EXPECT_EQ(mult.terminal_name(2), "Vc");
}

TEST(Multiplier, DiodeVoltagesFollowTopology) {
  DicksonMultiplier mult(small_params(3), DeviceEvalMode::kPwlTable);
  // States: V1, V2, V3, Vf.
  Vector x{0.1, 0.2, 0.3, 0.5};
  Vector y{0.5, 0.0, 1.0, 0.0};  // Vm, Im, Vc, Ic
  // node0 = 0; node1 = V1 + Vf (odd); node2 = V2; node3 = V3 + Vf.
  EXPECT_NEAR(mult.diode_voltage(1, x.span(), y.span()), 0.0 - (0.1 + 0.5), 1e-15);
  EXPECT_NEAR(mult.diode_voltage(2, x.span(), y.span()), (0.1 + 0.5) - 0.2, 1e-15);
  EXPECT_NEAR(mult.diode_voltage(3, x.span(), y.span()), 0.2 - (0.3 + 0.5), 1e-15);
  EXPECT_NEAR(mult.diode_voltage(4, x.span(), y.span()), (0.3 + 0.5) - 1.0, 1e-15);
}

TEST(Multiplier, JacobiansMatchFiniteDifferences) {
  for (auto mode : {DeviceEvalMode::kPwlTable, DeviceEvalMode::kExactShockley}) {
    DicksonMultiplier mult(small_params(4), mode);
    const std::size_t n = mult.num_states();
    Vector x(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = 0.15 * static_cast<double>(i) - 0.1;
    }
    Vector y{0.4, 1e-4, 1.2, 1e-5};
    Matrix jxx(n, n), jxy(n, 4), jyx(2, n), jyy(2, 4);
    mult.jacobians(0.0, x.span(), y.span(), jxx, jxy, jyx, jyy);

    Vector fx0(n), fy0(2), fx1(n), fy1(2);
    mult.eval(0.0, x.span(), y.span(), fx0.span(), fy0.span());
    const double eps = 1e-8;
    for (std::size_t j = 0; j < n; ++j) {
      Vector xp = x;
      xp[j] += eps;
      mult.eval(0.0, xp.span(), y.span(), fx1.span(), fy1.span());
      for (std::size_t i = 0; i < n; ++i) {
        const double fd = (fx1[i] - fx0[i]) / eps;
        EXPECT_NEAR(jxx(i, j), fd, 1e-3 * std::max(1.0, std::abs(fd)) + 1e-6)
            << "mode " << static_cast<int>(mode) << " dfx" << i << "/dx" << j;
      }
      for (std::size_t i = 0; i < 2; ++i) {
        const double fd = (fy1[i] - fy0[i]) / eps;
        EXPECT_NEAR(jyx(i, j), fd, 1e-3 * std::max(1.0, std::abs(fd)) + 1e-9);
      }
    }
    for (std::size_t j = 0; j < 4; ++j) {
      Vector yp = y;
      yp[j] += eps;
      mult.eval(0.0, x.span(), yp.span(), fx1.span(), fy1.span());
      for (std::size_t i = 0; i < n; ++i) {
        const double fd = (fx1[i] - fx0[i]) / eps;
        EXPECT_NEAR(jxy(i, j), fd, 1e-3 * std::max(1.0, std::abs(fd)) + 1e-6);
      }
      for (std::size_t i = 0; i < 2; ++i) {
        const double fd = (fy1[i] - fy0[i]) / eps;
        EXPECT_NEAR(jyy(i, j), fd, 1e-3 * std::max(1.0, std::abs(fd)) + 1e-9);
      }
    }
  }
}

TEST(Multiplier, PwlAndExactModesAgreeAtModerateBias) {
  // Within the tabulated bias range (the table ends where G hits g_max,
  // ~0.18 V here; beyond it the PWL device is deliberately ohmic).
  DicksonMultiplier pwl(small_params(3), DeviceEvalMode::kPwlTable);
  DicksonMultiplier exact(small_params(3), DeviceEvalMode::kExactShockley);
  Vector x{0.02, 0.04, 0.06, 0.1};
  Vector y{0.1, 0.0, 0.2, 0.0};
  Vector fx_p(4), fy_p(2), fx_e(4), fy_e(2);
  pwl.eval(0.0, x.span(), y.span(), fx_p.span(), fy_p.span());
  exact.eval(0.0, x.span(), y.span(), fx_e.span(), fy_e.span());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(fx_p[i], fx_e[i], 5e-3 * std::max(1.0, std::abs(fx_e[i])) + 1e-4);
  }
}

/// Drive the multiplier from a stiff voltage source and observe the charge
/// pump in action: a harness with source block + multiplier + load.
struct PumpHarness {
  SystemAssembler assembler;
  ehsim::core::BlockHandle mult_handle;
  double amplitude;
  double r_load;

  /// Source: Vm follows vs(t) through a tiny series resistance.
  class StiffSource final : public ehsim::core::AnalogBlock {
   public:
    StiffSource(double amp, double hz)
        : AnalogBlock("src", 0, 2, 1), amp_(amp), w_(2.0 * std::numbers::pi * hz) {}
    void eval(double t, std::span<const double>, std::span<const double> y,
              std::span<double>, std::span<double> fy) const override {
      fy[0] = y[0] - amp_ * std::sin(w_ * t) + 1.0 * y[1];
    }
    void jacobians(double, std::span<const double>, std::span<const double>,
                   Matrix&, Matrix&, Matrix&, Matrix& jyy) const override {
      jyy(0, 0) = 1.0;
      jyy(0, 1) = 1.0;
    }

   private:
    double amp_;
    double w_;
  };

  /// Resistive load at the output port: fy = Ic - Vc/R (current INTO the
  /// port equals the load draw).
  class LoadBlock final : public ehsim::core::AnalogBlock {
   public:
    explicit LoadBlock(double r) : AnalogBlock("load", 1, 2, 1), r_(r) {}
    void initial_state(std::span<double> x) const override { x[0] = 0.0; }
    // Buffer capacitor so the output port has a state: C dv/dt = Ic - v/R.
    void eval(double, std::span<const double> x, std::span<const double> y,
              std::span<double> fx, std::span<double> fy) const override {
      constexpr double c = 1e-5;
      fx[0] = (y[1] - x[0] / r_) / c;
      fy[0] = y[0] - x[0];
    }
    void jacobians(double, std::span<const double>, std::span<const double>,
                   Matrix& jxx, Matrix& jxy, Matrix& jyx, Matrix& jyy) const override {
      constexpr double c = 1e-5;
      jxx(0, 0) = -1.0 / (r_ * c);
      jxy(0, 1) = 1.0 / c;
      jyx(0, 0) = -1.0;
      jyy(0, 0) = 1.0;
    }

   private:
    double r_;
  };

  PumpHarness(std::size_t stages, double amp, double r) : amplitude(amp), r_load(r) {
    const auto src = assembler.add_block(std::make_unique<StiffSource>(amp, 70.0));
    mult_handle = assembler.add_block(
        std::make_unique<DicksonMultiplier>(small_params(stages), DeviceEvalMode::kPwlTable));
    const auto load = assembler.add_block(std::make_unique<LoadBlock>(r));
    const auto vm = assembler.net("Vm");
    const auto im = assembler.net("Im");
    const auto vc = assembler.net("Vc");
    const auto ic = assembler.net("Ic");
    assembler.bind(src, 0, vm);
    assembler.bind(src, 1, im);
    assembler.bind(mult_handle, DicksonMultiplier::kVm, vm);
    assembler.bind(mult_handle, DicksonMultiplier::kIm, im);
    assembler.bind(mult_handle, DicksonMultiplier::kVc, vc);
    assembler.bind(mult_handle, DicksonMultiplier::kIc, ic);
    assembler.bind(load, 0, vc);
    assembler.bind(load, 1, ic);
    assembler.elaborate();
  }

  /// Run and return the lightly-loaded output voltage.
  double settled_output(double t_end) {
    ehsim::core::LinearisedSolver solver(assembler);
    solver.initialise(0.0);
    solver.advance_to(t_end);
    return solver.state()[assembler.num_states() - 1];  // load cap voltage
  }
};

TEST(Multiplier, PumpsChargeAboveInputAmplitude) {
  PumpHarness harness(3, 1.0, 1e6);
  const double vout = harness.settled_output(2.0);
  // A 3-stage pump from a 1 V amplitude must exceed the input peak by a
  // comfortable margin (ideal would approach ~3(Vp - Vd)).
  EXPECT_GT(vout, 1.3);
}

TEST(Multiplier, OutputGrowsWithStageCount) {
  PumpHarness three(3, 1.0, 1e6);
  PumpHarness five(5, 1.0, 1e6);
  const double v3 = three.settled_output(2.5);
  const double v5 = five.settled_output(2.5);
  EXPECT_GT(v5, v3 + 0.4);
}

TEST(Multiplier, HeavierLoadSagsOutput) {
  PumpHarness light(4, 1.0, 1e6);
  PumpHarness heavy(4, 1.0, 2e4);
  EXPECT_GT(light.settled_output(2.0), heavy.settled_output(2.0) + 0.2);
}

TEST(Multiplier, EnergyConservationAtPorts) {
  // Average input power must cover output power plus diode losses (>= 0).
  PumpHarness harness(3, 1.0, 1e5);
  ehsim::core::LinearisedSolver solver(harness.assembler);
  solver.initialise(0.0);
  solver.advance_to(1.0);  // settle
  double e_in = 0.0;
  double e_out = 0.0;
  double t_prev = solver.time();
  const auto& sys = harness.assembler;
  const auto vm = sys.find_net("Vm")->index;
  const auto im = sys.find_net("Im")->index;
  const auto vc = sys.find_net("Vc")->index;
  const auto ic = sys.find_net("Ic")->index;
  solver.add_observer([&](double t, std::span<const double>, std::span<const double> y) {
    const double dt = t - t_prev;
    t_prev = t;
    e_in += y[vm] * y[im] * dt;
    e_out += y[vc] * y[ic] * dt;
  });
  solver.advance_to(2.0);
  EXPECT_GT(e_in, 0.0);
  EXPECT_GT(e_out, 0.0);
  EXPECT_GE(e_in, e_out * 0.999);  // losses are non-negative
  EXPECT_LT(e_out / e_in, 1.0);
  EXPECT_GT(e_out / e_in, 0.3);  // and the pump is not absurdly lossy
}

TEST(Multiplier, InvalidConstruction) {
  MultiplierParams p;
  p.stages = 0;
  EXPECT_THROW(DicksonMultiplier(p, DeviceEvalMode::kPwlTable), ehsim::ModelError);
  MultiplierParams p2;
  p2.stage_capacitance = 0.0;
  EXPECT_THROW(DicksonMultiplier(p2, DeviceEvalMode::kPwlTable), ehsim::ModelError);
}

/// Property sweep over stage count: output monotone in stages at light load.
class MultiplierStageSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MultiplierStageSweep, ProducesDcOutput) {
  const std::size_t stages = GetParam();
  PumpHarness harness(stages, 1.0, 1e6);
  const double vout = harness.settled_output(1.5);
  EXPECT_GT(vout, 0.5 * static_cast<double>(stages) * 0.6);
}

INSTANTIATE_TEST_SUITE_P(Stages, MultiplierStageSweep, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
