/// \file test_core_solver.cpp
/// \brief Tests of the proposed linearised state-space engine (paper §II).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>

#include "common/error.hpp"
#include "core/linearised_solver.hpp"
#include "core/trace.hpp"
#include "support/test_blocks.hpp"

namespace {

using ehsim::SolverError;
using ehsim::core::LinearisedSolver;
using ehsim::core::SolverConfig;
using ehsim::core::SystemAssembler;
using ehsim::core::TraceRecorder;
using ehsim::testing::CapacitorBlock;
using ehsim::testing::CubicDecayBlock;
using ehsim::testing::OscillatorBlock;
using ehsim::testing::SourceResistorBlock;

struct RcSystem {
  SystemAssembler assembler;
  ehsim::core::BlockHandle source;
  double r;
  double c;

  explicit RcSystem(double r_in = 10.0, double c_in = 0.05, double vc0 = 0.0,
                    std::function<double(double)> vs = [](double) { return 1.0; }) {
    r = r_in;
    c = c_in;
    source = assembler.add_block(std::make_unique<SourceResistorBlock>(std::move(vs), r));
    const auto cap = assembler.add_block(std::make_unique<CapacitorBlock>(c, vc0));
    const auto v = assembler.net("V");
    const auto i = assembler.net("I");
    assembler.bind(source, 0, v);
    assembler.bind(source, 1, i);
    assembler.bind(cap, 0, v);
    assembler.bind(cap, 1, i);
    assembler.elaborate();
  }
};

TEST(LinearisedSolver, RcChargingMatchesAnalytic) {
  RcSystem rc;
  LinearisedSolver solver(rc.assembler);
  solver.initialise(0.0);
  const double tau = rc.r * rc.c;
  solver.advance_to(3.0 * tau);
  const double expected = 1.0 - std::exp(-3.0);
  EXPECT_NEAR(solver.state()[0], expected, 2e-4);
  // Terminal variables are consistent at the end point: V = vc, I = (Vs-V)/R.
  EXPECT_NEAR(solver.terminals()[0], solver.state()[0], 1e-9);
  EXPECT_NEAR(solver.terminals()[1], (1.0 - solver.state()[0]) / rc.r, 1e-9);
}

TEST(LinearisedSolver, InitialisationSolvesTerminalsConsistently) {
  RcSystem rc(10.0, 0.05, 0.25);
  LinearisedSolver solver(rc.assembler);
  solver.initialise(0.0);
  EXPECT_NEAR(solver.terminals()[0], 0.25, 1e-9);                 // V = vc0
  EXPECT_NEAR(solver.terminals()[1], (1.0 - 0.25) / 10.0, 1e-9);  // I
}

TEST(LinearisedSolver, AdvanceBeforeInitialiseThrows) {
  RcSystem rc;
  LinearisedSolver solver(rc.assembler);
  EXPECT_THROW(solver.advance_to(1.0), SolverError);
}

TEST(LinearisedSolver, TimeCannotGoBackwards) {
  RcSystem rc;
  LinearisedSolver solver(rc.assembler);
  solver.initialise(0.0);
  solver.advance_to(0.5);
  EXPECT_THROW(solver.advance_to(0.25), SolverError);
}

TEST(LinearisedSolver, LandsExactlyOnTarget) {
  RcSystem rc;
  LinearisedSolver solver(rc.assembler);
  solver.initialise(0.0);
  solver.advance_to(0.123456);
  EXPECT_DOUBLE_EQ(solver.time(), 0.123456);
}

TEST(LinearisedSolver, ObserverSeesMonotoneConsistentPoints) {
  RcSystem rc;
  LinearisedSolver solver(rc.assembler);
  double last_t = -1.0;
  std::size_t count = 0;
  solver.add_observer([&](double t, std::span<const double> x, std::span<const double> y) {
    EXPECT_GT(t, last_t);
    last_t = t;
    EXPECT_NEAR(y[0], x[0], 1e-7);  // V tracks vc at every point
    ++count;
  });
  solver.initialise(0.0);
  solver.advance_to(0.2);
  EXPECT_GT(count, 10u);
}

TEST(LinearisedSolver, CubicDecayTracksAnalyticThroughRelinearisation) {
  // Non-linear plant: each step re-linearises (paper Eq. 2); the LLE
  // monitor sees genuine Jacobian drift here.
  SystemAssembler assembler;
  const auto handle = assembler.add_block(std::make_unique<CubicDecayBlock>(1.0, 2.0));
  assembler.elaborate();
  SolverConfig config;
  config.h_max = 1e-3;
  LinearisedSolver solver(assembler, config);
  solver.initialise(0.0);
  solver.advance_to(1.0);
  const auto& cubic = assembler.block_as<CubicDecayBlock>(handle);
  EXPECT_NEAR(solver.state()[0], cubic.analytic(1.0), 1e-4);
  EXPECT_GT(solver.last_lle_drift(), 0.0);
}

TEST(LinearisedSolver, StabilityCapBindsForStiffRc) {
  // tau = 1e-4: the Eq. 7 cap must keep h near the stability limit and the
  // result must stay finite and accurate.
  RcSystem rc(1.0, 1e-4);
  SolverConfig config;
  config.h_max = 1e-2;  // far beyond the stability limit
  config.max_ab_order = 2;
  LinearisedSolver solver(rc.assembler, config);
  solver.initialise(0.0);
  solver.advance_to(5e-4);
  EXPECT_LT(solver.stability_step_cap(), 2e-4);
  // Running at the stability cap trades per-step accuracy on the fast mode;
  // the solution stays bounded and lands near the analytic value.
  EXPECT_NEAR(solver.state()[0], 1.0 - std::exp(-5.0), 2e-2);
}

TEST(LinearisedSolver, DisabledStabilityCapDivergesOnStiffSystem) {
  // The ablation A3 behaviour: fixed large step without the Eq. 7 cap
  // diverges (this is exactly what the paper's stability argument prevents).
  RcSystem rc(1.0, 1e-5);
  SolverConfig config;
  config.enable_stability_cap = false;
  config.enable_lle_control = false;
  config.fixed_step = 1e-3;  // 100x the stability limit
  LinearisedSolver solver(rc.assembler, config);
  solver.initialise(0.0);
  EXPECT_THROW(solver.advance_to(0.2), SolverError);
}

TEST(LinearisedSolver, OscillatorAmplitudePreservedOverManyPeriods) {
  SystemAssembler assembler;
  const double omega = 2.0 * std::numbers::pi * 70.0;
  const double zeta = 0.01;
  assembler.add_block(std::make_unique<OscillatorBlock>(omega, zeta, 1.0));
  assembler.elaborate();
  SolverConfig config;
  config.h_max = 5e-5;  // resolve the period well (numerical damping ~ h^2)
  LinearisedSolver solver(assembler, config);
  solver.initialise(0.0);
  const double t_end = 10.0 * 2.0 * std::numbers::pi / omega;  // 10 periods
  solver.advance_to(t_end);
  const double expected_envelope = std::exp(-zeta * omega * t_end);
  const double energy_like = std::hypot(solver.state()[0], solver.state()[1] / omega);
  EXPECT_NEAR(energy_like, expected_envelope, 0.02);
}

TEST(LinearisedSolver, EpochChangeResetsHistory) {
  RcSystem rc;
  LinearisedSolver solver(rc.assembler);
  solver.initialise(0.0);
  solver.advance_to(0.1);
  const auto resets_before = solver.stats().history_resets;
  rc.assembler.block_as<SourceResistorBlock>(rc.source).set_resistance(100.0);
  solver.advance_to(0.2);
  EXPECT_EQ(solver.stats().history_resets, resets_before + 1);
}

TEST(LinearisedSolver, ParameterChangeMidRunChangesDynamics) {
  RcSystem rc(10.0, 0.05);
  LinearisedSolver solver(rc.assembler);
  solver.initialise(0.0);
  solver.advance_to(2.0);  // tau = 0.5 s: vc(2) = 1 - e^-4
  const double vc_2 = 1.0 - std::exp(-4.0);
  ASSERT_NEAR(solver.state()[0], vc_2, 2e-3);
  // Weaken the source by 10x: the new time constant is 5 s, so over the
  // next 0.1 s vc moves only ~2% of the remaining gap.
  rc.assembler.block_as<SourceResistorBlock>(rc.source).set_resistance(100.0);
  solver.advance_to(2.1);
  const double expected = 1.0 + (vc_2 - 1.0) * std::exp(-0.1 / 5.0);
  EXPECT_NEAR(solver.state()[0], expected, 2e-3);
}

TEST(LinearisedSolver, StatsArePopulated) {
  RcSystem rc;
  LinearisedSolver solver(rc.assembler);
  solver.initialise(0.0);
  solver.advance_to(0.5);
  const auto& stats = solver.stats();
  EXPECT_GT(stats.steps, 0u);
  EXPECT_GT(stats.jacobian_builds, 0u);
  EXPECT_GT(stats.algebraic_solves, 0u);
  EXPECT_GT(stats.stability_recomputes, 0u);
  EXPECT_GT(stats.max_step, 0.0);
  EXPECT_GT(stats.min_step, 0.0);
  EXPECT_LE(stats.min_step, stats.max_step);
}

TEST(LinearisedSolver, FixedStepModeUsesExactStep) {
  RcSystem rc(10.0, 0.5);  // tau = 5 s, very relaxed
  SolverConfig config;
  config.fixed_step = 1e-3;
  config.enable_lle_control = false;
  LinearisedSolver solver(rc.assembler, config);
  solver.initialise(0.0);
  solver.advance_to(0.1);
  EXPECT_NEAR(solver.stats().max_step, 1e-3, 1e-12);
  // Every step except a possible final alignment sliver is exactly h.
  EXPECT_NEAR(static_cast<double>(solver.stats().steps), 100.0, 2.0);
}

TEST(LinearisedSolver, RejectsBadConfig) {
  RcSystem rc;
  SolverConfig bad;
  bad.max_ab_order = 7;
  EXPECT_THROW(LinearisedSolver(rc.assembler, bad), ehsim::ModelError);
  SolverConfig bad2;
  bad2.h_min = 0.0;
  EXPECT_THROW(LinearisedSolver(rc.assembler, bad2), ehsim::ModelError);
}

TEST(LinearisedSolver, TraceRecorderCapturesWaveform) {
  RcSystem rc;
  LinearisedSolver solver(rc.assembler);
  TraceRecorder trace(solver, 0.0);
  trace.probe_state("cap.vc");
  trace.probe_net("V");
  trace.probe_expression("power",
                         [](std::span<const double>, std::span<const double> y) {
                           return y[0] * y[1];
                         });
  solver.initialise(0.0);
  solver.advance_to(0.5);
  ASSERT_GT(trace.size(), 5u);
  EXPECT_EQ(trace.times().size(), trace.column("cap.vc").size());
  // Monotone charging curve.
  const auto& vc = trace.column("cap.vc");
  EXPECT_LT(vc.front(), vc.back());
  EXPECT_THROW((void)trace.column("nope"), ehsim::ModelError);
}

TEST(LinearisedSolver, HigherOrderIsMoreAccurateOnSmoothProblem) {
  auto run = [](std::size_t order) {
    SystemAssembler assembler;
    const auto handle = assembler.add_block(std::make_unique<CubicDecayBlock>(1.0, 2.0));
    SolverConfig config;
    config.max_ab_order = order;
    config.fixed_step = 2e-3;
    config.enable_lle_control = false;
    LinearisedSolver solver(assembler, config);
    solver.initialise(0.0);
    solver.advance_to(1.0);
    return std::abs(solver.state()[0] -
                    assembler.block_as<CubicDecayBlock>(handle).analytic(1.0));
  };
  EXPECT_LT(run(2), run(1) * 0.5);
}

}  // namespace
