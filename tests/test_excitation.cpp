/// \file test_excitation.cpp
/// \brief ExcitationSchedule / VibrationProfile contract tests: phase
/// continuity across step and chirp boundaries, deterministic seeded
/// random-walk drift, and loud rejection of malformed schedules.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "experiments/excitation.hpp"
#include "harvester/params.hpp"
#include "harvester/vibration_source.hpp"

namespace {

using ehsim::ModelError;
using ehsim::experiments::ExcitationEvent;
using ehsim::experiments::ExcitationSchedule;
using ehsim::experiments::RandomWalkParams;
using ehsim::harvester::VibrationParams;
using ehsim::harvester::VibrationProfile;

VibrationProfile make_profile(double hz = 10.0, double amplitude = 1.0) {
  VibrationParams params;
  params.initial_frequency_hz = hz;
  params.acceleration_amplitude = amplitude;
  return VibrationProfile(params);
}

/// |a(t+eps) - a(t-eps)| for the continuity checks: bounded by the maximum
/// slope |da/dt| = A * 2 pi f around the boundary, with head-room.
void expect_continuous(const VibrationProfile& profile, double t, double f_max,
                       double amplitude) {
  const double eps = 1e-9;
  const double before = profile.acceleration(t - eps);
  const double after = profile.acceleration(t + eps);
  const double slope_bound = amplitude * 2.0 * std::numbers::pi * f_max;
  EXPECT_LE(std::abs(after - before), 10.0 * slope_bound * eps)
      << "discontinuity at t=" << t;
}

TEST(VibrationProfile, FrequencyStepIsPhaseContinuous) {
  VibrationProfile profile = make_profile(10.0);
  profile.set_frequency_at(1.0, 25.0);
  expect_continuous(profile, 1.0, 25.0, 1.0);
  EXPECT_DOUBLE_EQ(profile.frequency_at(0.5), 10.0);
  EXPECT_DOUBLE_EQ(profile.frequency_at(1.5), 25.0);
}

TEST(VibrationProfile, ChirpRampsLinearlyAndStaysContinuous) {
  VibrationProfile profile = make_profile(10.0);
  profile.ramp_frequency(1.0, 2.0, 20.0);  // 10 -> 20 Hz over [1, 3]
  EXPECT_DOUBLE_EQ(profile.frequency_at(1.0), 10.0);
  EXPECT_DOUBLE_EQ(profile.frequency_at(2.0), 15.0);
  EXPECT_DOUBLE_EQ(profile.frequency_at(3.0), 20.0);
  EXPECT_DOUBLE_EQ(profile.frequency_at(4.0), 20.0);
  // Continuous at ramp start and end.
  expect_continuous(profile, 1.0, 20.0, 1.0);
  expect_continuous(profile, 3.0, 20.0, 1.0);
  // The chirp phase matches the analytic integral f0 tau + k tau^2 / 2.
  const double tau = 0.75;
  const double phase_at_start = 2.0 * std::numbers::pi * 10.0 * 1.0;
  const double chirp_phase =
      2.0 * std::numbers::pi * (10.0 * tau + 0.5 * 5.0 * tau * tau);
  EXPECT_NEAR(profile.acceleration(1.0 + tau),
              std::sin(std::fmod(phase_at_start, 2.0 * std::numbers::pi) + chirp_phase),
              1e-9);
}

TEST(VibrationProfile, AmplitudeStepKeepsFrequencyAndPhase) {
  VibrationProfile profile = make_profile(10.0, 2.0);
  profile.set_amplitude_at(1.0, 0.5);
  EXPECT_DOUBLE_EQ(profile.amplitude_at(0.5), 2.0);
  EXPECT_DOUBLE_EQ(profile.amplitude_at(1.5), 0.5);
  EXPECT_DOUBLE_EQ(profile.frequency_at(1.5), 10.0);
  // Phase continuity: the waveform scales, the zero crossings stay put.
  const double eps = 1e-9;
  const double before = profile.acceleration(1.0 - eps) / 2.0;
  const double after = profile.acceleration(1.0 + eps) / 0.5;
  EXPECT_NEAR(before, after, 1e-6);
}

TEST(VibrationProfile, LegacyConstantSegmentsBitIdentical) {
  // The pre-chirp implementation computed
  //   phase = phase0 + 2 pi f (t - t0)
  // exactly; constant-frequency schedules must still produce those bits.
  VibrationProfile profile = make_profile(70.0, 0.59);
  profile.set_frequency_at(60.0, 71.0);
  for (const double t : {0.0, 1.0, 59.999, 60.0, 61.5, 300.0}) {
    double expected;
    if (t < 60.0) {
      expected = 0.59 * std::sin(2.0 * std::numbers::pi * 70.0 * t);
    } else {
      const double phase0 = std::fmod(2.0 * std::numbers::pi * 70.0 * 60.0,
                                      2.0 * std::numbers::pi);
      expected = 0.59 * std::sin(phase0 + 2.0 * std::numbers::pi * 71.0 * (t - 60.0));
    }
    EXPECT_EQ(profile.acceleration(t), expected) << "t=" << t;
  }
}

TEST(VibrationProfile, RejectsNonMonotoneAndInvalidChanges) {
  VibrationProfile profile = make_profile(10.0);
  profile.set_frequency_at(2.0, 12.0);
  EXPECT_THROW(profile.set_frequency_at(1.0, 14.0), ModelError);
  EXPECT_THROW(profile.set_frequency_at(2.0, 14.0), ModelError);  // equal time
  EXPECT_THROW(profile.set_frequency_at(3.0, -1.0), ModelError);
  EXPECT_THROW(profile.set_amplitude_at(3.0, -0.1), ModelError);
  EXPECT_THROW(profile.ramp_frequency(3.0, 0.0, 15.0), ModelError);
  // A ramp occupies its whole span: the next change must come after it.
  profile.ramp_frequency(3.0, 1.0, 15.0);
  EXPECT_THROW(profile.set_frequency_at(3.5, 18.0), ModelError);
  profile.set_frequency_at(4.5, 18.0);  // after the ramp end: fine
}

// ---- ExcitationSchedule ---------------------------------------------------

TEST(ExcitationSchedule, AppliesLikeHandWrittenProfileCalls) {
  ExcitationSchedule schedule;
  schedule.initial_frequency_hz = 10.0;
  schedule.step_frequency(1.0, 12.0)
      .ramp_frequency(2.0, 1.5, 9.0)
      .step_amplitude(4.0, 0.25);

  VibrationProfile from_schedule = make_profile(10.0);
  schedule.apply(from_schedule);

  VibrationProfile by_hand = make_profile(10.0);
  by_hand.set_frequency_at(1.0, 12.0);
  by_hand.ramp_frequency(2.0, 1.5, 9.0);
  by_hand.set_amplitude_at(4.0, 0.25);

  for (double t = 0.0; t < 5.0; t += 0.0373) {
    EXPECT_EQ(from_schedule.acceleration(t), by_hand.acceleration(t)) << "t=" << t;
  }
}

TEST(ExcitationSchedule, ValidateRejectsNonMonotoneEventTimes) {
  ExcitationSchedule schedule;
  schedule.step_frequency(2.0, 71.0).step_frequency(1.0, 72.0);
  try {
    schedule.validate();
    FAIL() << "expected ModelError";
  } catch (const ModelError& error) {
    EXPECT_NE(std::string(error.what()).find("strictly increasing"), std::string::npos)
        << error.what();
  }
}

TEST(ExcitationSchedule, ValidateRejectsEventsInsideARampSpan) {
  ExcitationSchedule schedule;
  schedule.ramp_frequency(1.0, 2.0, 75.0).step_frequency(2.5, 72.0);  // inside [1, 3]
  EXPECT_THROW(schedule.validate(), ModelError);
}

TEST(ExcitationSchedule, ValidateRejectsBadEventParameters) {
  {
    ExcitationSchedule schedule;
    schedule.step_frequency(1.0, -5.0);
    EXPECT_THROW(schedule.validate(), ModelError);
  }
  {
    ExcitationSchedule schedule;
    schedule.ramp_frequency(1.0, -2.0, 75.0);
    EXPECT_THROW(schedule.validate(), ModelError);
  }
  {
    ExcitationSchedule schedule;
    RandomWalkParams walk;
    walk.step_interval = 0.0;
    schedule.random_walk(1.0, 5.0, walk);
    EXPECT_THROW(schedule.validate(), ModelError);
  }
  {
    ExcitationSchedule schedule;
    schedule.initial_frequency_hz = -1.0;
    EXPECT_THROW(schedule.validate(), ModelError);
  }
}

TEST(ExcitationSchedule, RandomWalkIsDeterministicInItsSeed) {
  RandomWalkParams walk;
  walk.step_interval = 0.5;
  walk.frequency_sigma = 0.3;
  walk.amplitude_sigma = 0.02;
  walk.seed = 1234;

  ExcitationSchedule a;
  a.initial_frequency_hz = 70.0;
  a.initial_amplitude = 0.59;
  a.random_walk(10.0, 20.0, walk);

  ExcitationSchedule b = a;
  const auto steps_a = a.expand();
  const auto steps_b = b.expand();
  ASSERT_EQ(steps_a.size(), 40u);  // 20 s / 0.5 s
  ASSERT_EQ(steps_a.size(), steps_b.size());
  for (std::size_t i = 0; i < steps_a.size(); ++i) {
    ASSERT_TRUE(steps_a[i].frequency_hz && steps_b[i].frequency_hz);
    EXPECT_EQ(*steps_a[i].frequency_hz, *steps_b[i].frequency_hz) << i;
    ASSERT_TRUE(steps_a[i].amplitude && steps_b[i].amplitude);
    EXPECT_EQ(*steps_a[i].amplitude, *steps_b[i].amplitude) << i;
  }

  // A different seed produces a different walk.
  ExcitationSchedule c = a;
  c.events.front().walk.seed = 99;
  const auto steps_c = c.expand();
  bool any_different = false;
  for (std::size_t i = 0; i < steps_c.size(); ++i) {
    any_different = any_different || *steps_c[i].frequency_hz != *steps_a[i].frequency_hz;
  }
  EXPECT_TRUE(any_different);

  // And two profiles driven by the same schedule evaluate identically.
  VibrationProfile p1 = make_profile(70.0, 0.59);
  VibrationProfile p2 = make_profile(70.0, 0.59);
  a.apply(p1);
  b.apply(p2);
  for (double t = 9.0; t < 31.0; t += 0.617) {
    EXPECT_EQ(p1.acceleration(t), p2.acceleration(t));
  }
}

TEST(ExcitationSchedule, RandomWalkRespectsBounds) {
  RandomWalkParams walk;
  walk.step_interval = 0.1;
  walk.frequency_sigma = 5.0;  // huge steps force clamping
  walk.amplitude_sigma = 1.0;
  walk.seed = 7;
  walk.min_frequency_hz = 68.0;
  walk.max_frequency_hz = 72.0;
  walk.min_amplitude = 0.1;

  ExcitationSchedule schedule;
  schedule.initial_frequency_hz = 70.0;
  schedule.initial_amplitude = 0.59;
  schedule.random_walk(1.0, 10.0, walk);
  for (const auto& step : schedule.expand()) {
    EXPECT_GE(*step.frequency_hz, 68.0);
    EXPECT_LE(*step.frequency_hz, 72.0);
    EXPECT_GE(*step.amplitude, 0.1);
  }
}

TEST(ExcitationSchedule, RandomWalkCoversExactDecimalSpans) {
  // 0.3 / 0.1 is 2.999... in IEEE doubles; the spec still means 3 updates.
  RandomWalkParams walk;
  walk.step_interval = 0.1;
  walk.frequency_sigma = 0.1;
  ExcitationSchedule schedule;
  schedule.random_walk(1.0, 0.3, walk);
  EXPECT_EQ(schedule.expand().size(), 3u);
}

TEST(ExcitationSchedule, FirstEventTimeFeedsThePowerWindows) {
  ExcitationSchedule none;
  EXPECT_FALSE(none.first_event_time().has_value());
  ExcitationSchedule one;
  one.step_frequency(60.0, 71.0);
  ASSERT_TRUE(one.first_event_time().has_value());
  EXPECT_DOUBLE_EQ(*one.first_event_time(), 60.0);
}

}  // namespace
