/// \file test_ode_implicit.cpp
/// \brief Implicit integrator tests (the baseline engines' discretisations).
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.hpp"
#include "ode/implicit_integrators.hpp"

namespace {

using ehsim::linalg::Matrix;
using ehsim::ode::ImplicitIntegrator;
using ehsim::ode::ImplicitMethod;

/// dx/dt = -k x with analytic solution.
struct Decay {
  double k;
  ehsim::ode::RhsWithJacobian f() const {
    const double kk = k;
    return [kk](double, std::span<const double> x, std::span<double> dx) { dx[0] = -kk * x[0]; };
  }
  ehsim::ode::RhsJacobianFunction j() const {
    const double kk = k;
    return [kk](double, std::span<const double>, Matrix& out) { out(0, 0) = -kk; };
  }
};

double integrate(ImplicitMethod method, double k, double h, double t_end) {
  Decay sys{k};
  ImplicitIntegrator integrator(method, 1, sys.f(), sys.j());
  std::vector<double> x{1.0};
  double t = 0.0;
  while (t < t_end - 1e-12) {
    const double step = std::min(h, t_end - t);
    const auto result = integrator.step(t, step, x);
    EXPECT_TRUE(result.converged());
    t += step;
  }
  return x[0];
}

TEST(BackwardEuler, FirstOrderConvergence) {
  const double exact = std::exp(-1.0);
  const double e1 = std::abs(integrate(ImplicitMethod::kBackwardEuler, 1.0, 0.02, 1.0) - exact);
  const double e2 = std::abs(integrate(ImplicitMethod::kBackwardEuler, 1.0, 0.01, 1.0) - exact);
  EXPECT_NEAR(e1 / e2, 2.0, 0.25);
}

TEST(Trapezoidal, SecondOrderConvergence) {
  const double exact = std::exp(-1.0);
  const double e1 = std::abs(integrate(ImplicitMethod::kTrapezoidal, 1.0, 0.02, 1.0) - exact);
  const double e2 = std::abs(integrate(ImplicitMethod::kTrapezoidal, 1.0, 0.01, 1.0) - exact);
  EXPECT_NEAR(e1 / e2, 4.0, 0.6);
}

TEST(Bdf2, SecondOrderConvergence) {
  const double exact = std::exp(-1.0);
  const double e1 = std::abs(integrate(ImplicitMethod::kBdf2, 1.0, 0.02, 1.0) - exact);
  const double e2 = std::abs(integrate(ImplicitMethod::kBdf2, 1.0, 0.01, 1.0) - exact);
  EXPECT_NEAR(e1 / e2, 4.0, 0.8);
}

/// A-stability: huge step on a stiff decay must stay bounded (this is what
/// lets the baseline engines take steps far beyond the explicit limit).
class ImplicitStiffStability : public ::testing::TestWithParam<ImplicitMethod> {};

TEST_P(ImplicitStiffStability, HugeStepRemainsBounded) {
  const double value = integrate(GetParam(), 1e6, 0.1, 1.0);
  EXPECT_LT(std::abs(value), 1.0);
  EXPECT_GE(std::abs(value), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Methods, ImplicitStiffStability,
                         ::testing::Values(ImplicitMethod::kBackwardEuler,
                                           ImplicitMethod::kTrapezoidal,
                                           ImplicitMethod::kBdf2));

TEST(Bdf2, LStabilityDampsStiffModeUnlikeTrapezoidal) {
  // One huge step on k = 1e6: BE/BDF2 crush the mode, trapezoidal rings
  // (|x_new| ~ x_old). This is why SPICE offers Gear for stiff circuits.
  const double be = integrate(ImplicitMethod::kBackwardEuler, 1e6, 0.1, 0.1);
  const double trap = integrate(ImplicitMethod::kTrapezoidal, 1e6, 0.1, 0.1);
  EXPECT_LT(std::abs(be), 1e-4);
  EXPECT_GT(std::abs(trap), 0.9);  // rings with amplitude ~1
}

TEST(ImplicitIntegrator, NonlinearRhsConverges) {
  // dx/dt = -x^3, x(0)=1: analytic x(t) = 1/sqrt(1+2t).
  ehsim::ode::RhsWithJacobian f = [](double, std::span<const double> x, std::span<double> dx) {
    dx[0] = -x[0] * x[0] * x[0];
  };
  ehsim::ode::RhsJacobianFunction j = [](double, std::span<const double> x, Matrix& out) {
    out(0, 0) = -3.0 * x[0] * x[0];
  };
  ImplicitIntegrator integrator(ImplicitMethod::kTrapezoidal, 1, f, j);
  std::vector<double> x{1.0};
  double t = 0.0;
  while (t < 1.0 - 1e-12) {
    const auto result = integrator.step(t, 0.01, x);
    ASSERT_TRUE(result.converged());
    t += 0.01;
  }
  EXPECT_NEAR(x[0], 1.0 / std::sqrt(3.0), 1e-5);
}

TEST(ImplicitIntegrator, FailedStepRestoresState) {
  // A residual that cannot be solved (NaN rhs) must leave x unchanged.
  ehsim::ode::RhsWithJacobian f = [](double, std::span<const double>, std::span<double> dx) {
    dx[0] = std::numeric_limits<double>::quiet_NaN();
  };
  ehsim::ode::RhsJacobianFunction j = [](double, std::span<const double>, Matrix& out) {
    out(0, 0) = 0.0;
  };
  ehsim::ode::NewtonOptions options;
  options.max_iterations = 3;
  ImplicitIntegrator integrator(ImplicitMethod::kBackwardEuler, 1, f, j, options);
  std::vector<double> x{42.0};
  const auto result = integrator.step(0.0, 0.1, x);
  EXPECT_FALSE(result.converged());
  EXPECT_DOUBLE_EQ(x[0], 42.0);
}

TEST(ImplicitIntegrator, ResetHistoryFallsBackToBe) {
  // BDF2 after reset must still work (internally BE for one step).
  Decay sys{2.0};
  ImplicitIntegrator integrator(ImplicitMethod::kBdf2, 1, sys.f(), sys.j());
  std::vector<double> x{1.0};
  ASSERT_TRUE(integrator.step(0.0, 0.05, x).converged());
  integrator.reset_history();
  ASSERT_TRUE(integrator.step(0.05, 0.05, x).converged());
  EXPECT_GT(x[0], 0.0);
  EXPECT_LT(x[0], 1.0);
}

TEST(ImplicitIntegrator, OrderReporting) {
  Decay sys{1.0};
  EXPECT_EQ(ImplicitIntegrator(ImplicitMethod::kBackwardEuler, 1, sys.f(), sys.j()).order(), 1u);
  EXPECT_EQ(ImplicitIntegrator(ImplicitMethod::kTrapezoidal, 1, sys.f(), sys.j()).order(), 2u);
  EXPECT_EQ(ImplicitIntegrator(ImplicitMethod::kBdf2, 1, sys.f(), sys.j()).order(), 2u);
}

}  // namespace
