/// \file test_experiments.cpp
/// \brief Metrics, scenario harness and synthetic-measurement tests.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "experiments/metrics.hpp"
#include "experiments/reference_data.hpp"
#include "experiments/scenarios.hpp"
#include "experiments/table_printer.hpp"

namespace {

using namespace ehsim::experiments;

TEST(Metrics, RmsOfKnownSignals) {
  const std::vector<double> constant(100, 2.0);
  EXPECT_NEAR(rms(constant), 2.0, 1e-12);
  std::vector<double> sine(10000);
  for (std::size_t i = 0; i < sine.size(); ++i) {
    sine[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 100.0);
  }
  EXPECT_NEAR(rms(sine), 1.0 / std::sqrt(2.0), 1e-3);
  EXPECT_EQ(rms({}), 0.0);
}

TEST(Metrics, MeanOfKnownSignal) {
  EXPECT_NEAR(mean(std::vector<double>{1.0, 2.0, 3.0}), 2.0, 1e-12);
}

TEST(Metrics, PearsonCorrelation) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson_correlation(a, b), 1.0, 1e-12);
  const std::vector<double> c{4.0, 3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson_correlation(a, c), -1.0, 1e-12);
  const std::vector<double> flat{1.0, 1.0, 1.0, 1.0};
  EXPECT_EQ(pearson_correlation(a, flat), 0.0);
}

TEST(Metrics, Nrmse) {
  const std::vector<double> ref{0.0, 1.0, 2.0};
  const std::vector<double> test_same = ref;
  EXPECT_NEAR(nrmse(ref, test_same), 0.0, 1e-15);
  const std::vector<double> off{0.2, 1.2, 2.2};
  EXPECT_NEAR(nrmse(ref, off), 0.1, 1e-12);  // 0.2 error over range 2
}

TEST(Metrics, ResampleInterpolatesAndClamps) {
  const std::vector<double> t{0.0, 1.0, 2.0};
  const std::vector<double> v{0.0, 10.0, 20.0};
  const std::vector<double> grid{-1.0, 0.5, 1.5, 5.0};
  const auto out = resample(t, v, grid);
  EXPECT_DOUBLE_EQ(out[0], 0.0);    // clamped left
  EXPECT_DOUBLE_EQ(out[1], 5.0);
  EXPECT_DOUBLE_EQ(out[2], 15.0);
  EXPECT_DOUBLE_EQ(out[3], 20.0);   // clamped right
}

TEST(Metrics, UniformGrid) {
  const auto grid = uniform_grid(1.0, 3.0, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 1.0);
  EXPECT_DOUBLE_EQ(grid.back(), 3.0);
  EXPECT_DOUBLE_EQ(grid[2], 2.0);
  EXPECT_THROW(uniform_grid(1.0, 1.0, 5), ehsim::ModelError);
}

TEST(BinnedAccumulator, MeanOfConstantSignal) {
  BinnedAccumulator bins(0.0, 1.0, 4);
  for (double t = 0.0; t <= 4.0; t += 0.01) {
    bins.add(t, 3.0);
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(bins.bin_mean(i), 3.0, 1e-12) << i;
    EXPECT_NEAR(bins.bin_rms(i), 3.0, 1e-12) << i;
  }
  EXPECT_NEAR(bins.mean_over(0.0, 4.0), 3.0, 1e-12);
}

TEST(BinnedAccumulator, SineRmsPerBin) {
  const double w = 2.0 * std::numbers::pi * 10.0;  // 10 Hz
  BinnedAccumulator bins(0.0, 1.0, 2);
  for (double t = 0.0; t <= 2.0; t += 1e-4) {
    bins.add(t, std::sin(w * t));
  }
  EXPECT_NEAR(bins.bin_rms(0), 1.0 / std::sqrt(2.0), 1e-3);
  EXPECT_NEAR(bins.bin_mean(0), 0.0, 1e-3);
}

TEST(BinnedAccumulator, TrapezoidSplitAcrossBinBoundary) {
  BinnedAccumulator bins(0.0, 1.0, 2);
  bins.add(0.5, 1.0);
  bins.add(1.5, 3.0);  // one trapezoid spanning both bins
  // Bin 0 gets [0.5,1.0] (values 1..2, mean 1.5); bin 1 gets [1.0,1.5]
  // (values 2..3, mean 2.5).
  EXPECT_NEAR(bins.bin_mean(0), 1.5, 1e-12);
  EXPECT_NEAR(bins.bin_mean(1), 2.5, 1e-12);
}

TEST(BinnedAccumulator, BinCentersAndBounds) {
  BinnedAccumulator bins(10.0, 2.0, 3);
  EXPECT_DOUBLE_EQ(bins.bin_center(0), 11.0);
  EXPECT_DOUBLE_EQ(bins.bin_center(2), 15.0);
  EXPECT_EQ(bins.bins(), 3u);
}

TEST(TablePrinter, FormatsAlignedColumns) {
  TablePrinter table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "12345"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_THROW(table.add_row({"only-one"}), ehsim::ModelError);
}

TEST(TablePrinter, DurationFormatting) {
  EXPECT_EQ(format_duration(0.005), "5.0 ms");
  EXPECT_EQ(format_duration(2.0), "2.00 s");
  EXPECT_EQ(format_duration(120.0), "2.0 min");
  EXPECT_EQ(format_duration(7200.0), "2.00 h");
}

TEST(Scenarios, SpecsMatchPaper) {
  const auto s1 = scenario1();
  ASSERT_EQ(s1.excitation.events.size(), 1u);
  EXPECT_DOUBLE_EQ(
      s1.excitation.events.front().frequency_hz - s1.excitation.initial_frequency_hz, 1.0);
  const auto s2 = scenario2();
  ASSERT_EQ(s2.excitation.events.size(), 1u);
  EXPECT_NEAR(s2.excitation.events.front().frequency_hz - s2.excitation.initial_frequency_hz,
              13.8, 0.3);
  // Scenario 2 simulated span ~11x scenario 1 (the paper's proposed-engine
  // CPU ratio 228 s / 20.3 s).
  EXPECT_NEAR(s2.duration / s1.duration, 11.0, 1.0);
}

TEST(Scenarios, ParamsPretuneActuator) {
  const auto spec = scenario1();
  const auto params = experiment_params(spec);
  const ehsim::harvester::TuningMechanism mech(params.tuning, params.generator);
  EXPECT_NEAR(mech.resonance_at_gap(params.actuator.initial_gap), 70.0, 0.05);
}

TEST(Scenarios, ChargingScenarioStartsEmpty) {
  const auto params = experiment_params(charging_scenario(10.0));
  EXPECT_DOUBLE_EQ(params.supercap.initial_voltage, 0.0);
}

TEST(Scenarios, EngineFactoryNamesAndModes) {
  EXPECT_EQ(device_mode_for(EngineKind::kProposed), ehsim::harvester::DeviceEvalMode::kPwlTable);
  EXPECT_EQ(device_mode_for(EngineKind::kPspice),
            ehsim::harvester::DeviceEvalMode::kExactShockley);
  EXPECT_NE(std::string(engine_kind_name(EngineKind::kProposed)).find("linearised"),
            std::string::npos);
}

TEST(Scenarios, ShortProposedRunProducesTraces) {
  ExperimentSpec spec = scenario1();
  spec.duration = 3.0;                // miniature for test speed
  spec.excitation.events.clear();     // no shift
  spec.with_mcu = false;
  spec.trace_interval = 0.01;
  const auto result = run_experiment(spec);
  EXPECT_GT(result.time.size(), 100u);
  EXPECT_EQ(result.time.size(), result.vc.size());
  EXPECT_GT(result.cpu_seconds, 0.0);
  EXPECT_GT(result.stats.steps, 1000u);
  EXPECT_FALSE(result.power_time.empty());
  // Supercap stays near its precharge over 3 s.
  EXPECT_NEAR(result.final_vc, 3.45, 0.05);
}

TEST(Scenarios, PowerBinsSeeGeneratorOutput) {
  ExperimentSpec spec = scenario1();
  spec.duration = 8.0;
  spec.excitation.events.clear();
  spec.with_mcu = false;
  spec.power_bin_width = 1.0;
  const auto result = run_experiment(spec);
  // After settling, per-bin mean power reaches the ~118 uW level.
  ASSERT_GE(result.power_mean.size(), 8u);
  EXPECT_GT(result.power_mean[6] * 1e6, 60.0);
  EXPECT_LT(result.power_mean[6] * 1e6, 220.0);
}

TEST(ReferenceData, PerturbedParamsDifferFromNominal) {
  const auto spec = scenario1();
  const auto nominal = experiment_params(spec);
  const auto perturbed = perturbed_params(spec, MeasurementModel{});
  EXPECT_LT(perturbed.generator.flux_linkage, nominal.generator.flux_linkage);
  EXPECT_GT(perturbed.generator.coil_resistance, nominal.generator.coil_resistance);
  EXPECT_GT(perturbed.supercap.leakage_resistance, 0.0);
}

TEST(ReferenceData, TraceIsReproducibleAndNoisy) {
  ExperimentSpec spec = scenario1();
  spec.duration = 2.0;
  spec.excitation.events.clear();
  spec.with_mcu = false;
  const auto a = make_experimental_trace(spec, 0.25);
  const auto b = make_experimental_trace(spec, 0.25);
  ASSERT_EQ(a.time.size(), b.time.size());
  for (std::size_t i = 0; i < a.vc.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.vc[i], b.vc[i]);  // fixed seed -> identical
  }
  // Noise is present: the trace is not perfectly smooth.
  double max_jump = 0.0;
  for (std::size_t i = 1; i < a.vc.size(); ++i) {
    max_jump = std::max(max_jump, std::abs(a.vc[i] - a.vc[i - 1]));
  }
  EXPECT_GT(max_jump, 1e-4);
}

}  // namespace
