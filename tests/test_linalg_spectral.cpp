/// \file test_linalg_spectral.cpp
/// \brief Tests for Gershgorin bounds, dominance measures, power iteration.
#include <gtest/gtest.h>

#include "linalg/spectral.hpp"

namespace {

using ehsim::linalg::diagonal_dominance_margin;
using ehsim::linalg::gershgorin_spectral_bound;
using ehsim::linalg::is_row_diagonally_dominant;
using ehsim::linalg::Matrix;
using ehsim::linalg::max_stable_step_by_dominance;
using ehsim::linalg::power_iteration_spectral_radius;

TEST(Dominance, DiagonalMatrixIsDominant) {
  const Matrix a{{-2.0, 0.0}, {0.0, -3.0}};
  EXPECT_TRUE(is_row_diagonally_dominant(a));
  EXPECT_DOUBLE_EQ(diagonal_dominance_margin(a), 2.0);
}

TEST(Dominance, OffDiagonalHeavyRowFails) {
  const Matrix a{{-1.0, 2.0}, {0.0, -3.0}};
  EXPECT_FALSE(is_row_diagonally_dominant(a));
  EXPECT_LT(diagonal_dominance_margin(a), 0.0);
}

TEST(Dominance, GershgorinBoundsSpectralRadius) {
  const Matrix a{{-2.0, 1.0}, {1.0, -2.0}};  // eigenvalues -1, -3
  EXPECT_GE(gershgorin_spectral_bound(a), 3.0);
  EXPECT_DOUBLE_EQ(gershgorin_spectral_bound(a), 3.0);
}

TEST(MaxStableStep, MatchesAnalyticFor1x1) {
  // dx/dt = -a x: FE stable iff h < 2/a; the dominance rule returns exactly
  // 2/(|a|+0).
  Matrix a(1, 1);
  a(0, 0) = -100.0;
  const auto h = max_stable_step_by_dominance(a);
  ASSERT_TRUE(h.has_value());
  EXPECT_DOUBLE_EQ(*h, 0.02);
}

TEST(MaxStableStep, SymmetricCouplingReducesStep) {
  const Matrix a{{-2.0, 1.0}, {1.0, -2.0}};
  const auto h = max_stable_step_by_dominance(a);
  ASSERT_TRUE(h.has_value());
  EXPECT_DOUBLE_EQ(*h, 2.0 / 3.0);
}

TEST(MaxStableStep, PositiveDiagonalRejected) {
  const Matrix a{{1.0, 0.0}, {0.0, -1.0}};
  EXPECT_FALSE(max_stable_step_by_dominance(a).has_value());
}

TEST(MaxStableStep, NonDominantRowRejected) {
  // Oscillator-style row with zero diagonal cannot be stabilised through
  // the Gershgorin argument (the paper's fallback case).
  const Matrix a{{0.0, 1.0}, {-1.0, 0.0}};
  EXPECT_FALSE(max_stable_step_by_dominance(a).has_value());
}

TEST(MaxStableStep, ZeroRowsImposeNoConstraint) {
  Matrix a(3, 3);
  a(1, 1) = -4.0;
  const auto h = max_stable_step_by_dominance(a);
  ASSERT_TRUE(h.has_value());
  EXPECT_DOUBLE_EQ(*h, 0.5);
}

TEST(PowerIteration, DominantRealEigenvalue) {
  const Matrix a{{3.0, 0.0}, {0.0, 1.0}};
  const auto est = power_iteration_spectral_radius(a);
  EXPECT_TRUE(est.converged);
  EXPECT_NEAR(est.radius, 3.0, 1e-4);
}

TEST(PowerIteration, ComplexPairViaTwoStepGrowth) {
  // Rotation scaled by 2: eigenvalues 2e^{+-i pi/2}, radius 2.
  const Matrix a{{0.0, -2.0}, {2.0, 0.0}};
  const auto est = power_iteration_spectral_radius(a);
  EXPECT_NEAR(est.radius, 2.0, 1e-3);
}

TEST(PowerIteration, ZeroMatrix) {
  const Matrix a(3, 3);
  const auto est = power_iteration_spectral_radius(a);
  EXPECT_NEAR(est.radius, 0.0, 1e-12);
}

TEST(PowerIteration, EmptyMatrixConverges) {
  const Matrix a(0, 0);
  const auto est = power_iteration_spectral_radius(a);
  EXPECT_TRUE(est.converged);
  EXPECT_EQ(est.radius, 0.0);
}

}  // namespace
