/// \file test_property_random_networks.cpp
/// \brief Property tests on randomised passive networks.
///
/// The paper's stability argument rests on the passivity of the analogue
/// blocks. These tests generate random passive RC ladder networks (random
/// element values over several orders of magnitude, random initial charge),
/// split them into blocks joined by terminal nets, and assert engine-level
/// invariants that must hold for *any* such system:
///   * the proposed engine's Eq. 7 cap admits a stable march (no divergence),
///   * proposed and Newton-Raphson trajectories agree,
///   * the eliminated system is Hurwitz (spectral abscissa <= 0), and
///   * total stored energy never increases (no sources present).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <random>

#include "baseline/nr_engine.hpp"
#include "core/linearised_solver.hpp"
#include "linalg/eigen.hpp"

namespace {

using ehsim::baseline::NrEngine;
using ehsim::core::AnalogBlock;
using ehsim::core::LinearisedSolver;
using ehsim::core::SystemAssembler;
using ehsim::linalg::Matrix;

/// One RC "cell": series resistor from the input port to a grounded
/// capacitor, exposing the far side as an output port.
/// States: vc. Terminals: (V_in, I_in, V_out, I_out). Algebraic rows:
///   KCL at the capacitor node: (V_in - vc)/R = C dvc/dt + I_out_draw ->
///   expressed as: fx = ((V_in - vc)/R - I_out)/C,
///   row 0: I_in - (V_in - vc)/R = 0     (series resistor current)
///   row 1: V_out - vc = 0               (output rides the capacitor)
class RcCell final : public AnalogBlock {
 public:
  RcCell(std::string name, double r, double c, double vc0)
      : AnalogBlock(std::move(name), 1, 4, 2), r_(r), c_(c), vc0_(vc0) {}

  void initial_state(std::span<double> x) const override { x[0] = vc0_; }

  void eval(double, std::span<const double> x, std::span<const double> y,
            std::span<double> fx, std::span<double> fy) const override {
    const double vc = x[0];
    fx[0] = ((y[0] - vc) / r_ - y[3]) / c_;
    fy[0] = y[1] - (y[0] - vc) / r_;
    fy[1] = y[2] - vc;
  }

  void jacobians(double, std::span<const double>, std::span<const double>,
                 Matrix& jxx, Matrix& jxy, Matrix& jyx, Matrix& jyy) const override {
    jxx(0, 0) = -1.0 / (r_ * c_);
    jxy(0, 0) = 1.0 / (r_ * c_);
    jxy(0, 3) = -1.0 / c_;
    jyx(0, 0) = 1.0 / r_;
    jyy(0, 0) = -1.0 / r_;
    jyy(0, 1) = 1.0;
    jyx(1, 0) = -1.0;
    jyy(1, 2) = 1.0;
  }

  [[nodiscard]] double energy(double vc) const noexcept { return 0.5 * c_ * vc * vc; }
  [[nodiscard]] double capacitance() const noexcept { return c_; }

 private:
  double r_;
  double c_;
  double vc0_;
};

/// Terminates a chain: grounds the input port through a resistor.
class TerminatorBlock final : public AnalogBlock {
 public:
  explicit TerminatorBlock(double r) : AnalogBlock("term", 0, 2, 1), r_(r) {}
  void eval(double, std::span<const double>, std::span<const double> y,
            std::span<double>, std::span<double> fy) const override {
    fy[0] = y[1] - y[0] / r_;
  }
  void jacobians(double, std::span<const double>, std::span<const double>, Matrix&,
                 Matrix&, Matrix&, Matrix& jyy) const override {
    jyy(0, 0) = -1.0 / r_;
    jyy(0, 1) = 1.0;
  }

 private:
  double r_;
};

/// Source side of the chain: a fixed 0 V drive (discharge experiment), i.e.
/// the head port is grounded through a resistor.
class GroundHead final : public AnalogBlock {
 public:
  explicit GroundHead(double r) : AnalogBlock("head", 0, 2, 1), r_(r) {}
  void eval(double, std::span<const double>, std::span<const double> y,
            std::span<double>, std::span<double> fy) const override {
    fy[0] = y[0] + r_ * y[1];  // V = -R*I (current drawn discharges into gnd)
  }
  void jacobians(double, std::span<const double>, std::span<const double>, Matrix&,
                 Matrix&, Matrix&, Matrix& jyy) const override {
    jyy(0, 0) = 1.0;
    jyy(0, 1) = r_;
  }

 private:
  double r_;
};

struct Ladder {
  SystemAssembler assembler;
  std::vector<ehsim::core::BlockHandle> cells;
};

/// Random discharge ladder: head -- cell_1 -- cell_2 ... -- terminator.
std::unique_ptr<Ladder> make_random_ladder(unsigned seed, std::size_t cells) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> log_r(std::log(10.0), std::log(1e4));
  std::uniform_real_distribution<double> log_c(std::log(1e-6), std::log(1e-2));
  std::uniform_real_distribution<double> v0(0.0, 5.0);

  auto ladder = std::make_unique<Ladder>();
  auto& assembler = ladder->assembler;
  const auto head = assembler.add_block(
      std::make_unique<GroundHead>(std::exp(log_r(rng))));
  std::vector<ehsim::core::NetHandle> nets;
  nets.push_back(assembler.net("V0"));
  nets.push_back(assembler.net("I0"));
  assembler.bind(head, 0, nets[0]);
  assembler.bind(head, 1, nets[1]);

  for (std::size_t k = 0; k < cells; ++k) {
    const std::string suffix = std::to_string(k + 1);
    std::string cell_name("cell");
    cell_name += std::to_string(k);
    const auto cell = assembler.add_block(std::make_unique<RcCell>(
        std::move(cell_name), std::exp(log_r(rng)), std::exp(log_c(rng)), v0(rng)));
    ladder->cells.push_back(cell);
    const auto v_out = assembler.net(std::string("V").append(suffix));
    const auto i_out = assembler.net(std::string("I").append(suffix));
    assembler.bind(cell, 0, nets[nets.size() - 2]);
    assembler.bind(cell, 1, nets[nets.size() - 1]);
    assembler.bind(cell, 2, v_out);
    assembler.bind(cell, 3, i_out);
    nets.push_back(v_out);
    nets.push_back(i_out);
  }
  const auto terminator = assembler.add_block(std::make_unique<TerminatorBlock>(1e5));
  assembler.bind(terminator, 0, nets[nets.size() - 2]);
  assembler.bind(terminator, 1, nets[nets.size() - 1]);
  assembler.elaborate();
  return ladder;
}

class RandomLadder : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomLadder, EliminatedSystemIsHurwitz) {
  auto ladder = make_random_ladder(GetParam(), 4);
  LinearisedSolver solver(ladder->assembler);
  solver.initialise(0.0);
  solver.advance_to(1e-6);  // force a stability evaluation
  const auto& a = solver.eliminated_matrix();
  ASSERT_EQ(a.rows(), 4u);
  // Passive network: every eigenvalue in the closed left half-plane.
  EXPECT_LE(ehsim::linalg::spectral_abscissa(a), 1e-9);
}

TEST_P(RandomLadder, ProposedMarchStaysBoundedAndDischarges) {
  auto ladder = make_random_ladder(GetParam(), 4);
  LinearisedSolver solver(ladder->assembler);
  solver.initialise(0.0);

  // Total stored energy must never increase in a source-free network.
  double last_energy = 1e300;
  bool monotone = true;
  solver.add_observer([&](double, std::span<const double> x, std::span<const double>) {
    double energy = 0.0;
    for (std::size_t k = 0; k < 4; ++k) {
      const auto& cell =
          ladder->assembler.block_as<RcCell>(ladder->cells[k]);
      energy += cell.energy(x[ladder->assembler.state_index(ladder->cells[k], 0)]);
    }
    monotone = monotone && (energy <= last_energy * (1.0 + 1e-9));
    last_energy = energy;
  });
  solver.advance_to(0.05);
  EXPECT_TRUE(monotone) << "stored energy increased in a passive network";
  for (double v : solver.state()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST_P(RandomLadder, EnginesAgreeOnTrajectory) {
  auto ladder_a = make_random_ladder(GetParam(), 3);
  auto ladder_b = make_random_ladder(GetParam(), 3);  // same seed -> same network

  LinearisedSolver proposed(ladder_a->assembler);
  proposed.initialise(0.0);
  proposed.advance_to(0.02);

  ehsim::baseline::NrEngineConfig config;
  config.lte_rel_tol = 1e-5;
  NrEngine reference(ladder_b->assembler, config);
  reference.initialise(0.0);
  reference.advance_to(0.02);

  for (std::size_t i = 0; i < proposed.state().size(); ++i) {
    const double scale = std::max(1.0, std::abs(reference.state()[i]));
    EXPECT_NEAR(proposed.state()[i], reference.state()[i], 5e-3 * scale)
        << "state " << i << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLadder,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
