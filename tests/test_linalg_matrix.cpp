/// \file test_linalg_matrix.cpp
/// \brief Unit tests for the dense matrix/vector substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "linalg/matrix.hpp"

namespace {

using ehsim::ModelError;
using ehsim::linalg::Matrix;
using ehsim::linalg::Vector;

TEST(Vector, DefaultIsEmpty) {
  Vector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(Vector, ZeroInitialised) {
  Vector v(5);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(v[i], 0.0);
  }
}

TEST(Vector, FillValueConstructor) {
  Vector v(4, 2.5);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(v[i], 2.5);
  }
}

TEST(Vector, InitializerList) {
  Vector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1.0);
  EXPECT_EQ(v[2], 3.0);
}

TEST(Vector, AxpyAccumulates) {
  Vector v{1.0, 2.0};
  const Vector w{10.0, 20.0};
  v.axpy(0.5, w);
  EXPECT_DOUBLE_EQ(v[0], 6.0);
  EXPECT_DOUBLE_EQ(v[1], 12.0);
}

TEST(Vector, ScaleMultipliesEveryElement) {
  Vector v{1.0, -2.0, 3.0};
  v.scale(-2.0);
  EXPECT_DOUBLE_EQ(v[0], -2.0);
  EXPECT_DOUBLE_EQ(v[1], 4.0);
  EXPECT_DOUBLE_EQ(v[2], -6.0);
}

TEST(Vector, Norms) {
  const Vector v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(v), 4.0);
}

TEST(Vector, DotProduct) {
  EXPECT_DOUBLE_EQ(dot(Vector{1.0, 2.0, 3.0}, Vector{4.0, 5.0, 6.0}), 32.0);
}

TEST(Vector, ArithmeticOperators) {
  const Vector a{1.0, 2.0};
  const Vector b{3.0, 5.0};
  const Vector sum = a + b;
  const Vector diff = b - a;
  const Vector scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(sum[0], 4.0);
  EXPECT_DOUBLE_EQ(sum[1], 7.0);
  EXPECT_DOUBLE_EQ(diff[0], 2.0);
  EXPECT_DOUBLE_EQ(diff[1], 3.0);
  EXPECT_DOUBLE_EQ(scaled[1], 4.0);
}

TEST(Vector, ResizeZeroFillsNewEntries) {
  Vector v{1.0};
  v.resize(3);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.0);
}

TEST(Matrix, ZeroInitialised) {
  Matrix a(2, 3);
  EXPECT_EQ(a.rows(), 2u);
  EXPECT_EQ(a.cols(), 3u);
  EXPECT_FALSE(a.is_square());
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(a(r, c), 0.0);
    }
  }
}

TEST(Matrix, InitializerList) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(a(0, 1), 2.0);
  EXPECT_EQ(a(1, 0), 3.0);
  EXPECT_TRUE(a.is_square());
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW(Matrix({{1.0, 2.0}, {3.0}}), ModelError);
}

TEST(Matrix, Identity) {
  const Matrix eye = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(eye(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, RowSpanIsContiguousView) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  auto row = a.row(1);
  row[0] = 9.0;
  EXPECT_EQ(a(1, 0), 9.0);
}

TEST(Matrix, MatVec) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Vector x{1.0, 1.0};
  const Vector y = a * x;
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, MatVecAccumulate) {
  const Matrix a{{2.0, 0.0}, {0.0, 2.0}};
  const Vector x{1.0, 2.0};
  Vector out{10.0, 10.0};
  a.matvec_acc(0.5, x.span(), out.span());
  EXPECT_DOUBLE_EQ(out[0], 11.0);
  EXPECT_DOUBLE_EQ(out[1], 12.0);
}

TEST(Matrix, MatrixMultiply) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  const Matrix ab = a * b;
  EXPECT_DOUBLE_EQ(ab(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(ab(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(ab(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(ab(1, 1), 3.0);
}

TEST(Matrix, AddSubtractScale) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ((a + b)(1, 1), 5.0);
  EXPECT_DOUBLE_EQ((a - b)(0, 0), 0.0);
  EXPECT_DOUBLE_EQ((2.0 * a)(1, 0), 6.0);
}

TEST(Matrix, Transposed) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix at = a.transposed();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_EQ(at.cols(), 2u);
  EXPECT_DOUBLE_EQ(at(2, 1), 6.0);
}

TEST(Matrix, Norms) {
  const Matrix a{{1.0, -2.0}, {-3.0, 4.0}};
  EXPECT_DOUBLE_EQ(norm_max(a), 4.0);
  EXPECT_DOUBLE_EQ(norm_inf(a), 7.0);  // max row sum |−3|+|4|
  EXPECT_DOUBLE_EQ(norm_frobenius(a), std::sqrt(30.0));
}

TEST(Matrix, AddScaled) {
  Matrix a{{1.0, 0.0}, {0.0, 1.0}};
  const Matrix b{{1.0, 1.0}, {1.0, 1.0}};
  a.add_scaled(2.0, b);
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 2.0);
}

TEST(Matrix, SetIdentityRequiresSquare) {
  Matrix a(2, 3);
  EXPECT_DEATH(a.set_identity(), "square");
}

TEST(Matrix, StreamOutputContainsEntries) {
  const Matrix a{{1.5, 2.0}};
  std::ostringstream os;
  os << a;
  EXPECT_NE(os.str().find("1.5"), std::string::npos);
}

TEST(Matrix, ResizeDiscardsAndZeroes) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  a.resize(3, 1);
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_EQ(a.cols(), 1u);
  EXPECT_EQ(a(2, 0), 0.0);
}

}  // namespace
