/// \file test_serve.cpp
/// \brief The `ehsim serve` subsystem: protocol envelopes, the bounded job
/// queue, the prepared-session pool and the daemon driven in-process.
///
/// The load-bearing assertions are the determinism ones: every response a
/// warm daemon streams must be bit-identical (rtol 0, atol 0) to a cold
/// one-shot execution of the same spec, ignoring only the run-dependent
/// keys cpu_seconds / warm_start / shared_diode_table — and a mutated spec
/// must never be served from another spec's cached state.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <optional>
#include <sstream>
#include <streambuf>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "experiments/ensemble.hpp"
#include "experiments/optimise_spec.hpp"
#include "experiments/scenarios.hpp"
#include "experiments/sweep.hpp"
#include "io/compare.hpp"
#include "io/json.hpp"
#include "io/spec_json.hpp"
#include "serve/job_queue.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/session_pool.hpp"

namespace {

using namespace ehsim;
using namespace ehsim::serve;
using ehsim::experiments::ExperimentSpec;
using ehsim::io::JsonValue;

ExperimentSpec tiny_spec(const std::string& name) {
  ExperimentSpec spec = experiments::charging_scenario(0.05);
  spec.name = name;
  spec.trace_interval = 0.01;
  return spec;
}

std::string envelope(std::uint64_t id, const char* type, const JsonValue& spec) {
  JsonValue json = JsonValue::make_object();
  json.set("id", static_cast<double>(id));
  json.set("type", type);
  json.set("spec", spec);
  return json.dump(-1);
}

std::string control(std::uint64_t id, const char* type) {
  JsonValue json = JsonValue::make_object();
  json.set("id", static_cast<double>(id));
  json.set("type", type);
  return json.dump(-1);
}

/// Run a daemon over the script in-process and parse every emitted event.
std::vector<JsonValue> serve_session(const std::string& script,
                                     ServerOptions options = {}) {
  std::istringstream in(script);
  std::ostringstream out;
  Server server(in, out, options);
  EXPECT_EQ(server.run(), 0);
  std::vector<JsonValue> events;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    events.push_back(JsonValue::parse(line));
  }
  return events;
}

std::vector<JsonValue> events_of(const std::vector<JsonValue>& events, const char* kind,
                                 std::uint64_t id) {
  std::vector<JsonValue> matching;
  for (const JsonValue& event : events) {
    if (event.at("event").as_string() == kind && event.contains("id") &&
        event.at("id").as_number() == static_cast<double>(id)) {
      matching.push_back(event);
    }
  }
  return matching;
}

/// Bit-identity modulo the documented run-dependent keys.
void expect_identical(const JsonValue& expected, const JsonValue& actual) {
  io::CompareOptions options;
  options.rtol = 0.0;
  options.atol = 0.0;
  options.ignore_keys = {"cpu_seconds", "warm_start", "shared_diode_table"};
  const std::vector<std::string> diffs = io::compare_json(expected, actual, options);
  for (const std::string& diff : diffs) {
    ADD_FAILURE() << diff;
  }
}

// ---- protocol ---------------------------------------------------------------

TEST(ServeProtocol, ParsesJobAndControlEnvelopes) {
  const ExperimentSpec spec = tiny_spec("proto");
  const Request run = parse_request(envelope(7, "run", io::to_json(spec)));
  EXPECT_EQ(run.id, 7u);
  EXPECT_EQ(run.type, RequestType::kRun);
  ASSERT_NE(run.spec.get_if<ExperimentSpec>(), nullptr);
  EXPECT_EQ(*run.spec.get_if<ExperimentSpec>(), spec);

  const Request stats = parse_request(control(3, "stats"));
  EXPECT_EQ(stats.type, RequestType::kStats);
  EXPECT_EQ(parse_request(control(0, "shutdown")).type, RequestType::kShutdown);
  EXPECT_EQ(parse_request(control(9, "cancel")).type, RequestType::kCancel);
}

TEST(ServeProtocol, RejectionsNameTheOffendingKey) {
  const auto key_of = [](const std::string& line) {
    try {
      (void)parse_request(line);
    } catch (const ProtocolError& error) {
      return std::string(error.key());
    }
    return std::string("<accepted>");
  };

  EXPECT_EQ(key_of("this is not json"), "");
  EXPECT_EQ(key_of("[1, 2]"), "");
  EXPECT_EQ(key_of(R"({"type": "stats"})"), "id");
  EXPECT_EQ(key_of(R"({"id": -1, "type": "stats"})"), "id");
  EXPECT_EQ(key_of(R"({"id": 1.5, "type": "stats"})"), "id");
  EXPECT_EQ(key_of(R"({"id": "one", "type": "stats"})"), "id");
  EXPECT_EQ(key_of(R"({"id": 1})"), "type");
  EXPECT_EQ(key_of(R"({"id": 1, "type": "launch"})"), "type");
  EXPECT_EQ(key_of(R"({"id": 1, "type": "stats", "specc": 1})"), "specc");
  EXPECT_EQ(key_of(R"({"id": 1, "type": "run"})"), "spec");
  EXPECT_EQ(key_of(R"({"id": 1, "type": "run", "spec": {}, "spec_path": "x"})"), "spec");
  EXPECT_EQ(key_of(R"({"id": 1, "type": "stats", "spec": {}})"), "spec");
  EXPECT_EQ(key_of(R"({"id": 1, "type": "run", "spec_path": "/no/such/file.json"})"),
            "spec_path");
  // A malformed payload names "spec"; a well-formed payload of the wrong
  // flavour names it too (a run envelope cannot carry a sweep spec).
  EXPECT_EQ(key_of(R"({"id": 1, "type": "run", "spec": {"type": "experiment", "nme": 1}})"),
            "spec");
  experiments::SweepSpec sweep;
  sweep.base = tiny_spec("zip");
  sweep.axes.push_back(experiments::SweepAxis{"spec.pre_tuned_hz", {69.0, 70.0}, {}});
  EXPECT_EQ(key_of(envelope(1, "run", io::to_json(sweep))), "spec");
  EXPECT_EQ(key_of(envelope(1, "sweep", io::to_json(tiny_spec("x")))), "spec");
}

// ---- job queue --------------------------------------------------------------

TEST(ServeJobQueue, FifoOrderAndCounters) {
  JobQueue queue(4);
  for (std::uint64_t id = 1; id <= 3; ++id) {
    Request request;
    request.id = id;
    request.type = RequestType::kStats;
    EXPECT_TRUE(queue.enqueue(std::move(request)));
  }
  JobQueue::Stats stats = queue.stats();
  EXPECT_EQ(stats.depth, 3u);
  EXPECT_EQ(stats.max_depth, 3u);
  EXPECT_EQ(stats.state, JobQueue::State::kAccepting);

  for (std::uint64_t id = 1; id <= 3; ++id) {
    const std::optional<Request> request = queue.dequeue();
    ASSERT_TRUE(request.has_value());
    EXPECT_EQ(request->id, id);  // strict FIFO through the ring
  }
  stats = queue.stats();
  EXPECT_EQ(stats.enqueued, 3u);
  EXPECT_EQ(stats.dequeued, 3u);
  EXPECT_EQ(stats.depth, 0u);
}

TEST(ServeJobQueue, CloseDrainsBacklogThenSignalsClosed) {
  JobQueue queue(4);
  Request request;
  request.type = RequestType::kStats;
  request.id = 1;
  EXPECT_TRUE(queue.enqueue(request));
  request.id = 2;
  EXPECT_TRUE(queue.enqueue(request));

  queue.close();
  EXPECT_EQ(queue.stats().state, JobQueue::State::kDraining);
  request.id = 3;
  EXPECT_FALSE(queue.enqueue(request));  // turned away, not blocked

  EXPECT_EQ(queue.dequeue()->id, 1u);  // backlog still served
  EXPECT_EQ(queue.dequeue()->id, 2u);
  EXPECT_FALSE(queue.dequeue().has_value());  // drained -> closed sentinel
  EXPECT_EQ(queue.stats().state, JobQueue::State::kClosed);
}

TEST(ServeJobQueue, BoundedRingBlocksProducerUntilSlotFrees) {
  JobQueue queue(1);
  std::atomic<int> produced{0};
  std::thread producer([&] {
    for (std::uint64_t id = 1; id <= 16; ++id) {
      Request request;
      request.id = id;
      request.type = RequestType::kStats;
      ASSERT_TRUE(queue.enqueue(std::move(request)));  // blocks while full
      produced.fetch_add(1);
    }
  });
  for (std::uint64_t id = 1; id <= 16; ++id) {
    const std::optional<Request> request = queue.dequeue();
    ASSERT_TRUE(request.has_value());
    EXPECT_EQ(request->id, id);
  }
  producer.join();
  EXPECT_EQ(produced.load(), 16);
  EXPECT_EQ(queue.stats().max_depth, 1u);  // the ring never grew past capacity
}

TEST(ServeJobQueue, ZeroCapacityIsRejected) {
  EXPECT_THROW(JobQueue queue(0), ModelError);
}

// The contended state-machine edges (close() racing a *blocked* enqueue,
// destruction right after the drain) live in test_concurrency_stress.cpp,
// where the TSan CI job hammers them from 8 threads. The two below pin the
// deterministic halves of those transitions.

TEST(ServeJobQueue, CloseWakesABlockedDequeueToTheClosedSentinel) {
  JobQueue queue(2);
  std::optional<Request> got;
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    got = queue.dequeue();  // blocks: empty but still accepting
    returned.store(true);
  });
  // Whether close() lands before or after the consumer parks on not_empty_,
  // the dequeue must return the closed sentinel — never hang.
  queue.close();
  consumer.join();
  EXPECT_TRUE(returned.load());
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(queue.stats().state, JobQueue::State::kClosed);
}

TEST(ServeJobQueue, CloseTurnsAwayABlockedEnqueueWithoutLosingTheBacklog) {
  JobQueue queue(1);
  Request request;
  request.type = RequestType::kStats;
  request.id = 1;
  ASSERT_TRUE(queue.enqueue(request));  // ring now full

  std::atomic<int> accepted{-1};
  std::thread producer([&] {
    Request blocked;
    blocked.type = RequestType::kStats;
    blocked.id = 2;
    accepted.store(queue.enqueue(std::move(blocked)) ? 1 : 0);
  });
  // No dequeue ever frees the slot, so the producer can only leave via
  // close(): it must be turned away (false), not block forever.
  queue.close();
  producer.join();
  EXPECT_EQ(accepted.load(), 0);

  EXPECT_EQ(queue.dequeue()->id, 1u);  // the accepted backlog still drains
  EXPECT_FALSE(queue.dequeue().has_value());
}

// ---- session pool -----------------------------------------------------------

TEST(ServeSessionPool, EvictionIsDeterministicFifo) {
  SessionPool pool(2);
  EXPECT_FALSE(pool.take("a").has_value());  // miss on empty

  pool.put("a", experiments::prepare_run(tiny_spec("a")));
  pool.put("b", experiments::prepare_run(tiny_spec("b")));
  pool.put("c", experiments::prepare_run(tiny_spec("c")));  // evicts "a", the oldest

  EXPECT_FALSE(pool.take("a").has_value());
  std::optional<experiments::PreparedRun> b = pool.take("b");
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(b->valid());

  const SessionPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.inserts, 3u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 1u);  // "c" remains; "b" was consumed by take
}

TEST(ServeSessionPool, PutReplacesSameKeyInPlaceAndZeroCapacityDisables) {
  SessionPool pool(2);
  pool.put("a", experiments::prepare_run(tiny_spec("a")));
  pool.put("b", experiments::prepare_run(tiny_spec("b")));
  pool.put("a", experiments::prepare_run(tiny_spec("a")));  // replace, no evict
  EXPECT_EQ(pool.stats().evictions, 0u);
  EXPECT_EQ(pool.stats().entries, 2u);

  SessionPool disabled(0);
  disabled.put("a", experiments::prepare_run(tiny_spec("a")));
  EXPECT_EQ(disabled.stats().entries, 0u);
  EXPECT_FALSE(disabled.take("a").has_value());
}

// ---- the daemon in-process --------------------------------------------------

TEST(ServeServer, RepeatedRunIsBitIdenticalAndHitsTheSessionPool) {
  const ExperimentSpec spec = tiny_spec("repeat");
  const std::string script = envelope(1, "run", io::to_json(spec)) + "\n" +
                             envelope(2, "run", io::to_json(spec)) + "\n" +
                             control(3, "stats") + "\n" + control(4, "shutdown") + "\n";
  const std::vector<JsonValue> events = serve_session(script);

  ASSERT_EQ(events_of(events, "result", 1).size(), 1u);
  ASSERT_EQ(events_of(events, "result", 2).size(), 1u);
  const JsonValue cold = io::to_json(experiments::run_experiment(spec));
  expect_identical(cold, events_of(events, "result", 1)[0].at("result"));
  expect_identical(cold, events_of(events, "result", 2)[0].at("result"));

  const std::vector<JsonValue> stats = events_of(events, "stats", 3);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_GE(stats[0].at("session_pool").at("hits").as_number(), 1.0);
  EXPECT_GE(stats[0].at("op_cache").at("entries").as_number(), 1.0);
  ASSERT_EQ(events_of(events, "shutdown", 4).size(), 1u);
}

/// Signature-split regression: a request whose parameters differ from a
/// cached one must never reuse the stale entry — the mutated spec's response
/// has to be bit-identical to its own cold run, and observably different
/// from the original's.
TEST(ServeServer, MutatedSpecDoesNotReuseStaleCachedState) {
  const ExperimentSpec base = tiny_spec("split");
  ExperimentSpec mutated = base;
  mutated.overrides.push_back(
      experiments::ParamOverride{"supercap.initial_voltage", 0.5});

  const std::string script = envelope(1, "run", io::to_json(base)) + "\n" +
                             envelope(2, "run", io::to_json(mutated)) + "\n" +
                             control(3, "shutdown") + "\n";
  const std::vector<JsonValue> events = serve_session(script);

  const std::vector<JsonValue> first_events = events_of(events, "result", 1);
  const std::vector<JsonValue> second_events = events_of(events, "result", 2);
  ASSERT_EQ(first_events.size(), 1u);
  ASSERT_EQ(second_events.size(), 1u);
  const JsonValue first = first_events[0].at("result");
  const JsonValue second = second_events[0].at("result");
  expect_identical(io::to_json(experiments::run_experiment(base)), first);
  expect_identical(io::to_json(experiments::run_experiment(mutated)), second);
  // And the mutation is physically observable, so a stale reuse could not
  // have produced the matching result by accident.
  EXPECT_NE(first.at("final_vc").as_number(), second.at("final_vc").as_number());
}

TEST(ServeServer, SweepStreamsPerJobResultsBitIdenticalToOneShot) {
  experiments::SweepSpec sweep;
  sweep.base = tiny_spec("serve-sweep");
  sweep.base.probes.push_back(experiments::ProbeSpec{
      "P_gen", experiments::ProbeSpec::Kind::kGeneratorPower});
  sweep.mode = experiments::SweepSpec::Mode::kZip;
  sweep.axes.push_back(experiments::SweepAxis{"spec.pre_tuned_hz", {69.5, 70.5}, {}});

  const std::string script =
      envelope(1, "sweep", io::to_json(sweep)) + "\n" + control(2, "shutdown") + "\n";
  const std::vector<JsonValue> events = serve_session(script);

  const std::vector<JsonValue> progress = events_of(events, "progress", 1);
  ASSERT_EQ(progress.size(), 1u);
  EXPECT_EQ(progress[0].at("jobs").as_number(), 2.0);

  const std::vector<JsonValue> results = events_of(events, "result", 1);
  ASSERT_EQ(results.size(), 2u);
  const std::vector<experiments::ScenarioResult> cold = experiments::run_sweep(sweep);
  ASSERT_EQ(cold.size(), 2u);
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(results[i].at("job").as_number(), static_cast<double>(i));
    expect_identical(io::to_json(cold[i]), results[i].at("result"));
  }
  // Probe summaries ride along per job.
  EXPECT_EQ(events_of(events, "probes", 1).size(), 2u);
}

TEST(ServeServer, RepeatedOptimiseConsumesTheCrossRequestCache) {
  experiments::OptimiseSpec spec;
  spec.name = "serve-optimise";
  spec.base = tiny_spec("serve-optimise-point");
  spec.base.probes.push_back(experiments::ProbeSpec{
      "P_gen", experiments::ProbeSpec::Kind::kGeneratorPower});
  spec.variable = "spec.pre_tuned_hz";
  spec.lower = 69.0;
  spec.upper = 71.0;
  spec.objective = "P_gen";
  spec.statistic = "mean";
  spec.max_evaluations = 4;
  spec.x_tolerance = 0.2;

  const std::string script = envelope(1, "optimise", io::to_json(spec)) + "\n" +
                             envelope(2, "optimise", io::to_json(spec)) + "\n" +
                             control(3, "stats") + "\n" + control(4, "shutdown") + "\n";
  const std::vector<JsonValue> events = serve_session(script);

  const JsonValue cold = io::to_json(experiments::run_optimise(spec));
  expect_identical(cold, events_of(events, "result", 1)[0].at("result"));
  expect_identical(cold, events_of(events, "result", 2)[0].at("result"));

  const std::vector<JsonValue> stats = events_of(events, "stats", 3);
  ASSERT_EQ(stats.size(), 1u);
  // The second search re-evaluates the exact candidates of the first, so
  // every one of its evaluations must be seeded from the cross cache.
  EXPECT_GE(stats[0].at("optimise_cache").at("hits").as_number(), 4.0);
}

TEST(ServeServer, MalformedEnvelopeEmitsErrorEventAndKeepsServing) {
  const ExperimentSpec spec = tiny_spec("after-error");
  const std::string script = std::string(R"({"id": 1, "type": "run", "speck": {}})") +
                             "\n" + envelope(2, "run", io::to_json(spec)) + "\n" +
                             control(3, "stats") + "\n" + control(4, "shutdown") + "\n";
  const std::vector<JsonValue> events = serve_session(script);

  const std::vector<JsonValue> errors = events_of(events, "error", 1);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].at("key").as_string(), "speck");  // names the bad field
  ASSERT_EQ(events_of(events, "result", 2).size(), 1u);  // daemon kept serving
  const std::vector<JsonValue> stats = events_of(events, "stats", 3);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].at("requests").at("errors").as_number(), 1.0);
}

TEST(ServeServer, CancelSkipsAQueuedJob) {
  const ExperimentSpec spec = tiny_spec("cancel-me");
  // The cancel line precedes the jobs, so id 2 is marked before the worker
  // can reach it — it must be skipped with a cancelled event, no result.
  const std::string script = control(2, "cancel") + "\n" +
                             envelope(1, "run", io::to_json(spec)) + "\n" +
                             envelope(2, "run", io::to_json(spec)) + "\n" +
                             control(3, "shutdown") + "\n";
  const std::vector<JsonValue> events = serve_session(script);
  EXPECT_EQ(events_of(events, "result", 1).size(), 1u);
  EXPECT_EQ(events_of(events, "result", 2).size(), 0u);
  EXPECT_EQ(events_of(events, "cancelled", 2).size(), 1u);
}

/// An input streambuf the test feeds incrementally: the daemon's reader
/// blocks in getline until the next chunk arrives, which lets a test pin a
/// protocol line to a moment in the worker's timeline (e.g. "this cancel
/// arrives while job 1 is already running").
class PacedScript : public std::streambuf {
 public:
  void feed(const std::string& text) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      pending_.append(text);
    }
    ready_.notify_all();
  }

  void finish() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    ready_.notify_all();
  }

 protected:
  int_type underflow() override {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return consumed_ < pending_.size() || done_; });
    if (consumed_ >= pending_.size()) {
      return traits_type::eof();
    }
    current_ = pending_[consumed_++];
    setg(&current_, &current_, &current_ + 1);
    return traits_type::to_int_type(current_);
  }

 private:
  std::mutex mutex_;
  std::condition_variable ready_;
  std::string pending_;
  std::size_t consumed_ = 0;
  bool done_ = false;
  char current_ = 0;
};

TEST(ServeServer, CancelOfARunningJobDoesNotLeakOntoALaterSameIdRequest) {
  // Regression: a cancel envelope that arrives while its id is already
  // *executing* used to stay in the cancel set forever, spuriously
  // cancelling the next request that reused the id. The paced script feeds
  // the cancel only after job 1 is (with overwhelming likelihood) running:
  // the first job simulates ~2s of model time, the cancel is fed ~a few ms
  // after the worker dequeued it.
  ExperimentSpec slow = tiny_spec("stale-cancel-first");
  slow.duration = 2.0;
  const ExperimentSpec second = tiny_spec("stale-cancel-second");

  PacedScript script;
  std::istream in(&script);
  std::ostringstream out;
  ServerOptions options;
  Server server(in, out, options);

  std::thread feeder([&script, &slow, &second] {
    script.feed(envelope(1, "run", io::to_json(slow)) + "\n");
    // Give the worker time to dequeue job 1 and start stepping. If the
    // machine stalls past the whole first job, the test degrades to the
    // already-covered cancel-of-queued case — it never false-fails.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    script.feed(control(1, "cancel") + "\n" +
                envelope(1, "run", io::to_json(second)) + "\n" +
                control(9, "shutdown") + "\n");
    script.finish();
  });
  EXPECT_EQ(server.run(), 0);
  feeder.join();

  std::vector<JsonValue> events;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    events.push_back(JsonValue::parse(line));
  }

  // The second id-1 request must complete: the stale cancel consumed (or
  // raced into) job 1 never outlives it.
  bool second_completed = false;
  for (const JsonValue& event : events_of(events, "result", 1)) {
    if (event.at("result").at("scenario").as_string() == "stale-cancel-second") {
      second_completed = true;
    }
  }
  EXPECT_TRUE(second_completed);
  // And the one cancel envelope can cancel at most one job.
  EXPECT_LE(events_of(events, "cancelled", 1).size(), 1u);
}

TEST(ServeServer, EndOfInputDrainsWithoutShutdownEvent) {
  const ExperimentSpec spec = tiny_spec("eof");
  const std::vector<JsonValue> events =
      serve_session(envelope(1, "run", io::to_json(spec)) + "\n");
  EXPECT_EQ(events_of(events, "result", 1).size(), 1u);
  for (const JsonValue& event : events) {
    EXPECT_NE(event.at("event").as_string(), "shutdown");
  }
}

TEST(ServeServer, ColdModeMatchesOneShotWithAllCachesDisabled) {
  const ExperimentSpec spec = tiny_spec("cold");
  ServerOptions options;
  options.cross_request_caches = false;
  const std::string script = envelope(1, "run", io::to_json(spec)) + "\n" +
                             envelope(2, "run", io::to_json(spec)) + "\n" +
                             control(3, "stats") + "\n" + control(4, "shutdown") + "\n";
  const std::vector<JsonValue> events = serve_session(script, options);

  const JsonValue cold = io::to_json(experiments::run_experiment(spec));
  expect_identical(cold, events_of(events, "result", 1)[0].at("result"));
  expect_identical(cold, events_of(events, "result", 2)[0].at("result"));
  const std::vector<JsonValue> stats = events_of(events, "stats", 3);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].at("session_pool").at("capacity").as_number(), 0.0);
  EXPECT_EQ(stats[0].at("session_pool").at("hits").as_number(), 0.0);
  EXPECT_EQ(stats[0].at("op_cache").at("entries").as_number(), 0.0);
}

// ---- checkpoint / resume / ensemble envelopes -------------------------------

/// Scratch directory for the checkpoint serve tests.
struct ScratchDir {
  std::filesystem::path path;
  explicit ScratchDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() / ("ehsim_serve_" + name)) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScratchDir() { std::filesystem::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
};

/// tiny_spec plus a seeded drift walk (the variation an ensemble needs).
ExperimentSpec tiny_walk_spec(const std::string& name) {
  ExperimentSpec spec = tiny_spec(name);
  experiments::RandomWalkParams walk;
  walk.step_interval = 0.005;
  walk.frequency_sigma = 0.3;
  walk.seed = 5;
  walk.min_frequency_hz = 60.0;
  walk.max_frequency_hz = 80.0;
  spec.excitation.random_walk(0.01, 0.03, walk);
  return spec;
}

std::string envelope_checkpointed(std::uint64_t id, const char* type, const JsonValue& spec,
                                  const std::string& dir, double every) {
  JsonValue json = JsonValue::make_object();
  json.set("id", static_cast<double>(id));
  json.set("type", type);
  json.set("spec", spec);
  JsonValue checkpoint = JsonValue::make_object();
  checkpoint.set("dir", dir);
  if (every > 0.0) {
    checkpoint.set("every", every);
  }
  json.set("checkpoint", checkpoint);
  return json.dump(-1);
}

TEST(ServeProtocol, ParsesEnsembleResumeAndCheckpointEnvelopes) {
  experiments::EnsembleSpec ensemble;
  ensemble.base = tiny_walk_spec("proto-ens");
  ensemble.seeds = {1, 2};
  const Request parsed = parse_request(envelope(11, "ensemble", io::to_json(ensemble)));
  EXPECT_EQ(parsed.type, RequestType::kEnsemble);
  ASSERT_NE(parsed.spec.get_if<experiments::EnsembleSpec>(), nullptr);
  EXPECT_EQ(*parsed.spec.get_if<experiments::EnsembleSpec>(), ensemble);
  EXPECT_FALSE(parsed.checkpoint.has_value());

  const ExperimentSpec spec = tiny_spec("proto-ckpt");
  const Request run =
      parse_request(envelope_checkpointed(12, "run", io::to_json(spec), "ckpt", 2.5));
  ASSERT_TRUE(run.checkpoint.has_value());
  EXPECT_EQ(run.checkpoint->dir, "ckpt");
  EXPECT_EQ(run.checkpoint->every, 2.5);

  // Resume may omit "every": finish the run without writing more files.
  const Request resume =
      parse_request(envelope_checkpointed(13, "resume", io::to_json(spec), "ckpt", 0.0));
  EXPECT_EQ(resume.type, RequestType::kResume);
  ASSERT_TRUE(resume.checkpoint.has_value());
  EXPECT_EQ(resume.checkpoint->every, 0.0);
  // ...and accepts a sweep spec too (a checkpointed sweep resumes as one).
  experiments::SweepSpec sweep;
  sweep.base = tiny_spec("proto-resume-sweep");
  sweep.axes.push_back(experiments::SweepAxis{"spec.pre_tuned_hz", {69.0, 70.0}, {}});
  EXPECT_EQ(parse_request(envelope_checkpointed(14, "resume", io::to_json(sweep), "ckpt", 0.0))
                .type,
            RequestType::kResume);
}

TEST(ServeProtocol, CheckpointRejectionsNameTheOffendingKey) {
  const auto key_of = [](const std::string& line) {
    try {
      (void)parse_request(line);
    } catch (const ProtocolError& error) {
      return std::string(error.key());
    }
    return std::string("<accepted>");
  };
  const JsonValue spec = io::to_json(tiny_spec("ckpt-reject"));
  experiments::EnsembleSpec ensemble;
  ensemble.base = tiny_walk_spec("ckpt-reject-ens");
  ensemble.seeds = {1, 2};

  // Malformed checkpoint blocks: not an object, missing "every" on run,
  // unknown key, non-positive cadence.
  const auto with_checkpoint = [&](const JsonValue& block) {
    JsonValue json = JsonValue::make_object();
    json.set("id", 1.0);
    json.set("type", "run");
    json.set("spec", spec);
    json.set("checkpoint", block);
    return json.dump(-1);
  };
  EXPECT_EQ(key_of(with_checkpoint(JsonValue(7.0))), "checkpoint");
  EXPECT_EQ(key_of(envelope_checkpointed(1, "run", spec, "ckpt", 0.0)), "checkpoint");
  {
    JsonValue block = JsonValue::make_object();
    block.set("dir", "ckpt");
    block.set("evry", 1.0);
    EXPECT_EQ(key_of(with_checkpoint(block)), "checkpoint");
    block = JsonValue::make_object();
    block.set("dir", "ckpt");
    block.set("every", -1.0);
    EXPECT_EQ(key_of(with_checkpoint(block)), "checkpoint");
    block = JsonValue::make_object();
    block.set("every", 1.0);
    EXPECT_EQ(key_of(with_checkpoint(block)), "checkpoint");
  }
  // Checkpointing only applies to run/sweep/resume.
  EXPECT_EQ(key_of(envelope_checkpointed(1, "ensemble", io::to_json(ensemble), "ckpt", 1.0)),
            "checkpoint");
  // Resume cannot work without a checkpoint directory.
  EXPECT_EQ(key_of(envelope(1, "resume", spec)), "checkpoint");
  // Payload/type mismatches for the new job types still name the spec.
  EXPECT_EQ(key_of(envelope(1, "ensemble", spec)), "spec");
  EXPECT_EQ(key_of(envelope(1, "run", io::to_json(ensemble))), "spec");
}

TEST(ServeServer, CheckpointedRunStreamsCheckpointEventsAndMatchesDirect) {
  const ExperimentSpec spec = tiny_spec("serve-ckpt");
  ScratchDir serve_dir("run_events");
  ScratchDir direct_dir("run_events_direct");

  const std::string script =
      envelope_checkpointed(1, "run", io::to_json(spec), serve_dir.str(), 0.02) + "\n" +
      control(2, "shutdown") + "\n";
  const std::vector<JsonValue> events = serve_session(script);

  // 0.05 s at a 0.02 s cadence: checkpoints at 0.02, 0.04 and 0.05.
  const std::vector<JsonValue> checkpoints = events_of(events, "checkpoint", 1);
  ASSERT_EQ(checkpoints.size(), 3u);
  EXPECT_EQ(checkpoints[0].at("sim_time").as_number(), 0.02);
  EXPECT_EQ(checkpoints[1].at("sim_time").as_number(), 0.04);
  EXPECT_EQ(checkpoints[2].at("sim_time").as_number(), 0.05);
  for (const JsonValue& event : checkpoints) {
    EXPECT_EQ(event.at("job").as_string(), "serve-ckpt");
    EXPECT_TRUE(std::filesystem::exists(event.at("path").as_string()));
  }

  // The result is the checkpointed trajectory, bit for bit.
  experiments::CheckpointOptions direct;
  direct.every = 0.02;
  direct.dir = direct_dir.str();
  const auto cold =
      run_experiment_checkpointed(spec, experiments::RunOptions{}, direct);
  ASSERT_TRUE(cold.has_value());
  const std::vector<JsonValue> results = events_of(events, "result", 1);
  ASSERT_EQ(results.size(), 1u);
  expect_identical(io::to_json(*cold), results[0].at("result"));
}

TEST(ServeServer, ResumeContinuesKilledRunBitIdentically) {
  const ExperimentSpec spec = tiny_spec("serve-resume");
  ScratchDir kill_dir("resume_kill");
  ScratchDir full_dir("resume_full");

  // Kill the run out of band after its first checkpoint...
  experiments::CheckpointOptions kill;
  kill.every = 0.02;
  kill.dir = kill_dir.str();
  kill.abort_after = 1;
  ASSERT_FALSE(
      run_experiment_checkpointed(spec, experiments::RunOptions{}, kill).has_value());

  // ...and let the daemon finish it from the files left on disk.
  const std::string script =
      envelope_checkpointed(1, "resume", io::to_json(spec), kill_dir.str(), 0.02) + "\n" +
      control(2, "shutdown") + "\n";
  const std::vector<JsonValue> events = serve_session(script);

  experiments::CheckpointOptions full;
  full.every = 0.02;
  full.dir = full_dir.str();
  const auto uninterrupted =
      run_experiment_checkpointed(spec, experiments::RunOptions{}, full);
  ASSERT_TRUE(uninterrupted.has_value());
  const std::vector<JsonValue> results = events_of(events, "result", 1);
  ASSERT_EQ(results.size(), 1u);
  expect_identical(io::to_json(*uninterrupted), results[0].at("result"));
  // The daemon resumed mid-run instead of starting over: the remaining
  // boundaries (0.04, 0.05) fire, the already-written 0.02 one does not.
  EXPECT_EQ(events_of(events, "checkpoint", 1).size(), 2u);
}

TEST(ServeServer, EnsembleStreamsStatisticsBitIdenticalToDirect) {
  experiments::EnsembleSpec ensemble;
  ensemble.base = tiny_walk_spec("serve-ensemble");
  ensemble.seeds = {4, 9, 2};

  const std::string script =
      envelope(1, "ensemble", io::to_json(ensemble)) + "\n" + control(2, "shutdown") + "\n";
  const std::vector<JsonValue> events = serve_session(script);

  const std::vector<JsonValue> progress = events_of(events, "progress", 1);
  ASSERT_EQ(progress.size(), 1u);
  EXPECT_EQ(progress[0].at("jobs").as_number(), 3.0);

  const std::vector<JsonValue> results = events_of(events, "result", 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].at("type").as_string(), "ensemble");
  EXPECT_EQ(results[0].at("replicas").as_number(), 3.0);
  const experiments::EnsembleResult cold = experiments::run_ensemble(ensemble);
  expect_identical(io::to_json(cold), results[0].at("result"));
}

}  // namespace
