/// \file test_io_json.cpp
/// \brief JSON document model, spec round-trip losslessness, result
/// serialisation and the tolerance-aware golden compare.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "experiments/scenarios.hpp"
#include "experiments/sweep.hpp"
#include "io/compare.hpp"
#include "io/json.hpp"
#include "io/spec_json.hpp"

namespace {

using ehsim::ModelError;
using ehsim::io::CompareOptions;
using ehsim::io::JsonValue;
using namespace ehsim::experiments;

// ---- JSON core ------------------------------------------------------------

TEST(Json, ParseDumpRoundTripsDocuments) {
  const std::string text =
      R"({"a": [1, 2.5, -3e-2], "b": {"nested": true, "null": null}, "s": "hi\n\"there\""})";
  const JsonValue value = JsonValue::parse(text);
  EXPECT_EQ(JsonValue::parse(value.dump()), value);
  EXPECT_EQ(JsonValue::parse(value.dump(2)), value);
  EXPECT_DOUBLE_EQ(value.at("a").as_array()[2].as_number(), -3e-2);
  EXPECT_TRUE(value.at("b").at("nested").as_bool());
  EXPECT_TRUE(value.at("b").at("null").is_null());
  EXPECT_EQ(value.at("s").as_string(), "hi\n\"there\"");
}

TEST(Json, NumbersRoundTripExactly) {
  for (const double number : {0.1, 1.0 / 3.0, 1e-300, -2.2250738585072014e-308, 6.02e23,
                              60.0, 0.0, -0.59}) {
    const JsonValue value(number);
    EXPECT_EQ(JsonValue::parse(value.dump()).as_number(), number) << number;
  }
  EXPECT_THROW(JsonValue(std::nan("")), ModelError);
}

TEST(Json, UnicodeEscapesDecodeToUtf8) {
  const JsonValue value = JsonValue::parse(R"("é€😀")");
  EXPECT_EQ(value.as_string(), "\xC3\xA9\xE2\x82\xAC\xF0\x9F\x98\x80");
}

TEST(Json, ParseErrorsCarryLineAndColumn) {
  try {
    (void)JsonValue::parse("{\n  \"a\": 1,\n  oops\n}");
    FAIL() << "expected ModelError";
  } catch (const ModelError& error) {
    EXPECT_NE(std::string(error.what()).find("3:"), std::string::npos) << error.what();
  }
  EXPECT_THROW((void)JsonValue::parse("[1, 2] trailing"), ModelError);
  EXPECT_THROW((void)JsonValue::parse(R"({"a": 01x})"), ModelError);
  EXPECT_THROW((void)JsonValue::parse(R"("\q")"), ModelError);
}

TEST(Json, ObjectHelpersPreserveInsertionOrder) {
  JsonValue object = JsonValue::make_object();
  object.set("z", 1).set("a", 2).set("z", 3);
  EXPECT_EQ(object.dump(), R"({"z":3,"a":2})");
  EXPECT_EQ(object.at("z").as_number(), 3.0);
  EXPECT_THROW((void)object.at("missing"), ModelError);
  EXPECT_THROW((void)object.as_array(), ModelError);
}

// ---- spec round-trip ------------------------------------------------------

ExperimentSpec multi_event_spec() {
  ExperimentSpec spec;
  spec.name = "drift-demo";
  spec.duration = 120.0;
  spec.pre_tuned_hz = 70.0;
  spec.engine = EngineKind::kSystemCA;
  spec.excitation.initial_frequency_hz = 70.0;
  spec.excitation.initial_amplitude = 0.55;
  spec.excitation.step_frequency(20.0, 71.5);
  spec.excitation.ramp_frequency(40.0, 15.0, 68.0);
  spec.excitation.step_amplitude(70.0, 0.45);
  RandomWalkParams walk;
  walk.step_interval = 2.0;
  walk.frequency_sigma = 0.2;
  walk.amplitude_sigma = 0.01;
  walk.seed = 0xDEADBEEFCAFEF00Dull;  // not exactly representable as double
  walk.min_frequency_hz = 60.0;
  walk.max_frequency_hz = 80.0;
  walk.min_amplitude = 0.2;
  spec.excitation.random_walk(80.0, 30.0, walk);
  spec.overrides.push_back(ParamOverride{"supercap.initial_voltage", 1.25});
  // One probe per shape: plain, targeted, windowed, thresholded, unrecorded.
  spec.probes.push_back(ProbeSpec{"P_gen", ProbeSpec::Kind::kGeneratorPower});
  spec.probes.push_back(ProbeSpec{"Vm", ProbeSpec::Kind::kNodeVoltage, "Vm"});
  spec.probes.push_back(
      ProbeSpec{"P_late", ProbeSpec::Kind::kHarvestedPower, "", 80.0, 110.0});
  spec.probes.push_back(ProbeSpec{"tuning_duty", ProbeSpec::Kind::kStateVariable,
                                  "supercap.Vi", 0.0, 0.0, 1.5, false});
  spec.probes.push_back(
      ProbeSpec{"E", ProbeSpec::Kind::kStoredEnergy, "", 0.0, 0.0, std::nullopt, false});
  return spec;
}

TEST(SpecJson, ExperimentRoundTripsLosslessly) {
  const ExperimentSpec spec = multi_event_spec();
  const JsonValue json = ehsim::io::to_json(spec);
  const ExperimentSpec back = ehsim::io::experiment_from_json(json);
  EXPECT_EQ(back, spec);
  // Through text as well (spec -> JSON -> text -> JSON -> spec).
  const ExperimentSpec reparsed =
      ehsim::io::experiment_from_json(JsonValue::parse(json.dump(2)));
  EXPECT_EQ(reparsed, spec);
  // The oversized seed survives via the string form.
  EXPECT_EQ(reparsed.excitation.events[3].walk.seed, 0xDEADBEEFCAFEF00Dull);
}

TEST(SpecJson, CannedScenariosRoundTrip) {
  for (const ExperimentSpec& spec : {scenario1(), scenario2(), charging_scenario(30.0)}) {
    EXPECT_EQ(ehsim::io::experiment_from_json(
                  JsonValue::parse(ehsim::io::to_json(spec).dump())),
              spec)
        << spec.name;
  }
}

TEST(SpecJson, SweepRoundTripsLosslessly) {
  SweepSpec sweep;
  sweep.base = charging_scenario(5.0);
  sweep.mode = SweepSpec::Mode::kZip;
  sweep.threads = 3;
  sweep.axes.push_back(SweepAxis{"supercap.initial_voltage", {0.5, 1.0}, {}});
  sweep.axes.push_back(SweepAxis{"generator.proof_mass", {0.017, 0.019}, {}});
  const SweepSpec back =
      ehsim::io::sweep_from_json(JsonValue::parse(ehsim::io::to_json(sweep).dump(2)));
  EXPECT_EQ(back, sweep);

  SweepSpec engines;
  engines.base = charging_scenario(1.0);
  engines.axes.push_back(
      SweepAxis{{}, {}, {EngineKind::kProposed, EngineKind::kPspice}});
  EXPECT_EQ(ehsim::io::sweep_from_json(JsonValue::parse(ehsim::io::to_json(engines).dump())),
            engines);

  // warm_start round-trips, and — because it defaults off — is omitted from
  // documents that never set it (existing spec files stay byte-identical).
  sweep.warm_start = true;
  const JsonValue warm_json = ehsim::io::to_json(sweep);
  EXPECT_TRUE(warm_json.at("warm_start").as_bool());
  EXPECT_EQ(ehsim::io::sweep_from_json(JsonValue::parse(warm_json.dump(2))), sweep);
  sweep.warm_start = false;
  EXPECT_FALSE(ehsim::io::to_json(sweep).contains("warm_start"));
}

TEST(SpecJson, OptimiseRoundTripsLosslessly) {
  OptimiseSpec spec;
  spec.name = "tune-study";
  spec.base = charging_scenario(2.0);
  spec.base.probes.push_back(ProbeSpec{"E", ProbeSpec::Kind::kStoredEnergy});
  spec.variable = "spec.pre_tuned_hz";
  spec.lower = 66.0;
  spec.upper = 74.0;
  spec.objective = "E";
  spec.statistic = "final";
  spec.maximise = false;
  spec.max_evaluations = 17;
  spec.x_tolerance = 0.015;
  const OptimiseSpec back =
      ehsim::io::optimise_from_json(JsonValue::parse(ehsim::io::to_json(spec).dump(2)));
  EXPECT_EQ(back, spec);

  const auto file = ehsim::io::spec_from_json(ehsim::io::to_json(spec));
  ASSERT_NE(file.get_if<ehsim::experiments::OptimiseSpec>(), nullptr);
  EXPECT_EQ((*file.get_if<ehsim::experiments::OptimiseSpec>()), spec);
  EXPECT_EQ(file.get_if<ehsim::experiments::ExperimentSpec>(), nullptr);
  EXPECT_EQ(file.get_if<ehsim::experiments::SweepSpec>(), nullptr);

  // warm_start round-trips and is omitted while default-off.
  EXPECT_FALSE(ehsim::io::to_json(spec).contains("warm_start"));
  spec.warm_start = true;
  EXPECT_EQ(ehsim::io::optimise_from_json(
                JsonValue::parse(ehsim::io::to_json(spec).dump(2))),
            spec);
}

TEST(SpecJson, OptimiseVariablesArrayRoundTripsLosslessly) {
  OptimiseSpec spec;
  spec.name = "joint-study";
  spec.base = charging_scenario(2.0);
  spec.base.probes.push_back(ProbeSpec{"E", ProbeSpec::Kind::kStoredEnergy});
  spec.variables.push_back(
      OptimiseVariable{"spec.pre_tuned_hz", 66.0, 74.0, std::nullopt});
  spec.variables.push_back(OptimiseVariable{"load.sleep_ohms", 20.0, 2000.0, 0.05});
  spec.objective = "E";
  spec.statistic = "final";
  spec.max_evaluations = 20;
  spec.x_tolerance = 0.02;
  const JsonValue json = ehsim::io::to_json(spec);
  // The array form serialises "variables" and omits the alias keys...
  EXPECT_TRUE(json.contains("variables"));
  EXPECT_FALSE(json.contains("variable"));
  EXPECT_FALSE(json.contains("lower"));
  EXPECT_FALSE(json.contains("upper"));
  // ...and the optional per-axis tolerance is omitted when unset.
  const auto& variables = json.at("variables").as_array();
  ASSERT_EQ(variables.size(), 2u);
  EXPECT_FALSE(variables[0].contains("x_tolerance"));
  EXPECT_EQ(variables[1].at("x_tolerance").as_number(), 0.05);
  EXPECT_EQ(ehsim::io::optimise_from_json(JsonValue::parse(json.dump(2))), spec);

  // The single-variable alias keeps serialising with its original keys, so
  // pre-multi-variable documents round-trip byte-identically.
  OptimiseSpec alias;
  alias.name = "alias-study";
  alias.base = spec.base;
  alias.variable = "spec.pre_tuned_hz";
  alias.lower = 66.0;
  alias.upper = 74.0;
  alias.objective = "E";
  alias.statistic = "final";
  const JsonValue alias_json = ehsim::io::to_json(alias);
  EXPECT_TRUE(alias_json.contains("variable"));
  EXPECT_FALSE(alias_json.contains("variables"));
  const std::string text = alias_json.dump(2);
  EXPECT_EQ(ehsim::io::to_json(
                ehsim::io::optimise_from_json(JsonValue::parse(text))).dump(2),
            text);
}

TEST(SpecJson, OptimiseVariablesArrayRejectsMalformedDocuments) {
  const char* base = R"("base": {"name": "b", "duration": 1,
    "probes": [{"label": "p", "kind": "generator_power"}]})";
  // Mixing the alias keys with the variables array is ambiguous.
  EXPECT_THROW((void)ehsim::io::optimise_from_json(JsonValue::parse(std::string(R"({
    "type": "optimise", "name": "bad", "lower": 1,
    "variables": [{"path": "spec.duration", "lower": 1, "upper": 2}],
    "objective": "p", )") + base + "}")),
               ModelError);
  // An empty variables array declares no search axis.
  EXPECT_THROW((void)ehsim::io::optimise_from_json(JsonValue::parse(std::string(R"({
    "type": "optimise", "name": "bad", "variables": [],
    "objective": "p", )") + base + "}")),
               ModelError);
  // Unknown keys inside a variables entry fail naming the key.
  try {
    (void)ehsim::io::optimise_from_json(JsonValue::parse(std::string(R"({
      "type": "optimise", "name": "bad",
      "variables": [{"path": "spec.duration", "lower": 1, "upper": 2, "tolerance": 0.1}],
      "objective": "p", )") + base + "}"));
    FAIL() << "expected ModelError for an unknown variables-entry key";
  } catch (const ModelError& error) {
    EXPECT_NE(std::string(error.what()).find("tolerance"), std::string::npos);
  }
}

TEST(SpecFiles, JointTuningFileIsAValidMultiVariableSpec) {
  const auto file = ehsim::io::load_spec_file(std::string(EHSIM_SOURCE_DIR) +
                                              "/examples/specs/scenario1_joint_tuning.json");
  ASSERT_NE(file.get_if<ehsim::experiments::OptimiseSpec>(), nullptr);
  const OptimiseSpec& spec = (*file.get_if<ehsim::experiments::OptimiseSpec>());
  ASSERT_EQ(spec.variables.size(), 2u);
  EXPECT_EQ(spec.variables[0].path, "spec.pre_tuned_hz");
  EXPECT_EQ(spec.variables[1].path, "load.sleep_ohms");
  EXPECT_TRUE(spec.variable.empty());
  EXPECT_EQ(ehsim::io::optimise_from_json(
                JsonValue::parse(ehsim::io::to_json(spec).dump(2))),
            spec);
}

TEST(SpecJson, StrictParsingRejectsUnknownProbeAndOptimiseKeys) {
  // Probe with a typoed key fails naming the key.
  EXPECT_THROW((void)ehsim::io::probe_from_json(JsonValue::parse(
                   R"({"label":"p","kind":"generator_power","thresold":0.1})")),
               ModelError);
  // Probe validation runs at parse time (node_voltage needs a target).
  EXPECT_THROW((void)ehsim::io::probe_from_json(
                   JsonValue::parse(R"({"label":"p","kind":"node_voltage"})")),
               ModelError);
  EXPECT_THROW((void)ehsim::io::probe_from_json(
                   JsonValue::parse(R"({"label":"p","kind":"volts","target":"Vc"})")),
               ModelError);
  // Experiment documents reject unknown keys inside the probes array...
  EXPECT_THROW((void)ehsim::io::experiment_from_json(JsonValue::parse(R"({
    "type": "experiment", "name": "bad",
    "probes": [{"label": "p", "kind": "generator_power", "recrod": true}]})")),
               ModelError);
  // ...and optimise documents reject unknown top-level keys.
  EXPECT_THROW((void)ehsim::io::optimise_from_json(JsonValue::parse(R"({
    "type": "optimise", "name": "bad", "variable": "spec.duration",
    "lower": 1, "upper": 2, "objective": "p", "statstic": "mean",
    "base": {"name": "b", "probes": [{"label": "p", "kind": "generator_power"}]}})")),
               ModelError);
}

TEST(SpecJson, StrictParsingRejectsUnknownKeysAndValues) {
  EXPECT_THROW((void)ehsim::io::experiment_from_json(
                   JsonValue::parse(R"({"type":"experiment","naem":"typo"})")),
               ModelError);
  EXPECT_THROW((void)ehsim::io::experiment_from_json(
                   JsonValue::parse(R"({"type":"experiment","engine":"spice99"})")),
               ModelError);
  EXPECT_THROW(
      (void)ehsim::io::spec_from_json(JsonValue::parse(R"({"type":"recipe"})")),
      ModelError);
  // Schedules with non-monotone events fail at parse time via validate().
  EXPECT_THROW((void)ehsim::io::experiment_from_json(JsonValue::parse(R"({
    "type": "experiment", "name": "bad",
    "excitation": {"initial_frequency_hz": 70, "events": [
      {"kind": "frequency_step", "time": 10, "frequency_hz": 71},
      {"kind": "frequency_step", "time": 5, "frequency_hz": 72}
    ]}})")),
               ModelError);
}

// ---- results --------------------------------------------------------------

TEST(ResultJson, SerialisesSummaryAndTrace) {
  ExperimentSpec spec = charging_scenario(0.2);
  spec.trace_interval = 0.01;
  const ScenarioResult result = run_experiment(spec);
  const JsonValue json = ehsim::io::to_json(result);
  EXPECT_EQ(json.at("scenario").as_string(), "supercap-charging");
  EXPECT_GT(json.at("stats").at("steps").as_number(), 100.0);
  EXPECT_EQ(json.at("trace_points").as_number(),
            static_cast<double>(result.time.size()));
  EXPECT_TRUE(json.at("mcu_events").as_array().empty());

  std::ostringstream csv;
  ehsim::io::write_trace_csv(csv, result);
  const std::string text = csv.str();
  EXPECT_EQ(text.substr(0, 8), "time,Vc\n");
  // Header plus one line per trace point.
  EXPECT_EQ(static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n')),
            result.time.size() + 1);
}

TEST(ResultJson, ProbesAppearInJsonAndAsCsvColumns) {
  ExperimentSpec spec = charging_scenario(0.2);
  spec.trace_interval = 0.01;
  spec.probes.push_back(ProbeSpec{"P_gen", ProbeSpec::Kind::kGeneratorPower});
  spec.probes.push_back(ProbeSpec{"P_pos", ProbeSpec::Kind::kGeneratorPower, "", 0.0, 0.0,
                                  0.0, false});
  const ScenarioResult result = run_experiment(spec);

  const JsonValue json = ehsim::io::to_json(result);
  const auto& probes = json.at("probes").as_array();
  ASSERT_EQ(probes.size(), 2u);
  EXPECT_EQ(probes[0].at("label").as_string(), "P_gen");
  EXPECT_EQ(probes[0].at("mean").as_number(), result.probes[0].mean);
  EXPECT_TRUE(probes[0].find("duty_cycle") == nullptr);
  EXPECT_EQ(probes[1].at("duty_cycle").as_number(), *result.probes[1].duty_cycle);
  EXPECT_EQ(probes[1].at("crossings").as_number(),
            static_cast<double>(*result.probes[1].crossings));

  // Only the recorded probe becomes a CSV column.
  std::ostringstream csv;
  ehsim::io::write_trace_csv(csv, result);
  const std::string text = csv.str();
  EXPECT_EQ(text.substr(0, text.find('\n')), "time,Vc,P_gen");
  EXPECT_EQ(static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n')),
            result.time.size() + 1);
  // The first data row has exactly three cells.
  const std::size_t row_start = text.find('\n') + 1;
  const std::string first_row = text.substr(row_start, text.find('\n', row_start) - row_start);
  EXPECT_EQ(static_cast<std::size_t>(std::count(first_row.begin(), first_row.end(), ',')),
            2u);
}

// ---- tolerance compare ----------------------------------------------------

TEST(Compare, JsonWithinToleranceMatches) {
  const JsonValue a = JsonValue::parse(R"({"x": 1.0, "y": [1e-3, 2.0], "s": "same"})");
  const JsonValue b = JsonValue::parse(R"({"x": 1.0000000001, "y": [1e-3, 2.0], "s": "same"})");
  CompareOptions loose;
  loose.rtol = 1e-6;
  EXPECT_TRUE(ehsim::io::compare_json(a, b, loose).empty());
  CompareOptions tight;
  tight.rtol = 1e-12;
  tight.atol = 0.0;
  const auto diffs = ehsim::io::compare_json(a, b, tight);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_NE(diffs[0].find("x"), std::string::npos);
}

TEST(Compare, IgnoredKeysAndStructuralDiffsReport) {
  const JsonValue a = JsonValue::parse(R"({"cpu_seconds": 1.0, "v": 2.0})");
  const JsonValue b = JsonValue::parse(R"({"cpu_seconds": 9.0, "v": 2.0, "extra": 1})");
  CompareOptions options;
  options.ignore_keys = {"cpu_seconds"};
  const auto diffs = ehsim::io::compare_json(a, b, options);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_NE(diffs[0].find("extra"), std::string::npos);
}

TEST(Compare, CsvCellwiseNumericTolerance) {
  const std::string a = "time,Vc\n0,1.00000000000\n0.5,2\n";
  const std::string b = "time,Vc\n0,1.00000000001\n0.5,2\n";
  CompareOptions options;
  options.rtol = 1e-9;
  EXPECT_TRUE(ehsim::io::compare_csv(a, b, options).empty());
  const std::string c = "time,Vc\n0,1.1\n0.5,2\n";
  EXPECT_FALSE(ehsim::io::compare_csv(a, c, options).empty());
  const std::string d = "time,Vc\n0,1\n";
  EXPECT_FALSE(ehsim::io::compare_csv(a, d, options).empty());
}

// ---- non-finite values: the writer policy and the compare policy ----------

/// Regression: nan/inf are not JSON tokens. The number constructor rejects
/// them naming the value; measured result quantities opt into null-encoding
/// so a pathological run still yields a parseable document.
TEST(Json, NonFiniteNumbersAreRejectedWithAClearErrorOrNullEncoded) {
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  try {
    (void)JsonValue(nan);
    FAIL() << "expected ModelError for a NaN JSON number";
  } catch (const ModelError& error) {
    EXPECT_NE(std::string(error.what()).find("nan"), std::string::npos);
  }
  try {
    (void)JsonValue(-inf);
    FAIL() << "expected ModelError for an infinite JSON number";
  } catch (const ModelError& error) {
    EXPECT_NE(std::string(error.what()).find("-inf"), std::string::npos);
  }
  EXPECT_TRUE(JsonValue::finite_or_null(nan).is_null());
  EXPECT_TRUE(JsonValue::finite_or_null(inf).is_null());
  EXPECT_EQ(JsonValue::finite_or_null(1.5).as_number(), 1.5);
}

TEST(ResultJson, NonFiniteMeasurementsNullEncodeIntoValidJson) {
  ExperimentSpec spec = charging_scenario(0.05);
  spec.trace_interval = 0.0;
  ScenarioResult result = run_experiment(spec);
  result.final_vc = std::nan("");
  result.rms_power_after = std::numeric_limits<double>::infinity();
  const JsonValue json = ehsim::io::to_json(result);
  EXPECT_TRUE(json.at("final_vc").is_null());
  EXPECT_TRUE(json.at("rms_power_after").is_null());
  // The document stays valid JSON end to end.
  EXPECT_EQ(JsonValue::parse(json.dump(2)), json);
}

/// Regression: NaN-vs-NaN used to report a diff on every undefined cell
/// (NaN != NaN and no tolerance inequality holds); both sides agreeing the
/// value is undefined is a match by policy. NaN against a number stays a
/// mismatch.
TEST(Compare, NanAgreesWithNanAndDisagreesWithNumbers) {
  CompareOptions options;
  EXPECT_TRUE(ehsim::io::compare_csv("v\nnan\n", "v\nnan\n", options).empty());
  EXPECT_TRUE(ehsim::io::compare_csv("v\ninf\n", "v\ninf\n", options).empty());
  EXPECT_FALSE(ehsim::io::compare_csv("v\nnan\n", "v\n1.0\n", options).empty());
  EXPECT_FALSE(ehsim::io::compare_csv("v\ninf\n", "v\n-inf\n", options).empty());
}

/// Regression: the CSV compare predates multi-column `time,Vc[,probe...]`
/// traces. It now matches columns by header name — reordered columns
/// compare clean, and a differing column set is reported once as a header
/// diff (with shared columns still compared) instead of drowning the report
/// in positional cell mismatches.
TEST(Compare, CsvComparesProbeColumnsByHeaderName) {
  CompareOptions options;
  // Same data, probe columns in a different order: a match.
  const std::string expected = "time,Vc,P_gen\n0,1,5\n0.5,2,6\n";
  const std::string reordered = "time,P_gen,Vc\n0,5,1\n0.5,6,2\n";
  EXPECT_TRUE(ehsim::io::compare_csv(expected, reordered, options).empty());

  // A probe column missing from actual: one header diff naming the column,
  // and the shared columns are still compared (the Vc mismatch on line 3).
  const std::string missing = "time,Vc\n0,1\n0.5,9\n";
  const auto diffs = ehsim::io::compare_csv(expected, missing, options);
  ASSERT_EQ(diffs.size(), 2u);
  EXPECT_NE(diffs[0].find("'P_gen' missing in actual"), std::string::npos);
  EXPECT_NE(diffs[1].find("column 'Vc'"), std::string::npos);

  // An extra column in actual is reported symmetrically.
  const auto extra = ehsim::io::compare_csv(missing, expected, options);
  ASSERT_EQ(extra.size(), 2u);
  EXPECT_NE(extra[0].find("'P_gen' unexpected in actual"), std::string::npos);

  // Headerless (all-numeric) CSV keeps the positional comparison.
  EXPECT_TRUE(ehsim::io::compare_csv("1,2\n", "1,2\n", options).empty());
  EXPECT_FALSE(ehsim::io::compare_csv("1,2\n", "2,1\n", options).empty());
}

// ---- the checked-in spec files match the canned C++ specs -----------------

TEST(SpecFiles, Scenario1FileEqualsCannedSpec) {
  const auto file =
      ehsim::io::load_spec_file(std::string(EHSIM_SOURCE_DIR) + "/examples/specs/scenario1.json");
  ASSERT_NE(file.get_if<ehsim::experiments::ExperimentSpec>(), nullptr);
  EXPECT_EQ((*file.get_if<ehsim::experiments::ExperimentSpec>()), scenario1());
}

TEST(SpecFiles, Scenario2FileEqualsCannedSpec) {
  const auto file =
      ehsim::io::load_spec_file(std::string(EHSIM_SOURCE_DIR) + "/examples/specs/scenario2.json");
  ASSERT_NE(file.get_if<ehsim::experiments::ExperimentSpec>(), nullptr);
  EXPECT_EQ((*file.get_if<ehsim::experiments::ExperimentSpec>()), scenario2());
}

TEST(SpecFiles, DriftingAmbientFileIsAMultiEventSchedule) {
  const auto file = ehsim::io::load_spec_file(std::string(EHSIM_SOURCE_DIR) +
                                              "/examples/specs/drifting_ambient.json");
  ASSERT_NE(file.get_if<ehsim::experiments::ExperimentSpec>(), nullptr);
  const ExperimentSpec& spec = (*file.get_if<ehsim::experiments::ExperimentSpec>());
  ASSERT_GE(spec.excitation.events.size(), 3u);
  bool has_ramp = false;
  for (const auto& event : spec.excitation.events) {
    has_ramp = has_ramp || event.kind == ExcitationEvent::Kind::kFrequencyRamp;
  }
  EXPECT_TRUE(has_ramp);
  // Round-trips losslessly through text.
  EXPECT_EQ(ehsim::io::experiment_from_json(
                JsonValue::parse(ehsim::io::to_json(spec).dump(2))),
            spec);
}

TEST(SpecFiles, ProbesDemoFileCoversEveryProbeKind) {
  const auto file = ehsim::io::load_spec_file(std::string(EHSIM_SOURCE_DIR) +
                                              "/examples/specs/probes_demo.json");
  ASSERT_NE(file.get_if<ehsim::experiments::ExperimentSpec>(), nullptr);
  const ExperimentSpec& spec = (*file.get_if<ehsim::experiments::ExperimentSpec>());
  ASSERT_GE(spec.probes.size(), 5u);
  for (const auto kind :
       {ProbeSpec::Kind::kNodeVoltage, ProbeSpec::Kind::kStateVariable,
        ProbeSpec::Kind::kGeneratorPower, ProbeSpec::Kind::kHarvestedPower,
        ProbeSpec::Kind::kStoredEnergy, ProbeSpec::Kind::kMcuState}) {
    const bool covered = std::any_of(spec.probes.begin(), spec.probes.end(),
                                     [kind](const ProbeSpec& p) { return p.kind == kind; });
    EXPECT_TRUE(covered) << probe_kind_id(kind);
  }
  EXPECT_EQ(ehsim::io::experiment_from_json(
                JsonValue::parse(ehsim::io::to_json(spec).dump(2))),
            spec);
}

TEST(SpecFiles, Scenario1TuningFileIsAValidOptimiseSpec) {
  const auto file = ehsim::io::load_spec_file(std::string(EHSIM_SOURCE_DIR) +
                                              "/examples/specs/scenario1_tuning.json");
  ASSERT_NE(file.get_if<ehsim::experiments::OptimiseSpec>(), nullptr);
  const OptimiseSpec& spec = (*file.get_if<ehsim::experiments::OptimiseSpec>());
  EXPECT_EQ(spec.variable, "spec.pre_tuned_hz");
  EXPECT_EQ(spec.objective, "P_gen");
  EXPECT_EQ(ehsim::io::optimise_from_json(
                JsonValue::parse(ehsim::io::to_json(spec).dump(2))),
            spec);
}

TEST(SpecFiles, SweepFileExpandsToEightJobs) {
  const auto file = ehsim::io::load_spec_file(std::string(EHSIM_SOURCE_DIR) +
                                              "/examples/specs/stage_count_sweep.json");
  ASSERT_NE(file.get_if<ehsim::experiments::SweepSpec>(), nullptr);
  EXPECT_EQ(file.get_if<ehsim::experiments::SweepSpec>()->job_count(), 8u);
  EXPECT_EQ(ehsim::io::sweep_from_json(
                JsonValue::parse(ehsim::io::to_json((*file.get_if<ehsim::experiments::SweepSpec>())).dump())),
            (*file.get_if<ehsim::experiments::SweepSpec>()));
}

}  // namespace
