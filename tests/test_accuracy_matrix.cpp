/// \file test_accuracy_matrix.cpp
/// \brief Oracle-measured error-bound regression matrix: engines x kernels.
///
/// Runs miniature harvester scenarios against the extended-precision
/// reference oracle (experiments::run_accuracy) across the engine kinds and
/// all three batch kernels, and pins the measured relative-error bounds as
/// regression limits. Until this matrix existed, the repo's accuracy claims
/// were engine-vs-engine; the PR-6 lockstep kernels in particular carried a
/// "within 1e-3 on Vc" claim that was never measured against an independent
/// yardstick. The limits asserted here are ~10x above the values measured at
/// introduction, so they fail on a real regression, not on FP noise:
///
///   proposed engine, Vc trace, all kernels:   measured ~2e-4 (limit 2e-3)
///   proposed engine, delivered energy:        measured ~4e-2 (limit 6e-2;
///       this is the PWL-table/linearisation modelling floor on the diode
///       multiplier — see docs/accuracy.md — not an integration error)
///   NR baselines, Vc trace:                   measured ~1e-3..1e-2
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "experiments/accuracy.hpp"
#include "experiments/scenarios.hpp"
#include "experiments/sweep.hpp"

namespace {

using ehsim::ModelError;
using ehsim::experiments::AccuracyOptions;
using ehsim::experiments::AccuracyReport;
using ehsim::experiments::BatchKernel;
using ehsim::experiments::EngineKind;
using ehsim::experiments::ExperimentSpec;
using ehsim::experiments::KernelAccuracy;
using ehsim::experiments::SweepAxis;
using ehsim::experiments::SweepSpec;

/// Miniature scenario-1 variant: 1 s of charging with one mid-run retune,
/// small enough that the oracle (h = 2e-4) stays test-suite fast.
ExperimentSpec short_spec() {
  ExperimentSpec spec = ehsim::experiments::scenario1();
  spec.name = "accuracy-matrix";
  spec.duration = 1.0;
  spec.with_mcu = false;
  spec.trace_interval = 0.02;
  spec.power_bin_width = 0.25;
  spec.excitation.events.clear();
  spec.excitation.step_frequency(0.4, 71.0);
  spec.probes.clear();
  spec.probes.push_back({.label = "P_store",
                         .kind = ehsim::experiments::ProbeSpec::Kind::kHarvestedPower,
                         .target = "",
                         .record = false});
  return spec;
}

AccuracyOptions oracle_options(std::vector<BatchKernel> kernels) {
  AccuracyOptions options;
  options.kernels = std::move(kernels);
  options.oracle_step = 2e-4;
  return options;
}

const KernelAccuracy& kernel_row(const AccuracyReport& report, const char* id) {
  const auto it = std::find_if(report.kernels.begin(), report.kernels.end(),
                               [id](const KernelAccuracy& k) { return k.kernel == id; });
  EXPECT_NE(it, report.kernels.end()) << "kernel " << id << " missing from report";
  return *it;
}

// ---- the proposed engine across all three batch kernels --------------------

TEST(AccuracyMatrix, ProposedKernelsStayWithinMeasuredVcBounds) {
  // A two-job sweep whose members share a prefix and then diverge (distinct
  // retune targets) — exactly the shape where lockstep Jacobian sharing has
  // to earn its accuracy claim.
  SweepSpec sweep;
  sweep.base = short_spec();
  sweep.axes.push_back(SweepAxis{
      .param = "excitation.event[0].frequency_hz", .values = {70.5, 71.5}, .engines = {}});

  for (const BatchKernel kernel :
       {BatchKernel::kJobs, BatchKernel::kLockstep, BatchKernel::kLockstepExpm}) {
    const AccuracyReport report =
        ehsim::experiments::run_accuracy(sweep, oracle_options({kernel}));
    ASSERT_EQ(report.kernels.size(), 1u);
    const KernelAccuracy& row = report.kernels.front();
    EXPECT_EQ(row.kernel, ehsim::experiments::batch_kernel_id(kernel));
    ASSERT_EQ(row.jobs.size(), 2u) << row.kernel;

    // The PR-6 claim, now a measured number: every kernel holds the Vc
    // trace well inside 1e-3 of the oracle on this scenario.
    EXPECT_GT(row.bounds.vc_max_rel_error, 0.0) << row.kernel;
    EXPECT_LT(row.bounds.vc_max_rel_error, 2e-3) << row.kernel;
    EXPECT_LE(row.bounds.vc_rms_rel_error, row.bounds.vc_max_rel_error) << row.kernel;
    EXPECT_LT(row.bounds.final_vc_rel_error, 2e-3) << row.kernel;
    // Delivered-energy error sits on the PWL/linearisation modelling floor.
    EXPECT_LT(row.bounds.energy_rel_error, 6e-2) << row.kernel;
    // The declared probe is measured per job.
    for (const auto& job : row.jobs) {
      ASSERT_EQ(job.probes.size(), 1u) << row.kernel;
      EXPECT_EQ(job.probes.front().label, "P_store") << row.kernel;
      EXPECT_LT(job.probes.front().max_rel_error, 6e-2) << row.kernel;
    }
    // Oracle bookkeeping: the requested step was honoured and work was done.
    EXPECT_DOUBLE_EQ(report.oracle_step, 2e-4);
    EXPECT_GT(report.oracle_steps, 0u);
    EXPECT_GT(row.steps, 0u);
  }
}

TEST(AccuracyMatrix, KernelBoundsAreMaxOverJobs) {
  SweepSpec sweep;
  sweep.base = short_spec();
  sweep.axes.push_back(SweepAxis{
      .param = "excitation.event[0].frequency_hz", .values = {70.5, 71.5}, .engines = {}});
  const AccuracyReport report =
      ehsim::experiments::run_accuracy(sweep, oracle_options({BatchKernel::kJobs}));
  const KernelAccuracy& row = kernel_row(report, "jobs");
  double worst_vc = 0.0;
  double worst_energy = 0.0;
  for (const auto& job : row.jobs) {
    worst_vc = std::max(worst_vc, job.errors.vc_max_rel_error);
    worst_energy = std::max(worst_energy, job.errors.energy_rel_error);
  }
  EXPECT_DOUBLE_EQ(row.bounds.vc_max_rel_error, worst_vc);
  EXPECT_DOUBLE_EQ(row.bounds.energy_rel_error, worst_energy);
}

// ---- the NR baseline engines ----------------------------------------------

TEST(AccuracyMatrix, BaselineEnginesMeasureUnderTheJobsKernel) {
  for (const EngineKind engine :
       {EngineKind::kSystemVision, EngineKind::kPspice, EngineKind::kSystemCA}) {
    ExperimentSpec spec = short_spec();
    spec.engine = engine;
    const AccuracyReport report =
        ehsim::experiments::run_accuracy(spec, oracle_options({BatchKernel::kJobs}));
    EXPECT_EQ(report.engine, ehsim::experiments::engine_kind_id(engine));
    const KernelAccuracy& row = kernel_row(report, "jobs");
    // The fixed-step NR baselines are coarser than the proposed engine but
    // must still track the oracle: Vc within 3% on this scenario
    // (measured: trapezoid ~1e-3, Gear-2/backward-Euler up to ~1e-2).
    EXPECT_GT(row.bounds.vc_max_rel_error, 0.0)
        << ehsim::experiments::engine_kind_id(engine);
    EXPECT_LT(row.bounds.vc_max_rel_error, 3e-2)
        << ehsim::experiments::engine_kind_id(engine);
    EXPECT_LT(row.bounds.energy_rel_error, 0.12)
        << ehsim::experiments::engine_kind_id(engine);
  }
}

// ---- misuse is rejected ----------------------------------------------------

TEST(AccuracyMatrix, LockstepKernelsRejectBaselineEngines) {
  ExperimentSpec spec = short_spec();
  spec.engine = EngineKind::kSystemVision;
  EXPECT_THROW((void)ehsim::experiments::run_accuracy(
                   spec, oracle_options({BatchKernel::kLockstep})),
               ModelError);
  EXPECT_THROW((void)ehsim::experiments::run_accuracy(
                   spec, oracle_options({BatchKernel::kLockstepExpm})),
               ModelError);
}

TEST(AccuracyMatrix, OracleRefusesToJudgeItself) {
  ExperimentSpec spec = short_spec();
  spec.engine = EngineKind::kReference;
  EXPECT_THROW((void)ehsim::experiments::run_accuracy(spec, oracle_options({})),
               ModelError);
}

// ---- oracle-step convergence ----------------------------------------------

TEST(AccuracyMatrix, MeasuredVcErrorIsStableUnderOracleRefinement) {
  // The measurement must be a property of the fast path, not of the oracle.
  // On this scenario the proposed engine tracks the oracle's Vc at roundoff
  // scale (~1e-13 measured) — so the assertion is that halving the oracle
  // step keeps the bound at that scale, orders of magnitude below any
  // budget, rather than revealing an oracle-step-sized artefact.
  ExperimentSpec spec = short_spec();
  const AccuracyReport coarse =
      ehsim::experiments::run_accuracy(spec, oracle_options({BatchKernel::kJobs}));
  AccuracyOptions fine_options = oracle_options({BatchKernel::kJobs});
  fine_options.oracle_step = 1e-4;
  const AccuracyReport fine = ehsim::experiments::run_accuracy(spec, fine_options);
  const double coarse_vc = kernel_row(coarse, "jobs").bounds.vc_max_rel_error;
  const double fine_vc = kernel_row(fine, "jobs").bounds.vc_max_rel_error;
  EXPECT_GT(fine_vc, 0.0);
  EXPECT_LT(coarse_vc, 1e-9);
  EXPECT_LT(fine_vc, 1e-9);
}

}  // namespace
