/// \file test_concurrency_stress.cpp
/// \brief Cross-thread stress for every shared structure in the repo: the
/// serve JobQueue, the SessionPool, the process-wide diode-table cache, the
/// OperatingPointCache and the ThreadPool itself.
///
/// These tests assert *invariants under contention* (counters balance,
/// first-store-wins, pointer identity per key), not timings. They are the
/// workload the TSan CI job runs: a data race anywhere in the annotated
/// subsystems shows up here as a sanitizer report, a lost update or a hang.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "experiments/scenarios.hpp"
#include "experiments/warm_start.hpp"
#include "pwl/table_cache.hpp"
#include "serve/job_queue.hpp"
#include "serve/protocol.hpp"
#include "serve/session_pool.hpp"
#include "sim/thread_pool.hpp"

namespace {

using namespace ehsim;

constexpr std::size_t kThreads = 8;

serve::Request stats_request(std::uint64_t id) {
  serve::Request request;
  request.id = id;
  request.type = serve::RequestType::kStats;
  return request;
}

// ---- JobQueue ---------------------------------------------------------------

TEST(ConcurrencyStress, JobQueueEnqueueDequeueDrainBalances) {
  serve::JobQueue queue(4);  // deliberately smaller than the thread count:
                             // producers must block on the full ring
  constexpr std::size_t kPerProducer = 200;
  constexpr std::size_t kProducers = kThreads / 2;
  constexpr std::size_t kConsumers = kThreads - kProducers;

  std::atomic<std::size_t> consumed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.enqueue(stats_request(p * kPerProducer + i)));
      }
    });
  }
  for (std::size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&queue, &consumed] {
      while (queue.dequeue().has_value()) {
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads[p].join();  // all enqueues accepted before the close
  }
  queue.close();
  for (std::size_t c = kProducers; c < kThreads; ++c) {
    threads[c].join();
  }

  const serve::JobQueue::Stats stats = queue.stats();
  EXPECT_EQ(stats.enqueued, kProducers * kPerProducer);
  EXPECT_EQ(stats.dequeued, kProducers * kPerProducer);
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  EXPECT_EQ(stats.depth, 0u);
  EXPECT_LE(stats.max_depth, stats.capacity);
  EXPECT_EQ(stats.state, serve::JobQueue::State::kClosed);
}

TEST(ConcurrencyStress, JobQueueCloseWakesBlockedProducers) {
  serve::JobQueue queue(1);
  ASSERT_TRUE(queue.enqueue(stats_request(0)));  // ring now full

  std::atomic<std::size_t> rejected{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kThreads; ++p) {
    producers.emplace_back([&queue, &rejected] {
      // Blocks on the full ring until close() turns it away.
      if (!queue.enqueue(stats_request(1))) {
        rejected.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Let the producers pile up on not_full_, then close. A sleep would only
  // hide a lost-wakeup bug; close() must wake ALL of them regardless.
  queue.close();
  for (std::thread& producer : producers) {
    producer.join();
  }
  // Whatever raced into the single freed slot is bounded by the ring:
  // everyone else must have been rejected rather than left blocked forever.
  EXPECT_GE(rejected.load(), kThreads - 1);

  // The backlog accepted before/at the close still drains.
  std::size_t drained = 0;
  while (queue.dequeue().has_value()) {
    ++drained;
  }
  EXPECT_EQ(drained, queue.stats().enqueued);
  EXPECT_EQ(queue.stats().state, serve::JobQueue::State::kClosed);
}

TEST(ConcurrencyStress, JobQueueDestructorAfterDrainUnderContention) {
  // The queue must be destructible right after close+drain even when
  // consumers only just returned — no waiter may still touch the freed
  // condition variables. Loop to give TSan interleavings to chew on.
  for (int round = 0; round < 20; ++round) {
    auto queue = std::make_unique<serve::JobQueue>(2);
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < 3; ++c) {
      threads.emplace_back([&queue] {
        while (queue->dequeue().has_value()) {
        }
      });
    }
    threads.emplace_back([&queue] {
      for (std::uint64_t i = 0; i < 8; ++i) {
        (void)queue->enqueue(stats_request(i));
      }
      queue->close();
    });
    for (std::thread& thread : threads) {
      thread.join();
    }
    queue.reset();  // destruct immediately after the last waiter left
  }
}

// ---- SessionPool ------------------------------------------------------------

TEST(ConcurrencyStress, SessionPoolTakePutEvictUnderContention) {
  serve::SessionPool pool(2);  // tighter than the key set: constant eviction
  const std::vector<std::string> keys = {"a", "b", "c"};

  experiments::ExperimentSpec spec = experiments::charging_scenario(0.02);
  spec.trace_interval = 0.01;

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &keys, &spec, t] {
      for (int i = 0; i < 8; ++i) {
        const std::string& key = keys[(t + static_cast<std::size_t>(i)) % keys.size()];
        std::optional<experiments::PreparedRun> run = pool.take(key);
        if (!run) {
          // Preparation happens outside the pool's lock by design.
          run = experiments::prepare_run(spec, {});
        }
        pool.put(key, std::move(*run));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  const serve::SessionPool::Stats stats = pool.stats();
  EXPECT_LE(stats.entries, 2u);
  EXPECT_EQ(stats.hits + stats.misses, kThreads * 8);
  EXPECT_EQ(stats.inserts, kThreads * 8);
  // Every insert beyond capacity displaced the FIFO head (replacements of a
  // live key keep their slot, so eviction count is bounded by inserts).
  EXPECT_GE(stats.inserts, stats.evictions);
}

// ---- process-wide diode-table cache ----------------------------------------

TEST(ConcurrencyStress, DiodeTableCacheSharesOneInstancePerKey) {
  pwl::reset_diode_table_cache();
  constexpr std::size_t kKeys = 3;

  std::vector<std::vector<std::shared_ptr<const pwl::DiodeTable>>> seen(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&seen, t] {
      for (std::size_t i = 0; i < 12; ++i) {
        pwl::DiodeParams params;
        const std::size_t key = (t + i) % kKeys;
        params.saturation_current = 1e-7 * static_cast<double>(key + 1);
        seen[t].push_back(pwl::shared_diode_table(params, 64, -1.0, 10.0));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  // All tables for one key must be the same immutable instance — with one
  // caveat the cache documents: two threads that both miss concurrently may
  // each build a table, and the loser of the publish race keeps its private
  // copy. So per key, at most 1 + (threads - 1) distinct pointers, and the
  // cached instance identity is stable once published.
  for (std::size_t key = 0; key < kKeys; ++key) {
    pwl::DiodeParams params;
    params.saturation_current = 1e-7 * static_cast<double>(key + 1);
    const std::shared_ptr<const pwl::DiodeTable> cached =
        pwl::shared_diode_table(params, 64, -1.0, 10.0);
    const std::shared_ptr<const pwl::DiodeTable> again =
        pwl::shared_diode_table(params, 64, -1.0, 10.0);
    EXPECT_EQ(cached.get(), again.get());
  }
  const pwl::TableCacheStats stats = pwl::diode_table_cache_stats();
  EXPECT_EQ(stats.entries, kKeys);
  EXPECT_GT(stats.hits, 0u);
}

// ---- OperatingPointCache ----------------------------------------------------

TEST(ConcurrencyStress, OperatingPointCacheFirstStoreWinsUnderContention) {
  experiments::OperatingPointCache cache;
  constexpr std::uint64_t kSignature = 42;

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      const std::vector<double> mine(4, static_cast<double>(t));
      for (int i = 0; i < 50; ++i) {
        cache.store(kSignature, mine);
        const std::optional<std::vector<double>> seen = cache.find(kSignature);
        ASSERT_TRUE(seen.has_value());
        // First store wins: whatever is visible is some thread's complete
        // vector, never a torn mix.
        ASSERT_EQ(seen->size(), 4u);
        EXPECT_EQ((*seen)[0], (*seen)[3]);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  EXPECT_EQ(cache.size(), 1u);
  // Once every writer quiesced the winning value is frozen.
  const std::optional<std::vector<double>> final_value = cache.find(kSignature);
  ASSERT_TRUE(final_value.has_value());
  cache.store(kSignature, std::vector<double>(4, 999.0));
  EXPECT_EQ(*cache.find(kSignature), *final_value);
}

// ---- ThreadPool -------------------------------------------------------------

TEST(ConcurrencyStress, ThreadPoolSubmitStormFromManyThreads) {
  std::atomic<std::size_t> executed{0};
  {
    sim::ThreadPool pool(4);
    std::vector<std::thread> submitters;
    for (std::size_t t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&pool, &executed] {
        for (int i = 0; i < 100; ++i) {
          pool.submit([&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
        }
      });
    }
    for (std::thread& submitter : submitters) {
      submitter.join();
    }
    // The destructor drains the backlog before joining its workers.
  }
  EXPECT_EQ(executed.load(), kThreads * 100);
}

}  // namespace
