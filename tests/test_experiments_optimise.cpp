/// \file test_experiments_optimise.cpp
/// \brief Derivative-free maximisers and the declarative optimise driver
/// (the paper's design-loop tooling, now runnable from a spec file).
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/error.hpp"
#include "experiments/optimise.hpp"
#include "experiments/optimise_spec.hpp"
#include "io/json.hpp"
#include "io/spec_json.hpp"

namespace {

using ehsim::ModelError;
using ehsim::experiments::coordinate_descent_maximise;
using ehsim::experiments::golden_section_maximise;
using ehsim::experiments::OptimiseOptions;

TEST(GoldenSection, FindsQuadraticPeak) {
  const auto result = golden_section_maximise(
      [](double x) { return -(x - 2.5) * (x - 2.5); }, 0.0, 10.0);
  EXPECT_NEAR(result.x, 2.5, 0.02);
  EXPECT_NEAR(result.value, 0.0, 1e-3);
  EXPECT_GT(result.evaluations, 4u);
}

TEST(GoldenSection, PeakAtBoundary) {
  const auto result =
      golden_section_maximise([](double x) { return x; }, 0.0, 1.0);
  EXPECT_NEAR(result.x, 1.0, 0.01);
}

TEST(GoldenSection, RespectsEvaluationBudget) {
  std::size_t calls = 0;
  OptimiseOptions options;
  options.max_evaluations = 10;
  options.x_tolerance = 1e-12;  // would otherwise iterate much longer
  const auto result = golden_section_maximise(
      [&calls](double x) {
        ++calls;
        return -x * x;
      },
      -1.0, 1.0, options);
  EXPECT_LE(calls, 11u);  // budget check happens at loop top
  EXPECT_EQ(result.evaluations, calls);
}

TEST(GoldenSection, NonSmoothUnimodalPeak) {
  const auto result = golden_section_maximise(
      [](double x) { return -std::abs(x - 0.7); }, 0.0, 1.0);
  EXPECT_NEAR(result.x, 0.7, 0.01);
}

TEST(GoldenSection, InvalidInputs) {
  EXPECT_THROW((void)golden_section_maximise(nullptr, 0.0, 1.0), ModelError);
  EXPECT_THROW((void)golden_section_maximise([](double) { return 0.0; }, 1.0, 1.0), ModelError);
}

TEST(GoldenSection, NonUnimodalObjectiveConvergesDeterministically) {
  // Two peaks (at ~0.2 and ~0.8). Golden section assumes unimodality; on a
  // bimodal objective it still terminates within budget and lands on one of
  // the local maxima — documented behaviour, not global optimisation.
  const auto bimodal = [](double x) {
    return std::exp(-100.0 * (x - 0.2) * (x - 0.2)) +
           1.5 * std::exp(-100.0 * (x - 0.8) * (x - 0.8));
  };
  const auto first = golden_section_maximise(bimodal, 0.0, 1.0);
  const auto second = golden_section_maximise(bimodal, 0.0, 1.0);
  EXPECT_EQ(first.x, second.x);  // deterministic, bit for bit
  EXPECT_EQ(first.value, second.value);
  EXPECT_LE(first.evaluations, OptimiseOptions{}.max_evaluations);
  const bool near_a_peak = std::abs(first.x - 0.2) < 0.05 || std::abs(first.x - 0.8) < 0.05;
  EXPECT_TRUE(near_a_peak) << first.x;
  EXPECT_DOUBLE_EQ(first.value, bimodal(first.x));
}

TEST(CoordinateDescent, FindsSeparableQuadraticPeak) {
  const auto result = coordinate_descent_maximise(
      [](const std::vector<double>& x) {
        return -(x[0] - 1.0) * (x[0] - 1.0) - 2.0 * (x[1] + 0.5) * (x[1] + 0.5);
      },
      {-5.0, -5.0}, {5.0, 5.0}, {0.0, 0.0});
  EXPECT_NEAR(result.x[0], 1.0, 0.05);
  EXPECT_NEAR(result.x[1], -0.5, 0.05);
  EXPECT_GE(result.sweeps, 1u);
}

TEST(CoordinateDescent, HandlesCorrelatedObjective) {
  // Rotated bowl: coordinate descent still converges (slower).
  OptimiseOptions options;
  options.max_evaluations = 200;
  const auto result = coordinate_descent_maximise(
      [](const std::vector<double>& x) {
        const double u = x[0] + 0.5 * x[1] - 1.0;
        const double v = x[1] - 0.25;
        return -(u * u) - v * v;
      },
      {-4.0, -4.0}, {4.0, 4.0}, {0.0, 0.0}, options);
  EXPECT_NEAR(result.value, 0.0, 0.01);
}

TEST(CoordinateDescent, StartValueCounted) {
  std::size_t calls = 0;
  OptimiseOptions options;
  options.max_evaluations = 3;  // only the initial evaluation fits a sweep
  const auto result = coordinate_descent_maximise(
      [&calls](const std::vector<double>& x) {
        ++calls;
        return -x[0] * x[0];
      },
      {-1.0}, {1.0}, {0.5}, options);
  EXPECT_EQ(result.evaluations, calls);
  EXPECT_LE(calls, 4u);
}

TEST(CoordinateDescent, InvalidInputs) {
  EXPECT_THROW(coordinate_descent_maximise(nullptr, {0.0}, {1.0}, {0.5}), ModelError);
  EXPECT_THROW(coordinate_descent_maximise([](const std::vector<double>&) { return 0.0; },
                                           {0.0, 0.0}, {1.0}, {0.5, 0.5}),
               ModelError);
  EXPECT_THROW(coordinate_descent_maximise([](const std::vector<double>&) { return 0.0; },
                                           {1.0}, {0.0}, {0.5}),
               ModelError);
}

// ---- the declarative optimise driver --------------------------------------

using namespace ehsim::experiments;

OptimiseSpec tiny_optimise_spec() {
  OptimiseSpec spec;
  spec.name = "tiny";
  spec.base = charging_scenario(0.05);
  spec.base.trace_interval = 0.0;
  spec.base.probes.push_back(ProbeSpec{"E", ProbeSpec::Kind::kStoredEnergy});
  spec.variable = "supercap.initial_voltage";
  spec.lower = 0.0;
  spec.upper = 1.0;
  spec.objective = "E";
  spec.statistic = "final";
  spec.max_evaluations = 4;
  spec.x_tolerance = 1e-6;
  return spec;
}

TEST(OptimiseSpecValidation, RejectsInconsistentSpecs) {
  const OptimiseSpec good = tiny_optimise_spec();
  EXPECT_NO_THROW(good.validate());

  OptimiseSpec degenerate = good;  // lo == hi: the degenerate bracket
  degenerate.lower = degenerate.upper = 1.0;
  EXPECT_THROW(degenerate.validate(), ModelError);

  OptimiseSpec inverted = good;
  inverted.lower = 2.0;
  inverted.upper = 1.0;
  EXPECT_THROW(inverted.validate(), ModelError);

  OptimiseSpec bad_variable = good;
  bad_variable.variable = "supercap.initial_volts";  // typo
  EXPECT_THROW(bad_variable.validate(), ModelError);

  OptimiseSpec bad_objective = good;
  bad_objective.objective = "missing-probe";
  EXPECT_THROW(bad_objective.validate(), ModelError);

  OptimiseSpec bad_statistic = good;
  bad_statistic.statistic = "median";
  EXPECT_THROW(bad_statistic.validate(), ModelError);

  OptimiseSpec thresholdless = good;
  thresholdless.statistic = "duty_cycle";  // probe "E" has no threshold
  EXPECT_THROW(thresholdless.validate(), ModelError);

  OptimiseSpec starved = good;
  starved.max_evaluations = 1;  // bracket needs two interior points
  EXPECT_THROW(starved.validate(), ModelError);

  OptimiseSpec no_tolerance = good;
  no_tolerance.x_tolerance = 0.0;
  EXPECT_THROW(no_tolerance.validate(), ModelError);
}

/// Regression: golden section over an integer-backed device parameter used
/// to evaluate fractional candidates that set_param silently rounds — the
/// objective became a step function with spurious plateaus and the "optimum"
/// a fractional stage count. Such variables are now rejected up front,
/// naming the path.
TEST(OptimiseSpecValidation, RejectsIntegerValuedVariablePaths) {
  for (const char* path : {"multiplier.stages", "multiplier.table_segments"}) {
    OptimiseSpec spec = tiny_optimise_spec();
    spec.variable = path;
    spec.lower = 2.0;
    spec.upper = 9.0;
    try {
      spec.validate();
      FAIL() << "expected ModelError for integer-valued variable " << path;
    } catch (const ModelError& error) {
      EXPECT_NE(std::string(error.what()).find(path), std::string::npos);
      EXPECT_NE(std::string(error.what()).find("integer-valued"), std::string::npos);
    }
  }
  // Continuous device parameters and spec fields stay accepted.
  OptimiseSpec continuous = tiny_optimise_spec();
  continuous.variable = "multiplier.stage_capacitance";
  continuous.lower = 1e-7;
  continuous.upper = 1e-6;
  EXPECT_NO_THROW(continuous.validate());
}

TEST(OptimiseDriver, ExhaustsIterationCapAndLogsEveryEvaluation) {
  // Stored energy grows monotonically with the precharge, so the bracket
  // never collapses and only the evaluation budget stops the search.
  const OptimiseSpec spec = tiny_optimise_spec();
  const OptimiseResult result = run_optimise(spec);
  EXPECT_EQ(result.best.evaluations, spec.max_evaluations);
  EXPECT_EQ(result.evaluations.size(), spec.max_evaluations);
  // The monotone objective pushes the optimum toward the upper bracket edge.
  EXPECT_GT(result.best.x, 0.5);
  // The log is consistent with the reported optimum...
  bool found = false;
  for (const auto& evaluation : result.evaluations) {
    EXPECT_LE(evaluation.objective, result.best.value);
    found = found || (evaluation.x == result.best.x &&
                      evaluation.objective == result.best.value);
  }
  EXPECT_TRUE(found);
  // ...and the deterministic best-run re-run reproduces the winner bit for
  // bit.
  ASSERT_EQ(result.best_run.probes.size(), 1u);
  EXPECT_EQ(probe_statistic(result.best_run.probes[0], "final"), result.best.value);
}

TEST(OptimiseDriver, MinimiseFlipsTheObjective) {
  OptimiseSpec spec = tiny_optimise_spec();
  spec.maximise = false;
  const OptimiseResult result = run_optimise(spec);
  // Minimising stored energy drives the precharge toward the lower edge.
  EXPECT_LT(result.best.x, 0.5);
  for (const auto& evaluation : result.evaluations) {
    EXPECT_GE(evaluation.objective, result.best.value);
  }
}

/// Acceptance: the checked-in scenario-1 tuning spec reproduces the
/// hand-coded C++ golden-section loop bit-identically — the declarative
/// driver is a superset of driving the C++ API directly, not a parallel
/// path. The hand-coded side below deliberately spells out the loop the way
/// pre-spec code did (copy the base spec, set the variable, run, read the
/// probe) instead of calling into the driver's internals.
TEST(OptimiseDriver, Scenario1TuningSpecMatchesHandCodedLoopBitIdentically) {
  const auto file = ehsim::io::load_spec_file(std::string(EHSIM_SOURCE_DIR) +
                                              "/examples/specs/scenario1_tuning.json");
  ASSERT_TRUE(file.optimise.has_value());
  const OptimiseSpec& spec = *file.optimise;
  ASSERT_EQ(spec.variable, "spec.pre_tuned_hz");

  std::vector<double> probed_x;
  const auto hand_coded = [&](double pre_tuned_hz) {
    ExperimentSpec candidate = optimise_candidate(spec, pre_tuned_hz);
    // optimise_candidate only copies the base, applies the variable and
    // names the job; assert that is all it did.
    EXPECT_EQ(candidate.pre_tuned_hz, pre_tuned_hz);
    EXPECT_EQ(candidate.excitation, spec.base.excitation);
    probed_x.push_back(pre_tuned_hz);
    const ScenarioResult run = run_experiment(candidate);
    return probe_statistic(run.probes.front(), spec.statistic);
  };
  OptimiseOptions options;
  options.max_evaluations = spec.max_evaluations;
  options.x_tolerance = spec.x_tolerance;
  const auto direct =
      golden_section_maximise(hand_coded, spec.lower, spec.upper, options);

  const OptimiseResult driver = run_optimise(spec);

  // Bit-identical optimum, objective and evaluation sequence.
  EXPECT_EQ(driver.best.x, direct.x);
  EXPECT_EQ(driver.best.value, direct.value);
  EXPECT_EQ(driver.best.evaluations, direct.evaluations);
  ASSERT_EQ(driver.evaluations.size(), probed_x.size());
  for (std::size_t i = 0; i < probed_x.size(); ++i) {
    EXPECT_EQ(driver.evaluations[i].x, probed_x[i]) << i;
  }
  // The optimum retunes the generator close to the 70 Hz ambient line (the
  // loaded, damped peak sits slightly above the mechanical resonance).
  EXPECT_NEAR(driver.best.x, 70.0, 1.0);
}

}  // namespace
