/// \file test_experiments_optimise.cpp
/// \brief Derivative-free maximisers and the declarative optimise driver
/// (the paper's design-loop tooling, now runnable from a spec file).
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/error.hpp"
#include "experiments/optimise.hpp"
#include "experiments/optimise_spec.hpp"
#include "io/json.hpp"
#include "io/spec_json.hpp"

namespace {

using ehsim::ModelError;
using ehsim::experiments::coordinate_descent_maximise;
using ehsim::experiments::golden_section_maximise;
using ehsim::experiments::OptimiseOptions;

TEST(GoldenSection, FindsQuadraticPeak) {
  const auto result = golden_section_maximise(
      [](double x) { return -(x - 2.5) * (x - 2.5); }, 0.0, 10.0);
  EXPECT_NEAR(result.x, 2.5, 0.02);
  EXPECT_NEAR(result.value, 0.0, 1e-3);
  EXPECT_GT(result.evaluations, 4u);
}

TEST(GoldenSection, PeakAtBoundary) {
  const auto result =
      golden_section_maximise([](double x) { return x; }, 0.0, 1.0);
  EXPECT_NEAR(result.x, 1.0, 0.01);
}

TEST(GoldenSection, RespectsEvaluationBudget) {
  std::size_t calls = 0;
  OptimiseOptions options;
  options.max_evaluations = 10;
  options.x_tolerance = 1e-12;  // would otherwise iterate much longer
  const auto result = golden_section_maximise(
      [&calls](double x) {
        ++calls;
        return -x * x;
      },
      -1.0, 1.0, options);
  EXPECT_LE(calls, 11u);  // budget check happens at loop top
  EXPECT_EQ(result.evaluations, calls);
}

TEST(GoldenSection, NonSmoothUnimodalPeak) {
  const auto result = golden_section_maximise(
      [](double x) { return -std::abs(x - 0.7); }, 0.0, 1.0);
  EXPECT_NEAR(result.x, 0.7, 0.01);
}

TEST(GoldenSection, InvalidInputs) {
  EXPECT_THROW((void)golden_section_maximise(nullptr, 0.0, 1.0), ModelError);
  EXPECT_THROW((void)golden_section_maximise([](double) { return 0.0; }, 1.0, 1.0), ModelError);
}

TEST(GoldenSection, NonUnimodalObjectiveConvergesDeterministically) {
  // Two peaks (at ~0.2 and ~0.8). Golden section assumes unimodality; on a
  // bimodal objective it still terminates within budget and lands on one of
  // the local maxima — documented behaviour, not global optimisation.
  const auto bimodal = [](double x) {
    return std::exp(-100.0 * (x - 0.2) * (x - 0.2)) +
           1.5 * std::exp(-100.0 * (x - 0.8) * (x - 0.8));
  };
  const auto first = golden_section_maximise(bimodal, 0.0, 1.0);
  const auto second = golden_section_maximise(bimodal, 0.0, 1.0);
  EXPECT_EQ(first.x, second.x);  // deterministic, bit for bit
  EXPECT_EQ(first.value, second.value);
  EXPECT_LE(first.evaluations, OptimiseOptions{}.max_evaluations);
  const bool near_a_peak = std::abs(first.x - 0.2) < 0.05 || std::abs(first.x - 0.8) < 0.05;
  EXPECT_TRUE(near_a_peak) << first.x;
  EXPECT_DOUBLE_EQ(first.value, bimodal(first.x));
}

TEST(CoordinateDescent, FindsSeparableQuadraticPeak) {
  const auto result = coordinate_descent_maximise(
      [](const std::vector<double>& x) {
        return -(x[0] - 1.0) * (x[0] - 1.0) - 2.0 * (x[1] + 0.5) * (x[1] + 0.5);
      },
      {-5.0, -5.0}, {5.0, 5.0}, {0.0, 0.0});
  EXPECT_NEAR(result.x[0], 1.0, 0.05);
  EXPECT_NEAR(result.x[1], -0.5, 0.05);
  EXPECT_GE(result.sweeps, 1u);
}

TEST(CoordinateDescent, HandlesCorrelatedObjective) {
  // Rotated bowl: coordinate descent still converges (slower).
  OptimiseOptions options;
  options.max_evaluations = 200;
  const auto result = coordinate_descent_maximise(
      [](const std::vector<double>& x) {
        const double u = x[0] + 0.5 * x[1] - 1.0;
        const double v = x[1] - 0.25;
        return -(u * u) - v * v;
      },
      {-4.0, -4.0}, {4.0, 4.0}, {0.0, 0.0}, options);
  EXPECT_NEAR(result.value, 0.0, 0.01);
}

TEST(CoordinateDescent, StartValueCounted) {
  std::size_t calls = 0;
  OptimiseOptions options;
  options.max_evaluations = 3;  // only the initial evaluation fits a sweep
  const auto result = coordinate_descent_maximise(
      [&calls](const std::vector<double>& x) {
        ++calls;
        return -x[0] * x[0];
      },
      {-1.0}, {1.0}, {0.5}, options);
  EXPECT_EQ(result.evaluations, calls);
  EXPECT_LE(calls, 4u);
}

TEST(CoordinateDescent, PerAxisTolerancesAndProgressHookObserveTheSearch) {
  OptimiseOptions options;
  options.max_evaluations = 60;
  options.x_tolerance = 1e-3;
  options.axis_tolerances = {1e-2, 1e-3};
  std::vector<std::pair<std::size_t, std::size_t>> line_searches;
  options.on_line_search = [&line_searches](std::size_t sweep, std::size_t axis) {
    line_searches.emplace_back(sweep, axis);
  };
  const auto result = coordinate_descent_maximise(
      [](const std::vector<double>& x) {
        return -(x[0] - 1.0) * (x[0] - 1.0) - (x[1] + 0.5) * (x[1] + 0.5);
      },
      {-5.0, -5.0}, {5.0, 5.0}, {0.0, 0.0}, options);
  EXPECT_NEAR(result.x[0], 1.0, 0.15);  // coarse axis-0 tolerance
  EXPECT_NEAR(result.x[1], -0.5, 0.05);
  // The hook saw every line search, in cyclic axis order per sweep.
  ASSERT_GE(line_searches.size(), 2u);
  for (std::size_t i = 0; i < line_searches.size(); ++i) {
    EXPECT_EQ(line_searches[i].first, i / 2 + 1) << i;
    EXPECT_EQ(line_searches[i].second, i % 2) << i;
  }
  // Converged by the per-axis displacement criterion on both axes.
  ASSERT_EQ(result.axis_converged.size(), 2u);
  EXPECT_TRUE(result.axis_converged[0]);
  EXPECT_TRUE(result.axis_converged[1]);
  EXPECT_LT(result.evaluations, options.max_evaluations);

  OptimiseOptions bad_count = options;
  bad_count.axis_tolerances = {1e-2};
  EXPECT_THROW((void)coordinate_descent_maximise(
                   [](const std::vector<double>&) { return 0.0; }, {0.0, 0.0}, {1.0, 1.0},
                   {0.5, 0.5}, bad_count),
               ModelError);
  OptimiseOptions bad_sign = options;
  bad_sign.axis_tolerances = {1e-2, 0.0};
  EXPECT_THROW((void)coordinate_descent_maximise(
                   [](const std::vector<double>&) { return 0.0; }, {0.0, 0.0}, {1.0, 1.0},
                   {0.5, 0.5}, bad_sign),
               ModelError);
}

TEST(CoordinateDescent, InvalidInputs) {
  EXPECT_THROW(coordinate_descent_maximise(nullptr, {0.0}, {1.0}, {0.5}), ModelError);
  EXPECT_THROW(coordinate_descent_maximise([](const std::vector<double>&) { return 0.0; },
                                           {0.0, 0.0}, {1.0}, {0.5, 0.5}),
               ModelError);
  EXPECT_THROW(coordinate_descent_maximise([](const std::vector<double>&) { return 0.0; },
                                           {1.0}, {0.0}, {0.5}),
               ModelError);
}

// ---- the declarative optimise driver --------------------------------------

using namespace ehsim::experiments;

OptimiseSpec tiny_optimise_spec() {
  OptimiseSpec spec;
  spec.name = "tiny";
  spec.base = charging_scenario(0.05);
  spec.base.trace_interval = 0.0;
  spec.base.probes.push_back(ProbeSpec{"E", ProbeSpec::Kind::kStoredEnergy});
  spec.variable = "supercap.initial_voltage";
  spec.lower = 0.0;
  spec.upper = 1.0;
  spec.objective = "E";
  spec.statistic = "final";
  spec.max_evaluations = 4;
  spec.x_tolerance = 1e-6;
  return spec;
}

TEST(OptimiseSpecValidation, RejectsInconsistentSpecs) {
  const OptimiseSpec good = tiny_optimise_spec();
  EXPECT_NO_THROW(good.validate());

  OptimiseSpec degenerate = good;  // lo == hi: the degenerate bracket
  degenerate.lower = degenerate.upper = 1.0;
  EXPECT_THROW(degenerate.validate(), ModelError);

  OptimiseSpec inverted = good;
  inverted.lower = 2.0;
  inverted.upper = 1.0;
  EXPECT_THROW(inverted.validate(), ModelError);

  OptimiseSpec bad_variable = good;
  bad_variable.variable = "supercap.initial_volts";  // typo
  EXPECT_THROW(bad_variable.validate(), ModelError);

  OptimiseSpec bad_objective = good;
  bad_objective.objective = "missing-probe";
  EXPECT_THROW(bad_objective.validate(), ModelError);

  OptimiseSpec bad_statistic = good;
  bad_statistic.statistic = "median";
  EXPECT_THROW(bad_statistic.validate(), ModelError);

  OptimiseSpec thresholdless = good;
  thresholdless.statistic = "duty_cycle";  // probe "E" has no threshold
  EXPECT_THROW(thresholdless.validate(), ModelError);

  OptimiseSpec starved = good;
  starved.max_evaluations = 1;  // bracket needs two interior points
  EXPECT_THROW(starved.validate(), ModelError);

  OptimiseSpec no_tolerance = good;
  no_tolerance.x_tolerance = 0.0;
  EXPECT_THROW(no_tolerance.validate(), ModelError);
}

/// Regression: golden section over an integer-backed device parameter used
/// to evaluate fractional candidates that set_param silently rounds — the
/// objective became a step function with spurious plateaus and the "optimum"
/// a fractional stage count. Such variables are now rejected up front,
/// naming the path.
TEST(OptimiseSpecValidation, RejectsIntegerValuedVariablePaths) {
  for (const char* path : {"multiplier.stages", "multiplier.table_segments"}) {
    OptimiseSpec spec = tiny_optimise_spec();
    spec.variable = path;
    spec.lower = 2.0;
    spec.upper = 9.0;
    try {
      spec.validate();
      FAIL() << "expected ModelError for integer-valued variable " << path;
    } catch (const ModelError& error) {
      EXPECT_NE(std::string(error.what()).find(path), std::string::npos);
      EXPECT_NE(std::string(error.what()).find("integer-valued"), std::string::npos);
    }
  }
  // Continuous device parameters and spec fields stay accepted.
  OptimiseSpec continuous = tiny_optimise_spec();
  continuous.variable = "multiplier.stage_capacitance";
  continuous.lower = 1e-7;
  continuous.upper = 1e-6;
  EXPECT_NO_THROW(continuous.validate());
}

/// Multi-variable form of tiny_optimise_spec: same base, a second continuous
/// axis (the equivalent sleep-mode load) next to the precharge.
OptimiseSpec tiny_joint_spec() {
  OptimiseSpec spec = tiny_optimise_spec();
  spec.variables.push_back(
      OptimiseVariable{spec.variable, spec.lower, spec.upper, std::nullopt});
  spec.variables.push_back(OptimiseVariable{"load.sleep_ohms", 100.0, 1000.0, 0.05});
  spec.variable.clear();
  spec.lower = spec.upper = 0.0;
  spec.max_evaluations = 12;
  return spec;
}

TEST(OptimiseSpecValidation, MultiVariableFormRejectsInconsistentSpecs) {
  const OptimiseSpec good = tiny_joint_spec();
  EXPECT_NO_THROW(good.validate());

  OptimiseSpec both_forms = good;
  both_forms.variable = "supercap.initial_voltage";
  both_forms.lower = 0.0;
  both_forms.upper = 1.0;
  EXPECT_THROW(both_forms.validate(), ModelError);

  OptimiseSpec bad_axis_bracket = good;
  bad_axis_bracket.variables[1].lower = bad_axis_bracket.variables[1].upper;
  EXPECT_THROW(bad_axis_bracket.validate(), ModelError);

  OptimiseSpec bad_axis_path = good;
  bad_axis_path.variables[1].path = "load.sleep_omhs";  // typo
  EXPECT_THROW(bad_axis_path.validate(), ModelError);

  OptimiseSpec duplicate_path = good;
  duplicate_path.variables[1].path = duplicate_path.variables[0].path;
  EXPECT_THROW(duplicate_path.validate(), ModelError);

  OptimiseSpec integer_axis = good;
  integer_axis.variables[1] = OptimiseVariable{"multiplier.stages", 2.0, 9.0, std::nullopt};
  try {
    integer_axis.validate();
    FAIL() << "expected ModelError for an integer-valued axis";
  } catch (const ModelError& error) {
    EXPECT_NE(std::string(error.what()).find("multiplier.stages"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("variables[1]"), std::string::npos);
  }

  OptimiseSpec bad_tolerance = good;
  bad_tolerance.variables[1].x_tolerance = 0.0;
  EXPECT_THROW(bad_tolerance.validate(), ModelError);

  OptimiseSpec starved = good;
  starved.max_evaluations = 4;  // the start point plus a meaningful line search
  EXPECT_THROW(starved.validate(), ModelError);
}

TEST(OptimiseDriver, OneElementVariablesArrayMatchesTheAliasBitIdentically) {
  const OptimiseSpec alias = tiny_optimise_spec();
  OptimiseSpec array = alias;
  array.variables.push_back(
      OptimiseVariable{alias.variable, alias.lower, alias.upper, std::nullopt});
  array.variable.clear();
  array.lower = array.upper = 0.0;

  const OptimiseResult a = run_optimise(alias);
  const OptimiseResult b = run_optimise(array);
  // One axis dispatches to the same golden-section search either way.
  EXPECT_EQ(a.variable, b.variable);
  EXPECT_TRUE(b.variables.empty());
  EXPECT_EQ(a.best.x, b.best.x);
  EXPECT_EQ(a.best.value, b.best.value);
  EXPECT_EQ(a.best.evaluations, b.best.evaluations);
  ASSERT_EQ(a.evaluations.size(), b.evaluations.size());
  for (std::size_t i = 0; i < a.evaluations.size(); ++i) {
    EXPECT_EQ(a.evaluations[i].x, b.evaluations[i].x) << i;
    EXPECT_EQ(a.evaluations[i].objective, b.evaluations[i].objective) << i;
  }
}

TEST(OptimiseDriver, ExhaustsIterationCapAndLogsEveryEvaluation) {
  // Stored energy grows monotonically with the precharge, so the bracket
  // never collapses and only the evaluation budget stops the search.
  const OptimiseSpec spec = tiny_optimise_spec();
  const OptimiseResult result = run_optimise(spec);
  EXPECT_EQ(result.best.evaluations, spec.max_evaluations);
  EXPECT_EQ(result.evaluations.size(), spec.max_evaluations);
  // The monotone objective pushes the optimum toward the upper bracket edge.
  EXPECT_GT(result.best.x, 0.5);
  // The log is consistent with the reported optimum...
  bool found = false;
  for (const auto& evaluation : result.evaluations) {
    EXPECT_LE(evaluation.objective, result.best.value);
    found = found || (evaluation.x == result.best.x &&
                      evaluation.objective == result.best.value);
  }
  EXPECT_TRUE(found);
  // ...and the deterministic best-run re-run reproduces the winner bit for
  // bit.
  ASSERT_EQ(result.best_run.probes.size(), 1u);
  EXPECT_EQ(probe_statistic(result.best_run.probes[0], "final"), result.best.value);
}

TEST(OptimiseDriver, MinimiseFlipsTheObjective) {
  OptimiseSpec spec = tiny_optimise_spec();
  spec.maximise = false;
  const OptimiseResult result = run_optimise(spec);
  // Minimising stored energy drives the precharge toward the lower edge.
  EXPECT_LT(result.best.x, 0.5);
  for (const auto& evaluation : result.evaluations) {
    EXPECT_GE(evaluation.objective, result.best.value);
  }
}

/// Acceptance: the checked-in scenario-1 tuning spec reproduces the
/// hand-coded C++ golden-section loop bit-identically — the declarative
/// driver is a superset of driving the C++ API directly, not a parallel
/// path. The hand-coded side below deliberately spells out the loop the way
/// pre-spec code did (copy the base spec, set the variable, run, read the
/// probe) instead of calling into the driver's internals.
TEST(OptimiseDriver, Scenario1TuningSpecMatchesHandCodedLoopBitIdentically) {
  const auto file = ehsim::io::load_spec_file(std::string(EHSIM_SOURCE_DIR) +
                                              "/examples/specs/scenario1_tuning.json");
  ASSERT_NE(file.get_if<ehsim::experiments::OptimiseSpec>(), nullptr);
  const OptimiseSpec& spec = (*file.get_if<ehsim::experiments::OptimiseSpec>());
  ASSERT_EQ(spec.variable, "spec.pre_tuned_hz");

  std::vector<double> probed_x;
  const auto hand_coded = [&](double pre_tuned_hz) {
    ExperimentSpec candidate = optimise_candidate(spec, pre_tuned_hz);
    // optimise_candidate only copies the base, applies the variable and
    // names the job; assert that is all it did.
    EXPECT_EQ(candidate.pre_tuned_hz, pre_tuned_hz);
    EXPECT_EQ(candidate.excitation, spec.base.excitation);
    probed_x.push_back(pre_tuned_hz);
    const ScenarioResult run = run_experiment(candidate);
    return probe_statistic(run.probes.front(), spec.statistic);
  };
  OptimiseOptions options;
  options.max_evaluations = spec.max_evaluations;
  options.x_tolerance = spec.x_tolerance;
  const auto direct =
      golden_section_maximise(hand_coded, spec.lower, spec.upper, options);

  const OptimiseResult driver = run_optimise(spec);

  // Bit-identical optimum, objective and evaluation sequence.
  EXPECT_EQ(driver.best.x, direct.x);
  EXPECT_EQ(driver.best.value, direct.value);
  EXPECT_EQ(driver.best.evaluations, direct.evaluations);
  ASSERT_EQ(driver.evaluations.size(), probed_x.size());
  for (std::size_t i = 0; i < probed_x.size(); ++i) {
    EXPECT_EQ(driver.evaluations[i].x, probed_x[i]) << i;
  }
  // The optimum retunes the generator close to the 70 Hz ambient line (the
  // loaded, damped peak sits slightly above the mechanical resonance).
  EXPECT_NEAR(driver.best.x, 70.0, 1.0);
}

/// Acceptance (multi-variable): the checked-in joint-tuning spec reproduces
/// a hand-coded C++ coordinate-descent loop bit-identically — the last
/// hand-coded experiment loop the declarative layer could not express. The
/// hand-coded side spells the loop out the way pre-spec code did: copy the
/// base, set each variable, run, read the probe, and drive
/// coordinate_descent_maximise directly with the spec's budget/tolerances
/// and the bracket-midpoint start.
TEST(OptimiseDriver, JointTuningSpecMatchesHandCodedCoordinateDescentBitIdentically) {
  const auto file = ehsim::io::load_spec_file(std::string(EHSIM_SOURCE_DIR) +
                                              "/examples/specs/scenario1_joint_tuning.json");
  ASSERT_NE(file.get_if<ehsim::experiments::OptimiseSpec>(), nullptr);
  const OptimiseSpec& spec = (*file.get_if<ehsim::experiments::OptimiseSpec>());
  ASSERT_EQ(spec.variables.size(), 2u);
  ASSERT_EQ(spec.variables[0].path, "spec.pre_tuned_hz");

  std::vector<std::vector<double>> probed;
  const auto hand_coded = [&](const std::vector<double>& xs) {
    ExperimentSpec candidate = spec.base;
    for (std::size_t i = 0; i < spec.variables.size(); ++i) {
      set_spec_value(candidate, spec.variables[i].path, xs[i]);
    }
    probed.push_back(xs);
    const ScenarioResult run = run_experiment(candidate);
    return probe_statistic(run.probes.front(), spec.statistic);
  };
  OptimiseOptions options;
  options.max_evaluations = spec.max_evaluations;
  options.x_tolerance = spec.x_tolerance;
  std::vector<double> lower, upper, start;
  for (const OptimiseVariable& axis : spec.variables) {
    lower.push_back(axis.lower);
    upper.push_back(axis.upper);
    start.push_back(0.5 * (axis.lower + axis.upper));
    options.axis_tolerances.push_back(axis.x_tolerance.value_or(spec.x_tolerance));
  }
  const auto direct = coordinate_descent_maximise(hand_coded, lower, upper, start, options);

  const OptimiseResult driver = run_optimise(spec);

  // Bit-identical joint optimum, objective and evaluation sequence.
  ASSERT_EQ(driver.variables.size(), 2u);
  EXPECT_TRUE(driver.variable.empty());
  ASSERT_EQ(driver.best_nd.x.size(), direct.x.size());
  for (std::size_t i = 0; i < direct.x.size(); ++i) {
    EXPECT_EQ(driver.best_nd.x[i], direct.x[i]) << i;
  }
  EXPECT_EQ(driver.best_nd.value, direct.value);
  EXPECT_EQ(driver.best_nd.evaluations, direct.evaluations);
  EXPECT_EQ(driver.best_nd.sweeps, direct.sweeps);
  EXPECT_EQ(driver.best_nd.axis_converged, direct.axis_converged);
  ASSERT_EQ(driver.evaluations.size(), probed.size());
  for (std::size_t i = 0; i < probed.size(); ++i) {
    EXPECT_EQ(driver.evaluations[i].xs, probed[i]) << i;
  }
  // The sweep/axis tags follow the cyclic coordinate-descent order: the
  // start point is (0, 0), then sweeps count up and axes cycle within them.
  EXPECT_EQ(driver.evaluations.front().sweep, 0u);
  std::size_t last_sweep = 0;
  for (std::size_t i = 1; i < driver.evaluations.size(); ++i) {
    const auto& evaluation = driver.evaluations[i];
    EXPECT_GE(evaluation.sweep, last_sweep) << i;
    EXPECT_GE(evaluation.sweep, 1u) << i;
    EXPECT_LT(evaluation.axis, 2u) << i;
    last_sweep = evaluation.sweep;
  }
  // The deterministic best-run re-run reproduces the winner's objective.
  ASSERT_FALSE(driver.best_run.probes.empty());
  EXPECT_EQ(probe_statistic(driver.best_run.probes.front(), spec.statistic),
            driver.best_nd.value);
  // The joint optimum retunes the generator near the 70 Hz line; the load
  // axis is live (it moved off its start) and inside its bracket.
  EXPECT_NEAR(driver.best_nd.x[0], 70.0, 1.0);
  EXPECT_GE(driver.best_nd.x[1], spec.variables[1].lower);
  EXPECT_LE(driver.best_nd.x[1], spec.variables[1].upper);
}

}  // namespace
