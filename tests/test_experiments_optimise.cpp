/// \file test_experiments_optimise.cpp
/// \brief Derivative-free maximiser tests (the paper's design-loop tooling).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "experiments/optimise.hpp"

namespace {

using ehsim::ModelError;
using ehsim::experiments::coordinate_descent_maximise;
using ehsim::experiments::golden_section_maximise;
using ehsim::experiments::OptimiseOptions;

TEST(GoldenSection, FindsQuadraticPeak) {
  const auto result = golden_section_maximise(
      [](double x) { return -(x - 2.5) * (x - 2.5); }, 0.0, 10.0);
  EXPECT_NEAR(result.x, 2.5, 0.02);
  EXPECT_NEAR(result.value, 0.0, 1e-3);
  EXPECT_GT(result.evaluations, 4u);
}

TEST(GoldenSection, PeakAtBoundary) {
  const auto result =
      golden_section_maximise([](double x) { return x; }, 0.0, 1.0);
  EXPECT_NEAR(result.x, 1.0, 0.01);
}

TEST(GoldenSection, RespectsEvaluationBudget) {
  std::size_t calls = 0;
  OptimiseOptions options;
  options.max_evaluations = 10;
  options.x_tolerance = 1e-12;  // would otherwise iterate much longer
  const auto result = golden_section_maximise(
      [&calls](double x) {
        ++calls;
        return -x * x;
      },
      -1.0, 1.0, options);
  EXPECT_LE(calls, 11u);  // budget check happens at loop top
  EXPECT_EQ(result.evaluations, calls);
}

TEST(GoldenSection, NonSmoothUnimodalPeak) {
  const auto result = golden_section_maximise(
      [](double x) { return -std::abs(x - 0.7); }, 0.0, 1.0);
  EXPECT_NEAR(result.x, 0.7, 0.01);
}

TEST(GoldenSection, InvalidInputs) {
  EXPECT_THROW((void)golden_section_maximise(nullptr, 0.0, 1.0), ModelError);
  EXPECT_THROW((void)golden_section_maximise([](double) { return 0.0; }, 1.0, 1.0), ModelError);
}

TEST(CoordinateDescent, FindsSeparableQuadraticPeak) {
  const auto result = coordinate_descent_maximise(
      [](const std::vector<double>& x) {
        return -(x[0] - 1.0) * (x[0] - 1.0) - 2.0 * (x[1] + 0.5) * (x[1] + 0.5);
      },
      {-5.0, -5.0}, {5.0, 5.0}, {0.0, 0.0});
  EXPECT_NEAR(result.x[0], 1.0, 0.05);
  EXPECT_NEAR(result.x[1], -0.5, 0.05);
  EXPECT_GE(result.sweeps, 1u);
}

TEST(CoordinateDescent, HandlesCorrelatedObjective) {
  // Rotated bowl: coordinate descent still converges (slower).
  OptimiseOptions options;
  options.max_evaluations = 200;
  const auto result = coordinate_descent_maximise(
      [](const std::vector<double>& x) {
        const double u = x[0] + 0.5 * x[1] - 1.0;
        const double v = x[1] - 0.25;
        return -(u * u) - v * v;
      },
      {-4.0, -4.0}, {4.0, 4.0}, {0.0, 0.0}, options);
  EXPECT_NEAR(result.value, 0.0, 0.01);
}

TEST(CoordinateDescent, StartValueCounted) {
  std::size_t calls = 0;
  OptimiseOptions options;
  options.max_evaluations = 3;  // only the initial evaluation fits a sweep
  const auto result = coordinate_descent_maximise(
      [&calls](const std::vector<double>& x) {
        ++calls;
        return -x[0] * x[0];
      },
      {-1.0}, {1.0}, {0.5}, options);
  EXPECT_EQ(result.evaluations, calls);
  EXPECT_LE(calls, 4u);
}

TEST(CoordinateDescent, InvalidInputs) {
  EXPECT_THROW(coordinate_descent_maximise(nullptr, {0.0}, {1.0}, {0.5}), ModelError);
  EXPECT_THROW(coordinate_descent_maximise([](const std::vector<double>&) { return 0.0; },
                                           {0.0, 0.0}, {1.0}, {0.5, 0.5}),
               ModelError);
  EXPECT_THROW(coordinate_descent_maximise([](const std::vector<double>&) { return 0.0; },
                                           {1.0}, {0.0}, {0.5}),
               ModelError);
}

}  // namespace
