/// \file test_ode_ab_coefficients.cpp
/// \brief Variable-step Adams-Bashforth coefficient tests (paper Eq. 5).
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "common/error.hpp"
#include "ode/ab_coefficients.hpp"

namespace {

using ehsim::ModelError;
using ehsim::ode::AbCoefficients;
using ehsim::ode::compute_ab_coefficients;
using ehsim::ode::constant_step_ab_coefficients;

TEST(AbCoefficients, Order1IsForwardEuler) {
  const std::array<double, 1> past{0.0};
  const auto c = compute_ab_coefficients(past, 0.1);
  EXPECT_EQ(c.order, 1u);
  EXPECT_NEAR(c.beta[0], 0.1, 1e-15);
}

TEST(AbCoefficients, ConstantStepOrder2MatchesClassic) {
  const double h = 0.05;
  const std::array<double, 2> past{0.0, -h};
  const auto c = compute_ab_coefficients(past, h);
  EXPECT_NEAR(c.beta[0], 1.5 * h, 1e-14);
  EXPECT_NEAR(c.beta[1], -0.5 * h, 1e-14);
}

TEST(AbCoefficients, ConstantStepOrder3MatchesClassic) {
  const double h = 0.01;
  const std::array<double, 3> past{0.0, -h, -2.0 * h};
  const auto c = compute_ab_coefficients(past, h);
  EXPECT_NEAR(c.beta[0], 23.0 / 12.0 * h, 1e-14);
  EXPECT_NEAR(c.beta[1], -16.0 / 12.0 * h, 1e-14);
  EXPECT_NEAR(c.beta[2], 5.0 / 12.0 * h, 1e-14);
}

TEST(AbCoefficients, ConstantStepOrder4MatchesClassic) {
  const double h = 0.2;
  const std::array<double, 4> past{0.0, -h, -2.0 * h, -3.0 * h};
  const auto c = compute_ab_coefficients(past, h);
  EXPECT_NEAR(c.beta[0], 55.0 / 24.0 * h, 1e-12);
  EXPECT_NEAR(c.beta[1], -59.0 / 24.0 * h, 1e-12);
  EXPECT_NEAR(c.beta[2], 37.0 / 24.0 * h, 1e-12);
  EXPECT_NEAR(c.beta[3], -9.0 / 24.0 * h, 1e-12);
}

TEST(AbCoefficients, ConstantStepHelperAgreesWithGeneral) {
  for (std::size_t order = 1; order <= 4; ++order) {
    const double h = 0.037;
    std::array<double, 4> past{};
    for (std::size_t i = 0; i < order; ++i) {
      past[i] = -static_cast<double>(i) * h;
    }
    const auto general =
        compute_ab_coefficients(std::span<const double>(past.data(), order), h);
    const auto direct = constant_step_ab_coefficients(order, h);
    for (std::size_t i = 0; i < order; ++i) {
      EXPECT_NEAR(general.beta[i], direct.beta[i], 1e-13) << "order " << order << " i " << i;
    }
  }
}

TEST(AbCoefficients, CoefficientsSumToStep) {
  // Moment condition k = 0: integrating a constant exactly means the
  // coefficients sum to h, for any step history.
  const std::array<double, 4> past{0.0, -0.013, -0.05, -0.081};
  const double h = 0.021;
  const auto c = compute_ab_coefficients(past, h);
  double sum = 0.0;
  for (std::size_t i = 0; i < c.order; ++i) {
    sum += c.beta[i];
  }
  EXPECT_NEAR(sum, h, 1e-14);
}

TEST(AbCoefficients, RejectsNonDecreasingHistory) {
  const std::array<double, 2> past{0.0, 0.0};
  EXPECT_THROW((void)compute_ab_coefficients(past, 0.1), ModelError);
}

TEST(AbCoefficients, RejectsNonPositiveStep) {
  const std::array<double, 1> past{1.0};
  EXPECT_THROW((void)compute_ab_coefficients(past, 1.0), ModelError);
  EXPECT_THROW((void)compute_ab_coefficients(past, 0.5), ModelError);
}

TEST(AbCoefficients, RejectsBadOrder) {
  EXPECT_THROW((void)constant_step_ab_coefficients(0, 0.1), ModelError);
  EXPECT_THROW((void)constant_step_ab_coefficients(5, 0.1), ModelError);
}

/// Property: for any (randomised) step history the moment conditions hold,
/// i.e. polynomials up to degree p-1 are integrated exactly over the step.
class AbMomentProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AbMomentProperty, PolynomialExactness) {
  const std::size_t order = GetParam();
  // Irregular history with step ratios between 0.4x and 2.7x.
  const std::array<double, 4> all_past{0.0, -0.010, -0.037, -0.047};
  const std::span<const double> past(all_past.data(), order);
  const double h = 0.017;
  const auto c = compute_ab_coefficients(past, h);

  for (std::size_t k = 0; k < order; ++k) {
    // f(t) = t^k (relative to t_n): quadrature must equal h^{k+1}/(k+1).
    double quad = 0.0;
    for (std::size_t i = 0; i < order; ++i) {
      quad += c.beta[i] * std::pow(past[i], static_cast<double>(k));
    }
    const double exact = std::pow(h, static_cast<double>(k + 1)) / static_cast<double>(k + 1);
    EXPECT_NEAR(quad, exact, 1e-12 * std::max(1.0, std::abs(exact)))
        << "order " << order << " moment " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, AbMomentProperty, ::testing::Values(1, 2, 3, 4));

}  // namespace
