/// \file test_digital.cpp
/// \brief Digital kernel, signal and watchdog tests (SystemC-lite semantics).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "digital/kernel.hpp"
#include "digital/signal.hpp"
#include "digital/timer.hpp"

namespace {

using ehsim::ModelError;
using ehsim::SolverError;
using ehsim::digital::Kernel;
using ehsim::digital::Signal;
using ehsim::digital::WatchdogTimer;

TEST(Kernel, StartsAtZero) {
  Kernel kernel;
  EXPECT_EQ(kernel.now(), 0.0);
  EXPECT_FALSE(kernel.next_event_time().has_value());
}

TEST(Kernel, ExecutesEventsInTimeOrder) {
  Kernel kernel;
  std::vector<int> order;
  kernel.schedule_at(2.0, [&] { order.push_back(2); });
  kernel.schedule_at(1.0, [&] { order.push_back(1); });
  kernel.schedule_at(3.0, [&] { order.push_back(3); });
  kernel.run_until(5.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(kernel.now(), 5.0);
}

TEST(Kernel, SameTimeEventsKeepInsertionOrder) {
  Kernel kernel;
  std::vector<int> order;
  kernel.schedule_at(1.0, [&] { order.push_back(1); });
  kernel.schedule_at(1.0, [&] { order.push_back(2); });
  kernel.schedule_at(1.0, [&] { order.push_back(3); });
  kernel.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Kernel, RunUntilStopsBeforeLaterEvents) {
  Kernel kernel;
  int fired = 0;
  kernel.schedule_at(1.0, [&] { ++fired; });
  kernel.schedule_at(2.0, [&] { ++fired; });
  kernel.run_until(1.5);
  EXPECT_EQ(fired, 1);
  ASSERT_TRUE(kernel.next_event_time().has_value());
  EXPECT_EQ(*kernel.next_event_time(), 2.0);
}

TEST(Kernel, HandlerMayScheduleSameTimeDelta) {
  Kernel kernel;
  std::vector<std::string> log;
  kernel.schedule_at(1.0, [&] {
    log.push_back("a");
    kernel.schedule_delta([&] { log.push_back("a-delta"); });
  });
  kernel.run_until(1.0);
  EXPECT_EQ(log, (std::vector<std::string>{"a", "a-delta"}));
}

TEST(Kernel, HandlerSchedulesFutureEventWithinRun) {
  Kernel kernel;
  std::vector<double> times;
  kernel.schedule_at(1.0, [&] {
    times.push_back(kernel.now());
    kernel.schedule_in(0.5, [&] { times.push_back(kernel.now()); });
  });
  kernel.run_until(2.0);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(Kernel, CancelPreventsExecution) {
  Kernel kernel;
  int fired = 0;
  const auto id = kernel.schedule_at(1.0, [&] { ++fired; });
  EXPECT_TRUE(kernel.cancel(id));
  EXPECT_FALSE(kernel.cancel(id));  // double cancel
  kernel.run_until(2.0);
  EXPECT_EQ(fired, 0);
}

TEST(Kernel, CancelledHeadSkippedInNextEventTime) {
  Kernel kernel;
  const auto id = kernel.schedule_at(1.0, [] {});
  kernel.schedule_at(2.0, [] {});
  kernel.cancel(id);
  ASSERT_TRUE(kernel.next_event_time().has_value());
  EXPECT_EQ(*kernel.next_event_time(), 2.0);
}

TEST(Kernel, RejectsPastScheduling) {
  Kernel kernel;
  kernel.run_until(5.0);
  EXPECT_THROW(kernel.schedule_at(1.0, [] {}), ModelError);
  EXPECT_THROW(kernel.schedule_in(-1.0, [] {}), ModelError);
  EXPECT_THROW(kernel.run_until(4.0), ModelError);
}

TEST(Kernel, NullHandlerRejected) {
  Kernel kernel;
  EXPECT_THROW(kernel.schedule_at(1.0, nullptr), ModelError);
}

TEST(Kernel, DeltaLoopGuardThrows) {
  Kernel kernel;
  std::function<void()> loop = [&] { kernel.schedule_delta(loop); };
  kernel.schedule_at(0.0, loop);
  EXPECT_THROW(kernel.run_until(0.0), SolverError);
}

TEST(Kernel, EventCountTracksExecutions) {
  Kernel kernel;
  kernel.schedule_at(1.0, [] {});
  kernel.schedule_at(2.0, [] {});
  kernel.run_until(3.0);
  EXPECT_EQ(kernel.events_executed(), 2u);
}

TEST(Signal, ReadReturnsSettledValue) {
  Kernel kernel;
  Signal<int> signal(kernel, 7);
  EXPECT_EQ(signal.read(), 7);
}

TEST(Signal, WriteSettlesAtDeltaCycle) {
  Kernel kernel;
  Signal<int> signal(kernel, 0);
  signal.write(5);
  EXPECT_EQ(signal.read(), 0);  // not yet settled
  kernel.run_delta_cycles();
  EXPECT_EQ(signal.read(), 5);
}

TEST(Signal, LastWriteWinsWithinDelta) {
  Kernel kernel;
  Signal<int> signal(kernel, 0);
  signal.write(1);
  signal.write(2);
  kernel.run_delta_cycles();
  EXPECT_EQ(signal.read(), 2);
  EXPECT_EQ(signal.change_count(), 1u);
}

TEST(Signal, OnChangeFiresOnlyOnValueChange) {
  Kernel kernel;
  Signal<int> signal(kernel, 3);
  int notifications = 0;
  signal.on_change([&](const int&) { ++notifications; });
  signal.write(3);  // same value: no event
  kernel.run_delta_cycles();
  EXPECT_EQ(notifications, 0);
  signal.write(4);
  kernel.run_delta_cycles();
  EXPECT_EQ(notifications, 1);
}

TEST(Watchdog, FiresPeriodically) {
  Kernel kernel;
  int fired = 0;
  WatchdogTimer timer(kernel, 1.0, [&] { ++fired; });
  timer.start();
  kernel.run_until(3.5);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(timer.expiries(), 3u);
}

TEST(Watchdog, StartAfterDelaysFirstExpiry) {
  Kernel kernel;
  std::vector<double> times;
  WatchdogTimer timer(kernel, 1.0, [&] { times.push_back(kernel.now()); });
  timer.start_after(0.25);
  kernel.run_until(2.5);
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 0.25);
  EXPECT_DOUBLE_EQ(times[1], 1.25);
  EXPECT_DOUBLE_EQ(times[2], 2.25);
}

TEST(Watchdog, StopHaltsExpiry) {
  Kernel kernel;
  int fired = 0;
  WatchdogTimer timer(kernel, 1.0, [&] { ++fired; });
  timer.start();
  kernel.run_until(1.5);
  timer.stop();
  kernel.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.running());
}

TEST(Watchdog, CallbackMayStopTimer) {
  Kernel kernel;
  int fired = 0;
  WatchdogTimer* self = nullptr;
  WatchdogTimer timer(kernel, 1.0, [&] {
    ++fired;
    self->stop();
  });
  self = &timer;
  timer.start();
  kernel.run_until(10.0);
  EXPECT_EQ(fired, 1);
}

TEST(Watchdog, InvalidConstruction) {
  Kernel kernel;
  EXPECT_THROW(WatchdogTimer(kernel, 0.0, [] {}), ModelError);
  EXPECT_THROW(WatchdogTimer(kernel, 1.0, nullptr), ModelError);
}

TEST(Watchdog, SetPeriodAffectsNextArm) {
  Kernel kernel;
  std::vector<double> times;
  WatchdogTimer timer(kernel, 1.0, [&] { times.push_back(kernel.now()); });
  timer.start();
  kernel.run_until(1.0);
  timer.set_period(2.0);
  timer.start();  // re-arm with the new period
  kernel.run_until(5.0);
  ASSERT_GE(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
}

}  // namespace
