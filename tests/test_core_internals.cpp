/// \file test_core_internals.cpp
/// \brief LLE monitor, trace CSV, and Jacobian-reuse signature tests.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/linearised_solver.hpp"
#include "core/lle_monitor.hpp"
#include "core/mixed_signal.hpp"
#include "core/trace.hpp"
#include "digital/kernel.hpp"
#include "experiments/scenarios.hpp"
#include "harvester/harvester_system.hpp"
#include "support/test_blocks.hpp"

namespace {

using ehsim::core::LinearisedSolver;
using ehsim::core::LleMonitor;
using ehsim::core::SolverConfig;
using ehsim::core::SystemAssembler;
using ehsim::core::TraceRecorder;
using ehsim::linalg::Matrix;

TEST(LleMonitor, FirstUpdateReportsZero) {
  LleMonitor monitor;
  const Matrix j{{1.0, 0.0}, {0.0, 1.0}};
  EXPECT_EQ(monitor.update(j, j, j, j), 0.0);
  EXPECT_TRUE(monitor.has_previous());
}

TEST(LleMonitor, UnchangedJacobiansReportZeroDrift) {
  LleMonitor monitor;
  const Matrix j{{-3.0, 1.0}, {0.5, -2.0}};
  monitor.update(j, j, j, j);
  EXPECT_EQ(monitor.update(j, j, j, j), 0.0);
}

TEST(LleMonitor, RowRelativeDrift) {
  // A change in a small-magnitude row must be as visible as one in a large
  // row: both rows change by 10% of their own scale.
  LleMonitor monitor;
  Matrix a{{1e6, 0.0}, {0.0, 1e-3}};
  const Matrix zero2x2(2, 2);
  const Matrix zero_any(2, 2);
  monitor.update(a, zero2x2, zero2x2, zero_any);
  Matrix b = a;
  b(1, 1) = 1.1e-3;  // +10% in the tiny row
  const double drift_small_row = monitor.update(b, zero2x2, zero2x2, zero_any);
  EXPECT_NEAR(drift_small_row, 0.1, 0.02);

  Matrix c = b;
  c(0, 0) = 1.1e6;  // +10% in the huge row
  const double drift_big_row = monitor.update(c, zero2x2, zero2x2, zero_any);
  EXPECT_NEAR(drift_big_row, 0.1, 0.02);
}

TEST(LleMonitor, ResetForgetsPrevious) {
  LleMonitor monitor;
  const Matrix j{{-1.0}};
  const Matrix e(1, 1);
  monitor.update(j, e, e, e);
  monitor.reset();
  EXPECT_FALSE(monitor.has_previous());
  EXPECT_EQ(monitor.update(j, e, e, e), 0.0);
}

TEST(TraceRecorder, CsvRoundTrip) {
  SystemAssembler assembler;
  assembler.add_block(std::make_unique<ehsim::testing::CubicDecayBlock>(1.0, 2.0));
  assembler.elaborate();
  LinearisedSolver solver(assembler);
  TraceRecorder trace(solver, 0.0);
  trace.probe_state("cubic.x0");
  solver.initialise(0.0);
  solver.advance_to(0.01);

  std::ostringstream os;
  trace.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("time,cubic.x0"), std::string::npos);
  // One header plus one line per recorded point.
  std::size_t lines = 0;
  for (char ch : csv) {
    lines += ch == '\n' ? 1u : 0u;
  }
  EXPECT_EQ(lines, trace.size() + 1);
}

TEST(TraceRecorder, DecimationBoundsDensity) {
  SystemAssembler assembler;
  assembler.add_block(std::make_unique<ehsim::testing::CubicDecayBlock>(1.0, 2.0));
  assembler.elaborate();
  SolverConfig config;
  config.fixed_step = 1e-4;
  LinearisedSolver solver(assembler, config);
  TraceRecorder trace(solver, 0.01);  // 100x coarser than the step
  solver.initialise(0.0);
  solver.advance_to(0.5);
  EXPECT_LE(trace.size(), 52u);
  EXPECT_GE(trace.size(), 48u);
}

TEST(JacobianReuse, SignatureStableOnLinearBlock) {
  SystemAssembler assembler;
  assembler.add_block(std::make_unique<ehsim::testing::OscillatorBlock>(100.0, 0.05, 1.0));
  assembler.elaborate();
  ehsim::linalg::Vector x{1.0, 0.0};
  ehsim::linalg::Vector y;
  // Default blocks report kAlwaysRebuild -> strictly fresh values.
  const auto s1 = assembler.jacobian_signature(0.0, x.span(), y.span());
  const auto s2 = assembler.jacobian_signature(0.0, x.span(), y.span());
  EXPECT_NE(s1, s2);
}

TEST(JacobianReuse, HarvesterSkipsRebuildsWithIdenticalTrajectory) {
  using namespace ehsim;
  const auto params =
      experiments::experiment_params(experiments::charging_scenario(1.0));

  auto run = [&](bool reuse) {
    harvester::HarvesterSystem system(params, harvester::DeviceEvalMode::kPwlTable, false);
    SolverConfig config;
    config.enable_jacobian_reuse = reuse;
    LinearisedSolver solver(system.assembler(), config);
    solver.initialise(0.0);
    solver.advance_to(1.0);
    return std::make_tuple(solver.stats().jacobian_builds, solver.stats().steps,
                           solver.state()[system.assembler().state_index({1}, 4)]);
  };
  const auto [builds_on, steps_on, v5_on] = run(true);
  const auto [builds_off, steps_off, v5_off] = run(false);

  EXPECT_LT(builds_on, builds_off / 2);  // at least half the rebuilds skipped
  EXPECT_EQ(builds_off, steps_off + 1);  // disabled: rebuild at every refresh
  EXPECT_NEAR(v5_on, v5_off, 5e-4);      // same physics either way
}

TEST(JacobianReuse, EpochChangeForcesRebuild) {
  using namespace ehsim;
  const auto params =
      experiments::experiment_params(experiments::charging_scenario(1.0));
  harvester::HarvesterSystem system(params, harvester::DeviceEvalMode::kPwlTable, false);
  LinearisedSolver solver(system.assembler());
  solver.initialise(0.0);
  solver.advance_to(0.2);
  const auto builds_before = solver.stats().jacobian_builds;
  system.supercap().set_load_mode(harvester::LoadMode::kAwake);
  solver.advance_to(0.201);
  EXPECT_GT(solver.stats().jacobian_builds, builds_before);
}

TEST(JacobianReuse, ActuatorMotionDisablesGeneratorReuse) {
  using namespace ehsim;
  auto params = experiments::experiment_params(experiments::charging_scenario(1.0));
  harvester::HarvesterSystem system(params, harvester::DeviceEvalMode::kPwlTable, false);

  // While the actuator moves, the generator reports kAlwaysRebuild and every
  // step rebuilds; after arrival, reuse resumes.
  LinearisedSolver solver(system.assembler());
  solver.initialise(0.0);
  solver.advance_to(0.1);
  system.actuator().command(system.actuator().position(0.1) - 0.2e-3, 0.1);
  system.generator().notify_parameter_event();

  const auto steps_a = solver.stats().steps;
  const auto builds_a = solver.stats().jacobian_builds;
  solver.advance_to(0.25);  // motion spans 0.1 .. 0.3 s
  const auto steps_moving = solver.stats().steps - steps_a;
  const auto builds_moving = solver.stats().jacobian_builds - builds_a;
  EXPECT_GE(builds_moving + 1, steps_moving);  // rebuild every step while moving

  solver.advance_to(0.4);  // past arrival
  const auto builds_b = solver.stats().jacobian_builds;
  solver.advance_to(0.6);
  const auto steps_parked = solver.stats().steps - (steps_a + steps_moving);
  (void)steps_parked;
  const auto builds_parked = solver.stats().jacobian_builds - builds_b;
  const auto steps_after = solver.stats().steps;
  EXPECT_LT(builds_parked, (steps_after - steps_a) / 2);  // reuse resumed
}

/// Two-segment decay dx/dt = -rate(x) x with rate switching at x = 0.5: the
/// Jacobian is piecewise constant and the block certifies each segment with
/// its own signature — the minimal model of a PWL device for reuse tests.
class TwoSegmentDecayBlock final : public ehsim::core::AnalogBlock {
 public:
  explicit TwoSegmentDecayBlock(double x0)
      : AnalogBlock("twoseg", 1, 0, 0), x0_(x0) {}

  /// Same dynamics, new epoch: models a digital parameter write.
  void touch_parameters() { bump_epoch(); }

  void initial_state(std::span<double> x) const override { x[0] = x0_; }

  [[nodiscard]] double rate(double x) const noexcept { return x > 0.5 ? 2.0 : 1.0; }

  void eval(double, std::span<const double> x, std::span<const double>,
            std::span<double> fx, std::span<double>) const override {
    fx[0] = -rate(x[0]) * x[0];
  }

  void jacobians(double, std::span<const double> x, std::span<const double>,
                 ehsim::linalg::Matrix& jxx, ehsim::linalg::Matrix&,
                 ehsim::linalg::Matrix&, ehsim::linalg::Matrix&) const override {
    jxx(0, 0) = -rate(x[0]);
  }

  [[nodiscard]] std::uint64_t jacobian_signature(double, std::span<const double> x,
                                                 std::span<const double>) const override {
    return x[0] > 0.5 ? 1 : 2;
  }

 private:
  double x0_;
};

TEST(JacobianReuse, SegmentCrossingForcesExactlyOneRebuild) {
  SystemAssembler assembler;
  assembler.add_block(std::make_unique<TwoSegmentDecayBlock>(1.0));
  assembler.elaborate();
  LinearisedSolver solver(assembler);
  solver.initialise(0.0);
  solver.advance_to(2.0);  // x decays 1.0 -> ~0.2, crossing 0.5 once
  ASSERT_LT(solver.state()[0], 0.5);
  // One build at the first refresh, one at the segment crossing — every
  // other refresh is served from the cache.
  EXPECT_EQ(solver.stats().jacobian_builds, 2u);
  EXPECT_GE(solver.stats().jacobian_reuses, solver.stats().steps - 2);
}

TEST(JacobianReuse, EpochBumpForcesRebuildDespiteUnchangedSignature) {
  SystemAssembler assembler;
  const auto handle = assembler.add_block(std::make_unique<TwoSegmentDecayBlock>(1.0));
  assembler.elaborate();
  LinearisedSolver solver(assembler);
  solver.initialise(0.0);
  solver.advance_to(0.05);  // x stays > 0.5: signature constant
  EXPECT_EQ(solver.stats().jacobian_builds, 1u);
  EXPECT_EQ(solver.stats().history_resets, 0u);

  assembler.block_as<TwoSegmentDecayBlock>(handle).touch_parameters();
  solver.advance_to(0.1);  // still > 0.5: only the epoch changed
  EXPECT_EQ(solver.stats().jacobian_builds, 2u);
  EXPECT_EQ(solver.stats().history_resets, 1u);
}

TEST(JacobianReuse, DigitalDiscontinuityRestartForcesRebuild) {
  SystemAssembler assembler;
  const auto handle = assembler.add_block(std::make_unique<TwoSegmentDecayBlock>(1.0));
  assembler.elaborate();
  LinearisedSolver solver(assembler);
  solver.initialise(0.0);

  ehsim::digital::Kernel kernel;
  kernel.schedule_at(0.04, [&assembler, handle] {
    assembler.block_as<TwoSegmentDecayBlock>(handle).touch_parameters();
  });
  ehsim::core::MixedSignalSimulator sim(solver, kernel);
  sim.run_until(0.08);

  // The digital event at t = 0.04 restarts the multistep history and
  // invalidates the cached Jacobians/LU even though the PWL segment (and
  // thus the signature) never changed.
  EXPECT_EQ(solver.stats().history_resets, 1u);
  EXPECT_EQ(solver.stats().jacobian_builds, 2u);
  EXPECT_GT(solver.stats().jacobian_reuses, 0u);
}

}  // namespace
