/// \file test_core_mixed_signal.cpp
/// \brief Analogue/digital co-simulation scheduler tests.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/linearised_solver.hpp"
#include "core/mixed_signal.hpp"
#include "digital/kernel.hpp"
#include "support/test_blocks.hpp"

namespace {

using ehsim::core::LinearisedSolver;
using ehsim::core::MixedSignalSimulator;
using ehsim::core::SystemAssembler;
using ehsim::digital::Kernel;
using ehsim::testing::CapacitorBlock;
using ehsim::testing::SourceResistorBlock;

struct CoSimFixture {
  SystemAssembler assembler;
  ehsim::core::BlockHandle source;
  Kernel kernel;

  CoSimFixture() {
    source = assembler.add_block(
        std::make_unique<SourceResistorBlock>([](double) { return 1.0; }, 10.0));
    const auto cap = assembler.add_block(std::make_unique<CapacitorBlock>(0.05, 0.0));
    const auto v = assembler.net("V");
    const auto i = assembler.net("I");
    assembler.bind(source, 0, v);
    assembler.bind(source, 1, i);
    assembler.bind(cap, 0, v);
    assembler.bind(cap, 1, i);
    assembler.elaborate();
  }
};

TEST(MixedSignal, RunsToEndWithoutEvents) {
  CoSimFixture fx;
  LinearisedSolver solver(fx.assembler);
  solver.initialise(0.0);
  MixedSignalSimulator sim(solver, fx.kernel);
  sim.run_until(0.5);
  EXPECT_DOUBLE_EQ(sim.time(), 0.5);
}

TEST(MixedSignal, DigitalEventSeesConsistentAnalogueSolution) {
  CoSimFixture fx;
  LinearisedSolver solver(fx.assembler);
  solver.initialise(0.0);
  MixedSignalSimulator sim(solver, fx.kernel);

  double vc_at_event = -1.0;
  double t_at_event = -1.0;
  fx.kernel.schedule_at(0.25, [&] {
    vc_at_event = solver.state()[0];
    t_at_event = solver.time();
  });
  sim.run_until(0.5);
  EXPECT_DOUBLE_EQ(t_at_event, 0.25);
  // Analytic value at the event time (tau = 0.5 s).
  EXPECT_NEAR(vc_at_event, 1.0 - std::exp(-0.25 / 0.5), 1e-3);
}

TEST(MixedSignal, EventChangingParametersAffectsSubsequentDynamics) {
  CoSimFixture fx;
  LinearisedSolver solver(fx.assembler);
  solver.initialise(0.0);
  MixedSignalSimulator sim(solver, fx.kernel);

  // At 0.2 s disconnect the source almost entirely.
  fx.kernel.schedule_at(0.2, [&] {
    fx.assembler.block_as<SourceResistorBlock>(fx.source).set_resistance(1e9);
  });
  sim.run_until(1.0);
  // With R huge from 0.2 s on, vc freezes near its 0.2 s value.
  const double vc_freeze = 1.0 - std::exp(-0.2 / 0.5);
  EXPECT_NEAR(solver.state()[0], vc_freeze, 5e-3);
  EXPECT_GE(solver.stats().history_resets, 1u);
}

TEST(MixedSignal, ChainedEventsAllExecute) {
  CoSimFixture fx;
  LinearisedSolver solver(fx.assembler);
  solver.initialise(0.0);
  MixedSignalSimulator sim(solver, fx.kernel);

  std::vector<double> event_times;
  std::function<void()> reschedule = [&] {
    event_times.push_back(fx.kernel.now());
    if (event_times.size() < 5) {
      fx.kernel.schedule_in(0.1, reschedule);
    }
  };
  fx.kernel.schedule_at(0.1, reschedule);
  sim.run_until(1.0);
  ASSERT_EQ(event_times.size(), 5u);
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(event_times[k], 0.1 * static_cast<double>(k + 1), 1e-12);
  }
  EXPECT_GE(sim.sync_points(), 5u);
}

TEST(MixedSignal, EventAtExactEndTimeRuns) {
  CoSimFixture fx;
  LinearisedSolver solver(fx.assembler);
  solver.initialise(0.0);
  MixedSignalSimulator sim(solver, fx.kernel);
  bool fired = false;
  fx.kernel.schedule_at(0.5, [&] { fired = true; });
  sim.run_until(0.5);
  EXPECT_TRUE(fired);
}

TEST(MixedSignal, BackwardsRunRejected) {
  CoSimFixture fx;
  LinearisedSolver solver(fx.assembler);
  solver.initialise(0.0);
  MixedSignalSimulator sim(solver, fx.kernel);
  sim.run_until(0.5);
  EXPECT_THROW(sim.run_until(0.4), ehsim::ModelError);
}

TEST(MixedSignal, MultipleRunsContinueSeamlessly) {
  CoSimFixture fx;
  LinearisedSolver solver(fx.assembler);
  solver.initialise(0.0);
  MixedSignalSimulator sim(solver, fx.kernel);
  sim.run_until(0.25);
  sim.run_until(0.5);
  sim.run_until(1.0);
  EXPECT_NEAR(solver.state()[0], 1.0 - std::exp(-1.0 / 0.5), 2e-3);
}

}  // namespace
