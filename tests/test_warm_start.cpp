/// \file test_warm_start.cpp
/// \brief Cross-job operating-point warm starts: engine seeding API,
/// batch/optimise integration, counters and determinism guarantees.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "experiments/optimise_spec.hpp"
#include "experiments/scenarios.hpp"
#include "experiments/warm_start.hpp"
#include "sim/harvester_session.hpp"

namespace {

using namespace ehsim::experiments;
using ehsim::ModelError;

/// Fast MCU-less run: supercap charging with a mid-run ambient step that
/// does NOT affect the t=0 operating point (so jobs differing only in the
/// step frequency share one structural signature).
ExperimentSpec charging_variant(double step_to_hz) {
  ExperimentSpec spec = charging_scenario(0.4);
  spec.name = "warm-start-charging-" + std::to_string(step_to_hz);
  spec.trace_interval = 0.02;
  spec.excitation.step_frequency(0.2, step_to_hz);
  return spec;
}

bool results_bit_identical(const ScenarioResult& a, const ScenarioResult& b) {
  return a.time == b.time && a.vc == b.vc && a.final_vc == b.final_vc &&
         a.stats.steps == b.stats.steps && a.final_resonance_hz == b.final_resonance_hz;
}

// ---- engine / session seeding API -----------------------------------------

TEST(WarmStartApi, SessionRejectsWrongSizeSeedAndConsumesGoodOnes) {
  const ExperimentSpec spec = charging_scenario(0.1);
  {
    ehsim::sim::HarvesterSession session = make_experiment_session(spec);
    const std::vector<double> wrong(3, 0.0);
    EXPECT_FALSE(session.seed_initial_terminals(wrong));
    session.initialise(0.0);
    // Seeding after initialise is a lifecycle error, not a silent no-op.
    const std::vector<double> late(session.terminals().size(), 0.0);
    EXPECT_THROW((void)session.seed_initial_terminals(late), ModelError);
  }
  {
    ehsim::sim::HarvesterSession cold = make_experiment_session(spec);
    cold.initialise(0.0);
    const std::vector<double> seed(cold.terminals().begin(), cold.terminals().end());

    ehsim::sim::HarvesterSession warm = make_experiment_session(spec);
    EXPECT_TRUE(warm.seed_initial_terminals(seed));
    warm.initialise(0.0);
    // Seeded with an already-converged operating point, the consistency
    // check passes immediately: zero iterations and the exact same vector.
    EXPECT_EQ(warm.stats().init_iterations, 0u);
    EXPECT_GT(cold.stats().init_iterations, 0u);
    const auto y_cold = cold.terminals();
    const auto y_warm = warm.terminals();
    ASSERT_EQ(y_cold.size(), y_warm.size());
    for (std::size_t i = 0; i < y_cold.size(); ++i) {
      EXPECT_EQ(y_cold[i], y_warm[i]) << i;
    }
  }
}

TEST(WarmStartApi, SeededRunMatchesColdBitForBit) {
  const ExperimentSpec spec = charging_variant(71.0);
  const ScenarioResult cold = run_experiment(spec);
  EXPECT_EQ(cold.warm_start, WarmStartOutcome::kCold);
  EXPECT_GT(cold.stats.init_iterations, 0u);
  ASSERT_FALSE(cold.initial_terminals.empty());

  RunOptions options;
  options.initial_terminals = cold.initial_terminals;
  const ScenarioResult warm = run_experiment(spec, options);
  EXPECT_EQ(warm.warm_start, WarmStartOutcome::kSeeded);
  EXPECT_EQ(warm.stats.init_iterations, 0u);
  // A seed that is exactly this job's converged operating point leaves the
  // whole transient bit-identical to the cold run.
  EXPECT_TRUE(results_bit_identical(cold, warm));
}

TEST(WarmStartApi, RejectedSeedFallsBackToColdRun) {
  const ExperimentSpec spec = charging_variant(71.0);
  const ScenarioResult cold = run_experiment(spec);

  const std::vector<double> wrong_size(3, 0.0);
  RunOptions options;
  options.initial_terminals = wrong_size;
  const ScenarioResult fallback = run_experiment(spec, options);
  EXPECT_EQ(fallback.warm_start, WarmStartOutcome::kRejected);
  EXPECT_TRUE(results_bit_identical(cold, fallback));
}

// ---- structural signatures ------------------------------------------------

TEST(WarmStartSignature, CollidesOnStructureAndSplitsOnParameters) {
  const ExperimentSpec a = charging_variant(69.0);
  const ExperimentSpec b = charging_variant(75.0);  // differs mid-run only
  const auto params_a = experiment_params(a);
  const auto params_b = experiment_params(b);
  EXPECT_EQ(operating_point_signature(a, params_a), operating_point_signature(b, params_b));

  ExperimentSpec other_engine = a;
  other_engine.engine = EngineKind::kSystemCA;
  EXPECT_NE(operating_point_signature(other_engine, experiment_params(other_engine)),
            operating_point_signature(a, params_a));

  ExperimentSpec precharged = a;
  precharged.overrides.back().value = 2.0;  // supercap.initial_voltage 0 -> 2
  EXPECT_NE(operating_point_signature(precharged, experiment_params(precharged)),
            operating_point_signature(a, params_a));

  // Near-identical parameters collide on the quantised grid; far ones split.
  ExperimentSpec nudged = a;
  nudged.pre_tuned_hz = 70.0 * (1.0 + 1e-6);
  EXPECT_EQ(operating_point_signature(nudged, experiment_params(nudged)),
            operating_point_signature(a, params_a));
  // quantum <= 0 demands exact parameter equality.
  EXPECT_NE(operating_point_signature(nudged, experiment_params(nudged), 0.0),
            operating_point_signature(a, params_a, 0.0));
}

// ---- batch integration ----------------------------------------------------

TEST(WarmStartBatch, CountersShowTheWinAndResultsStayBitIdentical) {
  std::vector<ScenarioJob> jobs;
  for (const double hz : {69.0, 71.0, 73.0, 75.0}) {
    jobs.push_back(ScenarioJob{charging_variant(hz), std::nullopt});
  }

  BatchStats cold_stats;
  const auto cold = run_scenario_batch(jobs, BatchOptions{.threads = 1}, &cold_stats);
  EXPECT_EQ(cold_stats.warm_start_hits, 0u);
  EXPECT_EQ(cold_stats.warm_start_rejects, 0u);
  EXPECT_GT(cold_stats.init_iterations, 0u);

  BatchStats warm_stats;
  const auto warm = run_scenario_batch(
      jobs, BatchOptions{.threads = 1, .warm_start = true}, &warm_stats);
  ASSERT_EQ(warm.size(), cold.size());
  EXPECT_EQ(warm_stats.warm_start_hits, jobs.size());
  EXPECT_EQ(warm_stats.warm_start_rejects, 0u);
  // The honest accounting (including the one serial producer init) still
  // beats paying the full cold start in every job.
  EXPECT_LT(warm_stats.init_iterations, cold_stats.init_iterations);

  // Identical initial parameter vectors: every seeded job converges to the
  // producer's operating point exactly, so the transients are bit-identical
  // to their cold runs.
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(warm[i].warm_start, WarmStartOutcome::kSeeded) << i;
    EXPECT_TRUE(results_bit_identical(cold[i], warm[i])) << i;
  }
}

TEST(WarmStartBatch, ParallelWarmStartedBatchIsDeterministic) {
  std::vector<ScenarioJob> jobs;
  for (const double hz : {68.0, 70.5, 73.0, 75.5}) {
    jobs.push_back(ScenarioJob{charging_variant(hz), std::nullopt});
  }
  const auto serial = run_scenario_batch(
      jobs, BatchOptions{.threads = 1, .warm_start = true}, nullptr);
  const auto parallel = run_scenario_batch(
      jobs, BatchOptions{.threads = 4, .warm_start = true}, nullptr);
  ASSERT_EQ(serial.size(), parallel.size());
  // Seeds are assigned by structural signature before the fan-out — never by
  // worker scheduling — so the parallel batch is bit-identical to serial.
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(results_bit_identical(serial[i], parallel[i])) << i;
  }
}

/// Determinism matrix: the same warm-started batch at pool sizes 1, 2 and 8
/// must be bit-identical across thread counts — and, because these jobs'
/// t=0 parameter vectors are exactly equal, bit-identical to the serial
/// *cold* run too (the seeded consistency check accepts the producer's
/// converged operating point unchanged). Strengthens the single 1-vs-4
/// parallel-determinism test to a pool-size matrix: seeds are assigned by
/// structural signature before the fan-out, so no scheduling order at any
/// worker count may leak into results.
TEST(WarmStartBatch, DeterministicAcrossPoolSizesAndBitIdenticalToSerialCold) {
  std::vector<ScenarioJob> jobs;
  for (const double hz : {68.0, 69.5, 70.5, 71.5, 73.0, 75.5}) {
    jobs.push_back(ScenarioJob{charging_variant(hz), std::nullopt});
  }
  const auto cold = run_scenario_batch(jobs, BatchOptions{.threads = 1}, nullptr);
  ASSERT_EQ(cold.size(), jobs.size());

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    BatchStats stats;
    const auto warm = run_scenario_batch(
        jobs, BatchOptions{.threads = threads, .warm_start = true}, &stats);
    ASSERT_EQ(warm.size(), cold.size()) << threads;
    EXPECT_EQ(stats.warm_start_hits, jobs.size()) << threads;
    EXPECT_EQ(stats.warm_start_rejects, 0u) << threads;
    for (std::size_t i = 0; i < cold.size(); ++i) {
      EXPECT_EQ(warm[i].warm_start, WarmStartOutcome::kSeeded)
          << threads << " threads, job " << i;
      EXPECT_TRUE(results_bit_identical(cold[i], warm[i]))
          << threads << " threads, job " << i;
    }
  }
}

TEST(WarmStartBatch, MixedSignaturesSeedWithinTheirGroupOnly) {
  // Two structural groups: empty supercap and 2 V precharge. Each group's
  // producer must seed only its own members — a cross-group seed would still
  // converge, but the hit counters pin the intended grouping.
  std::vector<ScenarioJob> jobs;
  for (const double hz : {70.0, 72.0}) {
    jobs.push_back(ScenarioJob{charging_variant(hz), std::nullopt});
    ExperimentSpec precharged = charging_variant(hz);
    precharged.name += "-precharged";
    precharged.overrides.back().value = 2.0;
    jobs.push_back(ScenarioJob{precharged, std::nullopt});
  }
  BatchStats stats;
  const auto results =
      run_scenario_batch(jobs, BatchOptions{.threads = 1, .warm_start = true}, &stats);
  EXPECT_EQ(stats.warm_start_hits, jobs.size());
  EXPECT_EQ(stats.warm_start_rejects, 0u);
  // Every job was seeded with its own group's exact operating point, so all
  // four are bit-identical to their cold runs.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const ScenarioResult cold = run_experiment(jobs[i].spec);
    EXPECT_TRUE(results_bit_identical(cold, results[i])) << i;
  }
}

TEST(WarmStartBatch, SingletonSignaturesRunColdWithoutProducerOverhead) {
  // Jobs that differ beyond the quantum share nothing: a producer would pay
  // the full cold init serially only for its one consumer to skip the same
  // iterations. Such jobs run cold — the option must never make a batch pay
  // more consistency iterations than cold-start.
  std::vector<ScenarioJob> jobs;
  for (const double precharge : {0.0, 1.0, 2.0, 3.0}) {
    ExperimentSpec spec = charging_variant(71.0);
    spec.name += "-v" + std::to_string(precharge);
    spec.overrides.back().value = precharge;
    jobs.push_back(ScenarioJob{spec, std::nullopt});
  }
  BatchStats cold_stats;
  const auto cold = run_scenario_batch(jobs, BatchOptions{.threads = 1}, &cold_stats);
  BatchStats warm_stats;
  const auto warm = run_scenario_batch(
      jobs, BatchOptions{.threads = 1, .warm_start = true}, &warm_stats);
  EXPECT_EQ(warm_stats.warm_start_hits, 0u);
  EXPECT_EQ(warm_stats.warm_start_rejects, 0u);
  EXPECT_EQ(warm_stats.init_iterations, cold_stats.init_iterations);
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(warm[i].warm_start, WarmStartOutcome::kCold) << i;
    EXPECT_TRUE(results_bit_identical(cold[i], warm[i])) << i;
  }
}

// ---- optimise integration -------------------------------------------------

TEST(WarmStartOptimise, GoldenSectionEvaluationsReuseOperatingPoints) {
  OptimiseSpec spec;
  spec.name = "warm-start-optimise";
  spec.base = charging_scenario(0.05);
  spec.base.trace_interval = 0.0;
  spec.base.probes.push_back(ProbeSpec{"E", ProbeSpec::Kind::kStoredEnergy});
  spec.variable = "supercap.initial_voltage";
  spec.lower = 0.99;
  spec.upper = 1.01;
  spec.objective = "E";
  spec.statistic = "final";
  spec.max_evaluations = 10;
  spec.x_tolerance = 1e-6;

  const OptimiseResult cold = run_optimise(spec);
  EXPECT_FALSE(cold.warm_start);
  EXPECT_EQ(cold.warm_start_hits, 0u);
  EXPECT_GT(cold.init_iterations, 0u);

  OptimiseSpec warm_spec = spec;
  warm_spec.warm_start = true;
  const OptimiseResult warm = run_optimise(warm_spec);
  EXPECT_TRUE(warm.warm_start);
  EXPECT_GT(warm.warm_start_hits, 0u);
  EXPECT_LT(warm.init_iterations, cold.init_iterations);
  // Seeded evaluations converge to the same tolerance as cold ones: the
  // search must land on the same optimum to within its own bracket width.
  EXPECT_EQ(warm.evaluations.size(), cold.evaluations.size());
  EXPECT_NEAR(warm.best.x, cold.best.x, 1e-4);
  const double scale = std::max(std::abs(cold.best.value), 1e-12);
  EXPECT_LT(std::abs(warm.best.value - cold.best.value) / scale, 1e-6);
}

}  // namespace
