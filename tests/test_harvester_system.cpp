/// \file test_harvester_system.cpp
/// \brief End-to-end tests of the complete mixed-technology harvester model.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/nr_engine.hpp"
#include "core/linearised_solver.hpp"
#include "core/mixed_signal.hpp"
#include "harvester/harvester_system.hpp"

namespace {

using ehsim::baseline::NrEngine;
using ehsim::core::LinearisedSolver;
using ehsim::core::MixedSignalSimulator;
using ehsim::harvester::DeviceEvalMode;
using ehsim::harvester::HarvesterParams;
using ehsim::harvester::HarvesterSystem;
using ehsim::harvester::McuEvent;
using ehsim::harvester::TuningMechanism;

HarvesterParams tuned_params(double f_hz) {
  HarvesterParams params;
  params.vibration.initial_frequency_hz = f_hz;
  const TuningMechanism mechanism(params.tuning, params.generator);
  params.actuator.initial_gap = mechanism.gap_for_frequency(f_hz);
  return params;
}

TEST(HarvesterSystem, ModelSizeMatchesPaper) {
  // "the state-space model of a complete energy harvester consists of a
  //  11 by 11 matrix of state equations" — with Vm, Im, Vc, Ic eliminated.
  HarvesterSystem system(HarvesterParams{}, DeviceEvalMode::kPwlTable);
  EXPECT_EQ(system.assembler().num_states(), 11u);
  EXPECT_EQ(system.assembler().num_nets(), 4u);
}

TEST(HarvesterSystem, Eq13VariantHasTwelveStates) {
  HarvesterParams params;
  params.generator.coil_inductance = 9.5e-3;  // verbatim Eq. 13 coil state
  HarvesterSystem system(params, DeviceEvalMode::kPwlTable);
  EXPECT_EQ(system.assembler().num_states(), 12u);
}

TEST(HarvesterSystem, NetNamesMatchFig3) {
  HarvesterSystem system(HarvesterParams{}, DeviceEvalMode::kPwlTable);
  const auto names = system.assembler().net_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "Vm");
  EXPECT_EQ(names[1], "Im");
  EXPECT_EQ(names[2], "Vc");
  EXPECT_EQ(names[3], "Ic");
}

TEST(HarvesterSystem, TunedGeneratorDeliversPaperPower) {
  // Headline observable: ~118 uW mean generator output at 70 Hz (paper
  // Fig. 8a: 118 uW tuned at 70 Hz, practical value 116 uW).
  HarvesterSystem system(tuned_params(70.0), DeviceEvalMode::kPwlTable, false);
  LinearisedSolver solver(system.assembler());
  solver.initialise(0.0);
  solver.advance_to(6.0);  // settle
  double energy = 0.0;
  double t_prev = solver.time();
  const auto vm = system.vm_index();
  const auto im = system.im_index();
  solver.add_observer([&](double t, std::span<const double>, std::span<const double> y) {
    energy += y[vm] * y[im] * (t - t_prev);
    t_prev = t;
  });
  solver.advance_to(10.0);
  const double mean_power = energy / 4.0;
  EXPECT_NEAR(mean_power * 1e6, 118.0, 12.0);  // within ~10%
}

TEST(HarvesterSystem, DetunedGeneratorProducesLessPower) {
  auto run = [](double ambient, double tuned) {
    HarvesterParams params = tuned_params(tuned);
    params.vibration.initial_frequency_hz = ambient;
    HarvesterSystem system(params, DeviceEvalMode::kPwlTable, false);
    LinearisedSolver solver(system.assembler());
    solver.initialise(0.0);
    solver.advance_to(6.0);
    double energy = 0.0;
    double t_prev = solver.time();
    const auto vm = system.vm_index();
    const auto im = system.im_index();
    solver.add_observer([&](double t, std::span<const double>, std::span<const double> y) {
      energy += y[vm] * y[im] * (t - t_prev);
      t_prev = t;
    });
    solver.advance_to(9.0);
    return energy / 3.0;
  };
  const double matched = run(70.0, 70.0);
  const double detuned = run(70.0, 74.0);  // 4 Hz off resonance
  EXPECT_GT(matched, detuned * 2.0);
}

TEST(HarvesterSystem, SupercapChargesFromGenerator) {
  HarvesterParams params = tuned_params(70.0);
  params.supercap.initial_voltage = 3.0;
  HarvesterSystem system(params, DeviceEvalMode::kPwlTable, false);
  LinearisedSolver solver(system.assembler());
  solver.initialise(0.0);
  solver.advance_to(30.0);
  const auto vi = system.assembler().state_index({2}, 0);
  EXPECT_GT(solver.state()[vi], 3.0);  // net charging
}

TEST(HarvesterSystem, McuRetunesAfterFrequencyShift) {
  // Miniature scenario 1: shift 70 -> 71 Hz, watchdog finds the mismatch
  // and the actuator retunes — the complete Fig. 7 loop over the real
  // analogue model.
  HarvesterParams params = tuned_params(70.0);
  params.mcu.watchdog_period = 4.0;
  HarvesterSystem system(params, DeviceEvalMode::kPwlTable, true);
  system.vibration().set_frequency_at(2.0, 71.0);

  LinearisedSolver solver(system.assembler());
  solver.initialise(0.0);
  system.attach_engine(solver);
  MixedSignalSimulator sim(solver, system.kernel());
  sim.run_until(10.0);

  ASSERT_NE(system.mcu(), nullptr);
  EXPECT_GE(system.mcu()->completed_tunings(), 1u);
  EXPECT_NEAR(system.generator().resonant_frequency(10.0), 71.0, 0.3);
  // Load returned to sleep.
  EXPECT_EQ(system.supercap().load_mode(), ehsim::harvester::LoadMode::kSleep);
}

TEST(HarvesterSystem, TuningDipsAndLoadsSupercap) {
  HarvesterParams params = tuned_params(70.0);
  params.mcu.watchdog_period = 3.0;
  HarvesterSystem system(params, DeviceEvalMode::kPwlTable, true);
  system.vibration().set_frequency_at(1.0, 73.0);  // bigger retune

  LinearisedSolver solver(system.assembler());
  solver.initialise(0.0);
  system.attach_engine(solver);
  MixedSignalSimulator sim(solver, system.kernel());

  double vc_min = 1e9;
  const auto vc = system.vc_index();
  solver.add_observer([&](double, std::span<const double>, std::span<const double> y) {
    vc_min = std::min(vc_min, y[vc]);
  });
  sim.run_until(10.0);
  // The actuation burst visibly dips the supercapacitor voltage.
  EXPECT_LT(vc_min, params.supercap.initial_voltage - 0.05);
}

TEST(HarvesterSystem, LowEnergyBlocksTuning) {
  HarvesterParams params = tuned_params(70.0);
  params.supercap.initial_voltage = 1.95;  // below the 2.1 V threshold
  params.mcu.watchdog_period = 2.0;
  HarvesterSystem system(params, DeviceEvalMode::kPwlTable, true);
  system.vibration().set_frequency_at(1.0, 74.0);

  LinearisedSolver solver(system.assembler());
  solver.initialise(0.0);
  system.attach_engine(solver);
  MixedSignalSimulator sim(solver, system.kernel());
  sim.run_until(7.0);

  EXPECT_EQ(system.mcu()->tuning_bursts(), 0u);
  bool saw_energy_low = false;
  for (const auto& e : system.mcu()->events()) {
    saw_energy_low = saw_energy_low || e.type == McuEvent::Type::kEnergyLow;
  }
  EXPECT_TRUE(saw_energy_low);
}

TEST(HarvesterSystem, ProposedMatchesNrBaselineTrajectory) {
  // The paper's accuracy claim on the full model: both engines produce the
  // same supercapacitor trajectory within tolerance.
  HarvesterParams params = tuned_params(70.0);
  HarvesterSystem sys_a(params, DeviceEvalMode::kPwlTable, false);
  HarvesterSystem sys_b(params, DeviceEvalMode::kExactShockley, false);

  LinearisedSolver proposed(sys_a.assembler());
  proposed.initialise(0.0);
  proposed.advance_to(2.0);

  NrEngine reference(sys_b.assembler(), ehsim::baseline::systemvision_profile());
  reference.initialise(0.0);
  reference.advance_to(2.0);

  // Compare the slow states (multiplier ladder + supercap); the fast AC
  // states are phase-sensitive.
  const auto mo = sys_a.assembler().state_offset({1});
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(proposed.state()[mo + k], reference.state()[mo + k], 0.08)
        << "ladder cap " << k;
  }
  const auto so = sys_a.assembler().state_offset({2});
  EXPECT_NEAR(proposed.state()[so], reference.state()[so], 0.01);
}

TEST(HarvesterSystem, McuProbeBeforeAttachThrows) {
  HarvesterParams params = tuned_params(70.0);
  params.mcu.watchdog_period = 0.5;
  HarvesterSystem system(params, DeviceEvalMode::kPwlTable, true);
  LinearisedSolver solver(system.assembler());
  solver.initialise(0.0);
  // Start the kernel without attaching the engine: the MCU cannot probe.
  system.mcu()->start();
  EXPECT_THROW(system.kernel().run_until(1.0), ehsim::SolverError);
}

}  // namespace
