/// \file test_ode_newton.cpp
/// \brief Damped Newton-Raphson solver tests.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.hpp"
#include "ode/newton.hpp"

namespace {

using ehsim::linalg::Matrix;
using ehsim::ode::newton_solve;
using ehsim::ode::NewtonOptions;
using ehsim::ode::NewtonStatus;
using ehsim::ode::NewtonWorkspace;

TEST(Newton, SolvesLinearSystemInOneIteration) {
  // F(u) = A u - b.
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  auto residual = [&](std::span<const double> u, std::span<double> out) {
    out[0] = 2.0 * u[0] + u[1] - 5.0;
    out[1] = u[0] + 3.0 * u[1] - 10.0;
  };
  auto jacobian = [&](std::span<const double>, Matrix& out) { out = a; };
  std::vector<double> u{0.0, 0.0};
  NewtonWorkspace ws(2);
  const auto result = newton_solve(residual, jacobian, u, {}, ws);
  EXPECT_TRUE(result.converged());
  EXPECT_LE(result.iterations, 2u);
  EXPECT_NEAR(u[0], 1.0, 1e-10);
  EXPECT_NEAR(u[1], 3.0, 1e-10);
}

TEST(Newton, QuadraticConvergenceOnSqrt) {
  // F(u) = u^2 - 2.
  auto residual = [](std::span<const double> u, std::span<double> out) {
    out[0] = u[0] * u[0] - 2.0;
  };
  auto jacobian = [](std::span<const double> u, Matrix& out) { out(0, 0) = 2.0 * u[0]; };
  std::vector<double> u{1.0};
  NewtonWorkspace ws(1);
  NewtonOptions options;
  options.abs_tol = 1e-14;
  const auto result = newton_solve(residual, jacobian, u, options, ws);
  EXPECT_TRUE(result.converged());
  EXPECT_NEAR(u[0], std::sqrt(2.0), 1e-12);
  EXPECT_LE(result.iterations, 8u);  // quadratic convergence is fast
}

TEST(Newton, DampingRescuesOvershoot) {
  // F(u) = atan(u): full Newton from u0 = 3 overshoots and diverges without
  // damping; the halving line search keeps it in the basin.
  auto residual = [](std::span<const double> u, std::span<double> out) {
    out[0] = std::atan(u[0]);
  };
  auto jacobian = [](std::span<const double> u, Matrix& out) {
    out(0, 0) = 1.0 / (1.0 + u[0] * u[0]);
  };
  std::vector<double> u{3.0};
  NewtonWorkspace ws(1);
  NewtonOptions options;
  options.abs_tol = 1e-12;
  options.max_iterations = 60;
  const auto result = newton_solve(residual, jacobian, u, options, ws);
  EXPECT_TRUE(result.converged());
  EXPECT_NEAR(u[0], 0.0, 1e-10);
}

TEST(Newton, SingularJacobianReported) {
  auto residual = [](std::span<const double> u, std::span<double> out) { out[0] = u[0] + 1.0; };
  auto jacobian = [](std::span<const double>, Matrix& out) { out(0, 0) = 0.0; };
  std::vector<double> u{0.0};
  NewtonWorkspace ws(1);
  const auto result = newton_solve(residual, jacobian, u, {}, ws);
  EXPECT_EQ(result.status, NewtonStatus::kSingularJacobian);
  EXPECT_FALSE(result.converged());
}

TEST(Newton, MaxIterationsReported) {
  // Slowly converging problem with a tiny iteration budget.
  auto residual = [](std::span<const double> u, std::span<double> out) {
    out[0] = std::atan(u[0]);
  };
  auto jacobian = [](std::span<const double> u, Matrix& out) {
    out(0, 0) = 1.0 / (1.0 + u[0] * u[0]);
  };
  std::vector<double> u{50.0};
  NewtonWorkspace ws(1);
  NewtonOptions options;
  options.max_iterations = 2;
  options.abs_tol = 1e-15;
  const auto result = newton_solve(residual, jacobian, u, options, ws);
  EXPECT_EQ(result.status, NewtonStatus::kMaxIterations);
}

TEST(Newton, ConvergedOnEntryCostsNoIterations) {
  auto residual = [](std::span<const double> u, std::span<double> out) { out[0] = u[0]; };
  auto jacobian = [](std::span<const double>, Matrix& out) { out(0, 0) = 1.0; };
  std::vector<double> u{0.0};
  NewtonWorkspace ws(1);
  const auto result = newton_solve(residual, jacobian, u, {}, ws);
  EXPECT_TRUE(result.converged());
  EXPECT_EQ(result.iterations, 0u);
  EXPECT_EQ(result.jacobian_factorisations, 0u);
}

TEST(Newton, StepNormLimitClampsUpdate) {
  // Linear problem whose solution is far away; with max_step_norm tiny the
  // first update is clamped (the solver then keeps iterating toward it).
  auto residual = [](std::span<const double> u, std::span<double> out) {
    out[0] = u[0] - 1000.0;
  };
  auto jacobian = [](std::span<const double>, Matrix& out) { out(0, 0) = 1.0; };
  std::vector<double> u{0.0};
  NewtonWorkspace ws(1);
  NewtonOptions options;
  options.max_step_norm = 1.0;
  options.max_iterations = 5;
  options.enable_damping = false;
  const auto result = newton_solve(residual, jacobian, u, options, ws);
  // Five clamped unit steps cannot reach 1000.
  EXPECT_FALSE(result.converged());
  EXPECT_NEAR(u[0], 5.0, 1e-12);
}

TEST(Newton, DivergenceToNanReported) {
  auto residual = [](std::span<const double> u, std::span<double> out) {
    out[0] = u[0] > 0.5 ? std::numeric_limits<double>::quiet_NaN() : u[0] - 1.0;
  };
  auto jacobian = [](std::span<const double>, Matrix& out) { out(0, 0) = 1.0; };
  std::vector<double> u{0.0};
  NewtonWorkspace ws(1);
  NewtonOptions options;
  options.enable_damping = false;
  const auto result = newton_solve(residual, jacobian, u, options, ws);
  EXPECT_EQ(result.status, NewtonStatus::kDiverged);
}

TEST(Newton, TwoDimensionalNonlinearSystem) {
  // Intersection of a circle and a parabola: x^2+y^2=4, y=x^2.
  auto residual = [](std::span<const double> u, std::span<double> out) {
    out[0] = u[0] * u[0] + u[1] * u[1] - 4.0;
    out[1] = u[1] - u[0] * u[0];
  };
  auto jacobian = [](std::span<const double> u, Matrix& out) {
    out(0, 0) = 2.0 * u[0];
    out(0, 1) = 2.0 * u[1];
    out(1, 0) = -2.0 * u[0];
    out(1, 1) = 1.0;
  };
  std::vector<double> u{1.0, 1.0};
  NewtonWorkspace ws(2);
  const auto result = newton_solve(residual, jacobian, u, {}, ws);
  EXPECT_TRUE(result.converged());
  EXPECT_NEAR(u[0] * u[0] + u[1] * u[1], 4.0, 1e-9);
  EXPECT_NEAR(u[1], u[0] * u[0], 1e-9);
}

}  // namespace
