/// \file test_harvester_mcu.cpp
/// \brief Microcontroller digital process tests against the Fig. 7 flow chart.
#include <gtest/gtest.h>

#include <cmath>

#include "digital/kernel.hpp"
#include "harvester/mcu.hpp"

namespace {

using ehsim::digital::Kernel;
using ehsim::harvester::LoadMode;
using ehsim::harvester::McuCallbacks;
using ehsim::harvester::McuController;
using ehsim::harvester::McuEvent;
using ehsim::harvester::McuParams;
using ehsim::harvester::McuState;

/// Scripted analogue world for driving the MCU without a solver.
struct MockPlant {
  double vc = 3.4;
  double ambient_hz = 70.0;
  double resonant_hz = 70.0;
  LoadMode mode = LoadMode::kSleep;
  double tuning_rate_hz_per_s = 2.0;  // how fast "the actuator" retunes
  double tuning_target = 70.0;
  double tuning_start_time = 0.0;
  double tuning_start_hz = 70.0;
  bool tuning_active = false;
  int start_calls = 0;
  int stop_calls = 0;

  McuCallbacks callbacks(Kernel& kernel) {
    McuCallbacks cb;
    cb.supercap_voltage = [this] { return vc; };
    cb.ambient_frequency = [this] { return ambient_hz; };
    cb.resonant_frequency = [this, &kernel] { return resonance_at(kernel.now()); };
    cb.set_load_mode = [this](LoadMode m) { mode = m; };
    cb.start_tuning = [this](double target, double t_now) {
      ++start_calls;
      tuning_start_hz = resonance_at(t_now);
      tuning_target = target;
      tuning_start_time = t_now;
      tuning_active = true;
      return t_now + std::abs(target - tuning_start_hz) / tuning_rate_hz_per_s;
    };
    cb.stop_tuning = [this, &kernel](double t_now) {
      ++stop_calls;
      tuning_start_hz = resonance_at(t_now);
      tuning_start_time = t_now;
      tuning_active = false;
      (void)kernel;
    };
    return cb;
  }

  double resonance_at(double t) const {
    if (!tuning_active) {
      return tuning_start_hz;
    }
    const double dt = t - tuning_start_time;
    const double dir = tuning_target > tuning_start_hz ? 1.0 : -1.0;
    const double moved = dir * tuning_rate_hz_per_s * dt;
    if (std::abs(moved) >= std::abs(tuning_target - tuning_start_hz)) {
      return tuning_target;
    }
    return tuning_start_hz + moved;
  }
};

McuParams fast_params() {
  McuParams p;
  p.watchdog_period = 10.0;
  p.measurement_time = 0.01;
  p.frequency_tolerance = 0.25;
  p.energy_threshold_voltage = 3.0;
  p.abort_voltage = 1.8;
  return p;
}

TEST(Mcu, SleepsWhenFrequencyMatched) {
  Kernel kernel;
  MockPlant plant;
  McuController mcu(kernel, fast_params(), plant.callbacks(kernel));
  mcu.start();
  kernel.run_until(35.0);
  EXPECT_EQ(mcu.wakeups(), 3u);
  EXPECT_EQ(mcu.tuning_bursts(), 0u);
  EXPECT_EQ(plant.mode, LoadMode::kSleep);
  // Every wakeup logged a frequency-matched event.
  std::size_t matched = 0;
  for (const auto& e : mcu.events()) {
    matched += e.type == McuEvent::Type::kFrequencyMatched ? 1u : 0u;
  }
  EXPECT_EQ(matched, 3u);
}

TEST(Mcu, LowEnergySkipsMeasurement) {
  Kernel kernel;
  MockPlant plant;
  plant.vc = 2.0;  // below the 3.0 V threshold
  plant.ambient_hz = 75.0;  // mismatch present but unreachable
  McuController mcu(kernel, fast_params(), plant.callbacks(kernel));
  mcu.start();
  kernel.run_until(25.0);
  EXPECT_EQ(mcu.tuning_bursts(), 0u);
  EXPECT_EQ(plant.mode, LoadMode::kSleep);
  bool saw_energy_low = false;
  for (const auto& e : mcu.events()) {
    saw_energy_low = saw_energy_low || e.type == McuEvent::Type::kEnergyLow;
  }
  EXPECT_TRUE(saw_energy_low);
}

TEST(Mcu, TunesOnFrequencyMismatch) {
  Kernel kernel;
  MockPlant plant;
  plant.ambient_hz = 72.0;  // 2 Hz mismatch -> 1 s tuning at 2 Hz/s
  McuController mcu(kernel, fast_params(), plant.callbacks(kernel));
  mcu.start();
  kernel.run_until(12.0);
  EXPECT_EQ(mcu.tuning_bursts(), 1u);
  EXPECT_EQ(mcu.completed_tunings(), 1u);
  EXPECT_EQ(plant.start_calls, 1);
  EXPECT_NEAR(plant.resonance_at(kernel.now()), 72.0, 1e-9);
  EXPECT_EQ(plant.mode, LoadMode::kSleep);  // back asleep after completion
  EXPECT_EQ(mcu.state(), McuState::kSleep);
}

TEST(Mcu, LoadModeSequenceDuringTuning) {
  Kernel kernel;
  MockPlant plant;
  plant.ambient_hz = 71.0;
  std::vector<LoadMode> modes;
  auto cb = plant.callbacks(kernel);
  auto original = cb.set_load_mode;
  cb.set_load_mode = [&modes, &plant](LoadMode m) {
    modes.push_back(m);
    plant.mode = m;
  };
  McuController mcu(kernel, fast_params(), std::move(cb));
  mcu.start();
  kernel.run_until(12.0);
  // Awake (measurement) -> Tuning -> Sleep.
  ASSERT_GE(modes.size(), 3u);
  EXPECT_EQ(modes[0], LoadMode::kAwake);
  EXPECT_EQ(modes[1], LoadMode::kTuning);
  EXPECT_EQ(modes[2], LoadMode::kSleep);
}

TEST(Mcu, AbortsBurstWhenSupercapSags) {
  Kernel kernel;
  MockPlant plant;
  plant.ambient_hz = 78.0;  // long burst: 8 Hz / 2 Hz/s = 4 s
  McuController mcu(kernel, fast_params(), plant.callbacks(kernel));
  // Sag the supply shortly after the burst begins.
  kernel.schedule_at(11.0, [&plant] { plant.vc = 1.0; });
  mcu.start();
  kernel.run_until(14.0);
  EXPECT_EQ(mcu.aborted_bursts(), 1u);
  EXPECT_EQ(mcu.completed_tunings(), 0u);
  EXPECT_EQ(plant.stop_calls, 1);
  EXPECT_EQ(plant.mode, LoadMode::kSleep);
  // Partial progress was made before the abort.
  EXPECT_GT(plant.resonance_at(kernel.now()), 70.0);
  EXPECT_LT(plant.resonance_at(kernel.now()), 78.0);
}

TEST(Mcu, ResumesTuningAfterRecharge) {
  Kernel kernel;
  MockPlant plant;
  plant.ambient_hz = 78.0;
  McuController mcu(kernel, fast_params(), plant.callbacks(kernel));
  kernel.schedule_at(11.0, [&plant] { plant.vc = 1.0; });   // sag -> abort
  kernel.schedule_at(15.0, [&plant] { plant.vc = 3.4; });   // recharged
  mcu.start();
  kernel.run_until(40.0);
  EXPECT_EQ(mcu.aborted_bursts(), 1u);
  EXPECT_GE(mcu.tuning_bursts(), 2u);      // burst resumed at a later wake
  EXPECT_EQ(mcu.completed_tunings(), 1u);  // and eventually completed
  EXPECT_NEAR(plant.resonance_at(kernel.now()), 78.0, 1e-9);
}

TEST(Mcu, WatchdogIgnoredWhileBusy) {
  Kernel kernel;
  MockPlant plant;
  plant.ambient_hz = 75.0;
  plant.tuning_rate_hz_per_s = 0.4;  // 12.5 s burst spans a watchdog period
  McuController mcu(kernel, fast_params(), plant.callbacks(kernel));
  mcu.start();
  kernel.run_until(35.0);
  EXPECT_EQ(plant.start_calls, 1);  // no re-entrant tuning from the watchdog
  EXPECT_EQ(mcu.completed_tunings(), 1u);
}

TEST(Mcu, EventsCarryTimesAndValues) {
  Kernel kernel;
  MockPlant plant;
  plant.ambient_hz = 71.0;
  McuController mcu(kernel, fast_params(), plant.callbacks(kernel));
  mcu.start();
  kernel.run_until(12.0);
  ASSERT_FALSE(mcu.events().empty());
  EXPECT_EQ(mcu.events().front().type, McuEvent::Type::kWakeup);
  EXPECT_NEAR(mcu.events().front().time, 10.0, 1e-9);
  EXPECT_NEAR(mcu.events().front().value, 3.4, 1e-12);  // Vc at wake
  bool found_start = false;
  for (const auto& e : mcu.events()) {
    if (e.type == McuEvent::Type::kTuningStarted) {
      found_start = true;
      EXPECT_NEAR(e.value, 71.0, 1e-12);  // target frequency
    }
  }
  EXPECT_TRUE(found_start);
}

TEST(Mcu, MissingCallbacksRejected) {
  Kernel kernel;
  McuCallbacks empty;
  EXPECT_THROW(McuController(kernel, fast_params(), empty), ehsim::ModelError);
}

TEST(Mcu, StartAfterControlsFirstWake) {
  Kernel kernel;
  MockPlant plant;
  McuController mcu(kernel, fast_params(), plant.callbacks(kernel));
  mcu.start_after(2.5);
  kernel.run_until(3.0);
  EXPECT_EQ(mcu.wakeups(), 1u);
  EXPECT_NEAR(mcu.events().front().time, 2.5, 1e-9);
}

/// Parameter sweep: the energy threshold gates tuning exactly.
class McuEnergyGate : public ::testing::TestWithParam<double> {};

TEST_P(McuEnergyGate, ThresholdGatesTuning) {
  const double vc = GetParam();
  Kernel kernel;
  MockPlant plant;
  plant.vc = vc;
  plant.ambient_hz = 72.0;
  McuController mcu(kernel, fast_params(), plant.callbacks(kernel));
  mcu.start();
  kernel.run_until(12.0);
  if (vc >= fast_params().energy_threshold_voltage) {
    EXPECT_EQ(mcu.tuning_bursts(), 1u) << "vc=" << vc;
  } else {
    EXPECT_EQ(mcu.tuning_bursts(), 0u) << "vc=" << vc;
  }
}

INSTANTIATE_TEST_SUITE_P(Voltages, McuEnergyGate,
                         ::testing::Values(1.0, 2.0, 2.9, 3.05, 3.4, 4.0));

}  // namespace
