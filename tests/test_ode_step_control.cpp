/// \file test_ode_step_control.cpp
/// \brief Step controller tests.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "ode/step_control.hpp"

namespace {

using ehsim::ModelError;
using ehsim::ode::StepControlOptions;
using ehsim::ode::StepController;

StepControlOptions options(double h_min = 1e-9, double h_max = 1.0) {
  StepControlOptions o;
  o.h_min = h_min;
  o.h_max = h_max;
  return o;
}

TEST(StepController, AcceptsSmallError) {
  StepController c(options(), 2);
  c.set_step(0.1);
  EXPECT_TRUE(c.update(0.1));
  EXPECT_EQ(c.acceptances(), 1u);
  EXPECT_EQ(c.rejections(), 0u);
}

TEST(StepController, GrowsOnSmallError) {
  StepController c(options(), 2);
  c.set_step(0.1);
  c.update(1e-6);
  EXPECT_GT(c.suggested_step(), 0.1);
}

TEST(StepController, RejectsAndShrinksOnLargeError) {
  StepController c(options(), 2);
  c.set_step(0.1);
  EXPECT_FALSE(c.update(100.0));
  EXPECT_LT(c.suggested_step(), 0.1);
  EXPECT_EQ(c.rejections(), 1u);
}

TEST(StepController, GrowthCapped) {
  StepController c(options(), 1);
  c.set_step(0.1);
  c.update(1e-12);
  EXPECT_LE(c.suggested_step(), 0.1 * c.options().max_growth + 1e-15);
}

TEST(StepController, ShrinkFloored) {
  StepController c(options(), 1);
  c.set_step(0.1);
  c.update(1e12);
  EXPECT_GE(c.suggested_step(), 0.1 * c.options().max_shrink - 1e-15);
}

TEST(StepController, ClampsToBounds) {
  StepController c(options(1e-3, 0.5), 1);
  c.set_step(10.0);
  EXPECT_DOUBLE_EQ(c.suggested_step(), 0.5);
  c.set_step(1e-9);
  EXPECT_DOUBLE_EQ(c.suggested_step(), 1e-3);
}

TEST(StepController, HoldsGrowthAfterRejection) {
  StepController c(options(), 1);
  c.set_step(0.1);
  c.update(10.0);  // reject
  const double after_reject = c.suggested_step();
  c.update(1e-9);  // accept with tiny error — growth suppressed while holding
  EXPECT_LE(c.suggested_step(), after_reject * 1.0 + 1e-15);
}

TEST(StepController, GrowthResumesAfterHoldExpires) {
  StepControlOptions o = options();
  o.hold_after_reject = 1;
  StepController c(o, 1);
  c.set_step(0.1);
  c.update(10.0);   // reject -> hold for 1 accepted step
  c.update(1e-9);   // accepted, hold consumed
  const double h1 = c.suggested_step();
  c.update(1e-9);   // growth allowed again
  EXPECT_GT(c.suggested_step(), h1);
}

TEST(StepController, RejectsInvalidOptions) {
  StepControlOptions bad;
  bad.h_min = 0.0;
  EXPECT_THROW(StepController(bad, 1), ModelError);
  StepControlOptions bad2;
  bad2.h_min = 1.0;
  bad2.h_max = 0.5;
  EXPECT_THROW(StepController(bad2, 1), ModelError);
  StepControlOptions bad3;
  bad3.safety = 0.0;
  EXPECT_THROW(StepController(bad3, 1), ModelError);
}

TEST(StepController, HigherOrderReactsLessAggressively) {
  StepController c1(options(), 1);
  StepController c4(options(), 4);
  c1.set_step(0.1);
  c4.set_step(0.1);
  c1.update(0.5);
  c4.update(0.5);
  // Same error ratio: the order-4 controller changes h less (exponent
  // 1/(p+1)).
  EXPECT_LT(c4.suggested_step(), c1.suggested_step());
}

}  // namespace
