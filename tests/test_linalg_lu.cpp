/// \file test_linalg_lu.cpp
/// \brief Unit + property tests for the LU factorisation.
#include <gtest/gtest.h>

#include <random>

#include "common/error.hpp"
#include "linalg/lu.hpp"

namespace {

using ehsim::SolverError;
using ehsim::linalg::inverse;
using ehsim::linalg::LuFactorization;
using ehsim::linalg::Matrix;
using ehsim::linalg::refine_solution;
using ehsim::linalg::solve_linear_system;
using ehsim::linalg::Vector;

TEST(Lu, Solves2x2) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector b{5.0, 10.0};
  const Vector x = solve_linear_system(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, SolvesIdentity) {
  const Matrix eye = Matrix::identity(4);
  const Vector b{1.0, 2.0, 3.0, 4.0};
  const Vector x = solve_linear_system(eye, b);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(x[i], b[i]);
  }
}

TEST(Lu, PivotingHandlesZeroLeadingDiagonal) {
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Vector b{2.0, 3.0};
  const Vector x = solve_linear_system(a, b);
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(Lu, SingularMatrixReportsFailure) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  LuFactorization lu;
  EXPECT_FALSE(lu.factor(a));
  EXPECT_FALSE(lu.ok());
}

TEST(Lu, SolveLinearSystemThrowsOnSingular) {
  const Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_THROW(solve_linear_system(a, Vector{1.0, 2.0}), SolverError);
}

TEST(Lu, DeterminantOfKnownMatrix) {
  const Matrix a{{4.0, 3.0}, {6.0, 3.0}};
  LuFactorization lu(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu.determinant(), -6.0, 1e-12);
}

TEST(Lu, DeterminantTracksPermutationSign) {
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  LuFactorization lu(a);
  EXPECT_NEAR(lu.determinant(), -1.0, 1e-14);
}

TEST(Lu, SolveMatrixSolvesColumns) {
  const Matrix a{{2.0, 0.0}, {0.0, 4.0}};
  const Matrix b{{2.0, 4.0}, {8.0, 12.0}};
  LuFactorization lu(a);
  Matrix x;
  lu.solve_matrix(b, x);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-14);
  EXPECT_NEAR(x(0, 1), 2.0, 1e-14);
  EXPECT_NEAR(x(1, 0), 2.0, 1e-14);
  EXPECT_NEAR(x(1, 1), 3.0, 1e-14);
}

TEST(Lu, InverseTimesOriginalIsIdentity) {
  const Matrix a{{3.0, 1.0, 0.0}, {1.0, 3.0, 1.0}, {0.0, 1.0, 3.0}};
  const Matrix prod = a * inverse(a);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(Lu, MinPivotMagnitudeReflectsConditioning) {
  const Matrix good = Matrix::identity(3);
  LuFactorization lu(good);
  EXPECT_NEAR(lu.min_pivot_magnitude(), 1.0, 1e-15);
}

TEST(Lu, RcondEstimateOrdersWellVsIllConditioned) {
  const Matrix well = Matrix::identity(3);
  Matrix ill = Matrix::identity(3);
  ill(2, 2) = 1e-10;
  LuFactorization lu_well(well);
  LuFactorization lu_ill(ill);
  const double r_well = lu_well.rcond_estimate(norm_inf(well));
  const double r_ill = lu_ill.rcond_estimate(norm_inf(ill));
  EXPECT_GT(r_well, r_ill * 1e6);
}

TEST(Lu, RefinementReducesResidual) {
  // A moderately ill-conditioned system where one refinement step helps.
  Matrix a(3, 3);
  a(0, 0) = 1e-8;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 1.0;
  a(1, 2) = 1.0;
  a(2, 1) = 1.0;
  a(2, 2) = 3.0;
  const Vector b{1.0, 2.0, 3.0};
  LuFactorization lu(a);
  ASSERT_TRUE(lu.ok());
  Vector x = lu.solve(b);
  Vector scratch(3);
  refine_solution(a, lu, b.span(), x.span(), scratch.span());
  // Residual after refinement should be at roundoff level.
  Vector r(3);
  a.matvec(x.span(), r.span());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(r[i], b[i], 1e-10);
  }
}

/// Property: random diagonally-dominant systems solve to tight residuals.
class LuRandomSolve : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuRandomSolve, ResidualIsSmall) {
  const std::size_t n = GetParam();
  std::mt19937 rng(1234u + static_cast<unsigned>(n));
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      a(r, c) = dist(rng);
      row_sum += std::abs(a(r, c));
    }
    a(r, r) += row_sum + 1.0;  // force dominance -> well-conditioned
  }
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = dist(rng);
  }
  const Vector x = solve_linear_system(a, b);
  Vector res(n);
  a.matvec(x.span(), res.span());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(res[i], b[i], 1e-10) << "n=" << n << " row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomSolve,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 11, 16, 32));

}  // namespace
