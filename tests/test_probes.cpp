/// \file test_probes.cpp
/// \brief Streaming probe channels (core), declarative ProbeSpecs
/// (experiments) and their ride-along on batch jobs.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/probe.hpp"
#include "experiments/probes.hpp"
#include "experiments/scenarios.hpp"
#include "harvester/tuning.hpp"

namespace {

using ehsim::ModelError;
using ehsim::core::ProbeChannel;
using ehsim::core::ProbeHub;
using ehsim::core::ProbeWindow;
using namespace ehsim::experiments;

/// A channel fed by hand — no engine involved.
struct ManualProbe {
  double value = 0.0;
  ProbeChannel channel;

  explicit ManualProbe(ProbeWindow window = {},
                       std::optional<double> threshold = std::nullopt)
      : channel(
            "probe",
            [this](double, std::span<const double>, std::span<const double>) {
              return value;
            },
            window, threshold) {}

  void push(double t, double v) {
    value = v;
    channel.sample(t, {}, {});
  }
};

// ---- core streaming statistics --------------------------------------------

TEST(ProbeChannel, RampStatisticsAreExact) {
  ManualProbe probe;
  for (const double t : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    probe.push(t, t);  // v(t) = t
  }
  EXPECT_EQ(probe.channel.samples(), 5u);
  EXPECT_DOUBLE_EQ(probe.channel.covered_time(), 1.0);
  EXPECT_DOUBLE_EQ(probe.channel.mean(), 0.5);
  EXPECT_DOUBLE_EQ(probe.channel.rms(), std::sqrt(1.0 / 3.0));  // RMS of t on [0,1]
  EXPECT_DOUBLE_EQ(probe.channel.minimum(), 0.0);
  EXPECT_DOUBLE_EQ(probe.channel.maximum(), 1.0);
  EXPECT_DOUBLE_EQ(probe.channel.final_value(), 1.0);
}

TEST(ProbeChannel, WindowClipsPartialSegments) {
  // Window [0.25, 0.75] of v(t) = t sampled only at 0, 0.5 and 1: both
  // window edges land mid-segment and must be clipped by interpolation.
  ManualProbe probe(ProbeWindow{0.25, 0.75});
  for (const double t : {0.0, 0.5, 1.0}) {
    probe.push(t, t);
  }
  EXPECT_EQ(probe.channel.samples(), 1u);  // only t = 0.5 lies inside
  EXPECT_DOUBLE_EQ(probe.channel.covered_time(), 0.5);
  EXPECT_DOUBLE_EQ(probe.channel.mean(), 0.5);
  EXPECT_DOUBLE_EQ(probe.channel.minimum(), 0.25);
  EXPECT_DOUBLE_EQ(probe.channel.maximum(), 0.75);
  EXPECT_DOUBLE_EQ(probe.channel.final_value(), 0.75);
}

TEST(ProbeChannel, ThresholdCountsUpwardCrossingsAndDuty) {
  // Triangle wave around the 0.5 threshold: up, down, up again.
  ManualProbe probe(ProbeWindow{}, 0.5);
  probe.push(0.0, 0.0);
  probe.push(1.0, 1.0);
  probe.push(2.0, 0.0);
  probe.push(3.0, 1.0);
  EXPECT_EQ(probe.channel.crossings(), 2u);
  // Above-threshold time: half of each of the three segments.
  EXPECT_DOUBLE_EQ(probe.channel.time_above(), 1.5);
  EXPECT_DOUBLE_EQ(probe.channel.duty_cycle(), 0.5);
}

TEST(ProbeChannel, SinglePointHasZeroMeasure) {
  ManualProbe probe;
  probe.push(1.0, 42.0);
  EXPECT_EQ(probe.channel.samples(), 1u);
  EXPECT_DOUBLE_EQ(probe.channel.covered_time(), 0.0);
  EXPECT_DOUBLE_EQ(probe.channel.mean(), 0.0);  // no covered time yet
  EXPECT_DOUBLE_EQ(probe.channel.final_value(), 42.0);
  EXPECT_DOUBLE_EQ(probe.channel.minimum(), 42.0);
  EXPECT_DOUBLE_EQ(probe.channel.maximum(), 42.0);
}

TEST(ProbeHub, RejectsDuplicateLabelsAndBadIndices) {
  ProbeHub hub;
  const auto zero = [](double, std::span<const double>, std::span<const double>) {
    return 0.0;
  };
  hub.add_channel("a", zero);
  EXPECT_THROW(hub.add_channel("a", zero), ModelError);
  ASSERT_NE(hub.find("a"), nullptr);
  EXPECT_EQ(hub.find("a")->label(), "a");
  EXPECT_EQ(hub.find("missing"), nullptr);
  EXPECT_EQ(hub.size(), 1u);
  EXPECT_THROW((void)hub.channel(1), ModelError);
}

// ---- spec validation ------------------------------------------------------

TEST(ProbeSpec, ValidationRejectsInconsistentSpecs) {
  ProbeSpec probe;
  probe.label = "ok";
  probe.kind = ProbeSpec::Kind::kGeneratorPower;
  EXPECT_NO_THROW(probe.validate());

  ProbeSpec unlabeled = probe;
  unlabeled.label.clear();
  EXPECT_THROW(unlabeled.validate(), ModelError);

  ProbeSpec unsafe = probe;
  unsafe.label = "bad,label";
  EXPECT_THROW(unsafe.validate(), ModelError);

  ProbeSpec shadowing = probe;
  shadowing.label = "Vc";
  EXPECT_THROW(shadowing.validate(), ModelError);

  ProbeSpec targetless = probe;
  targetless.kind = ProbeSpec::Kind::kNodeVoltage;
  EXPECT_THROW(targetless.validate(), ModelError);

  ProbeSpec extra_target = probe;
  extra_target.target = "Vm";
  EXPECT_THROW(extra_target.validate(), ModelError);

  ProbeSpec bad_window = probe;
  bad_window.window_start = 2.0;
  bad_window.window_end = 1.0;
  EXPECT_THROW(bad_window.validate(), ModelError);
}

TEST(ProbeSpec, ExperimentSpecRejectsDuplicateProbeLabels) {
  ExperimentSpec spec = charging_scenario(1.0);
  spec.probes.push_back(ProbeSpec{"p", ProbeSpec::Kind::kGeneratorPower});
  spec.probes.push_back(ProbeSpec{"p", ProbeSpec::Kind::kHarvestedPower});
  EXPECT_THROW(spec.validate(), ModelError);
}

TEST(ProbeSpec, UnknownNetAndStateFailAtInstallTime) {
  ExperimentSpec spec = charging_scenario(0.1);
  spec.probes.push_back(ProbeSpec{"ghost", ProbeSpec::Kind::kNodeVoltage, "Vxyz"});
  EXPECT_THROW((void)run_experiment(spec), ModelError);
  spec.probes.back() = ProbeSpec{"ghost", ProbeSpec::Kind::kStateVariable, "supercap.Vq"};
  EXPECT_THROW((void)run_experiment(spec), ModelError);
}

/// Regression: a reduction window starting at or past the end of the run can
/// never be reached — it used to install silently and report all-zero
/// statistics indistinguishable from a real result. It now fails at install
/// time, naming the probe.
TEST(ProbeSpec, WindowBeyondSimulatedSpanFailsAtInstallTime) {
  ExperimentSpec spec = charging_scenario(0.2);
  spec.probes.push_back(
      ProbeSpec{"late", ProbeSpec::Kind::kGeneratorPower, "", /*window_start=*/1.0});
  try {
    (void)run_experiment(spec);
    FAIL() << "expected ModelError for an unreachable probe window";
  } catch (const ModelError& error) {
    EXPECT_NE(std::string(error.what()).find("late"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("never be reached"), std::string::npos);
  }
  // window_start exactly at the end of the span is equally unreachable as a
  // *window* (zero measure); rejected too.
  spec.probes.back().window_start = 0.2;
  EXPECT_THROW((void)run_experiment(spec), ModelError);
  // A window that merely extends past the end is fine — it is clipped.
  spec.probes.back().window_start = 0.1;
  spec.probes.back().window_end = 5.0;
  EXPECT_NO_THROW((void)run_experiment(spec));
}

/// Empty-window statistics are defined (zeros), never NaN — the guard the
/// window validation backs up for windows that are reachable but see no
/// samples (and for direct core-layer users who bypass install_probes).
TEST(ProbeChannel, EmptyWindowStatisticsAreDefined) {
  ManualProbe probe(ProbeWindow{10.0, 20.0});
  probe.push(0.0, 1.0);
  probe.push(1.0, 2.0);  // entirely before the window
  EXPECT_TRUE(probe.channel.empty());
  EXPECT_EQ(probe.channel.covered_time(), 0.0);
  EXPECT_EQ(probe.channel.mean(), 0.0);
  EXPECT_EQ(probe.channel.rms(), 0.0);
  EXPECT_EQ(probe.channel.duty_cycle(), 0.0);
  EXPECT_TRUE(std::isfinite(probe.channel.mean()));
}

// ---- analytic oracles: the statistics match hand-derived closed forms ------

/// Windowed statistics of a linear signal are *exact* under the trapezoidal
/// convention (piecewise-linear interpolation of a linear function is the
/// function), so every reduction can be checked against calculus, not
/// against a recorded behaviour pin. v(t) = 3t - 1 on non-uniform samples,
/// window [0.2, 0.9] with both edges mid-segment, threshold 0.5.
TEST(ProbeOracle, RampOnNonUniformStepsMatchesClosedFormsExactly) {
  const double w0 = 0.2;
  const double w1 = 0.9;
  ManualProbe probe(ProbeWindow{w0, w1}, 0.5);
  for (const double t : {0.0, 0.13, 0.4, 0.77, 1.0}) {
    probe.push(t, 3.0 * t - 1.0);
  }
  EXPECT_DOUBLE_EQ(probe.channel.covered_time(), w1 - w0);
  // mean = (1/(w1-w0)) ∫ (3t-1) dt = 3(w0+w1)/2 - 1 (midpoint value).
  EXPECT_NEAR(probe.channel.mean(), 3.0 * (w0 + w1) / 2.0 - 1.0, 1e-12);
  // rms² = (1/(w1-w0)) ∫ (3t-1)² dt = [(3t-1)³/9] / (w1-w0).
  const auto cube = [](double v) { return v * v * v; };
  const double mean_square =
      (cube(3.0 * w1 - 1.0) - cube(3.0 * w0 - 1.0)) / 9.0 / (w1 - w0);
  EXPECT_NEAR(probe.channel.rms(), std::sqrt(mean_square), 1e-12);
  // Window-clipped extremes are the ramp evaluated at the window edges.
  EXPECT_NEAR(probe.channel.minimum(), 3.0 * w0 - 1.0, 1e-12);
  EXPECT_NEAR(probe.channel.maximum(), 3.0 * w1 - 1.0, 1e-12);
  EXPECT_NEAR(probe.channel.final_value(), 3.0 * w1 - 1.0, 1e-12);
  // 3t - 1 crosses 0.5 upward exactly once, at t = 0.5; above-threshold time
  // inside the window is w1 - 0.5.
  EXPECT_EQ(probe.channel.crossings(), 1u);
  EXPECT_NEAR(probe.channel.time_above(), w1 - 0.5, 1e-12);
  EXPECT_NEAR(probe.channel.duty_cycle(), (w1 - 0.5) / (w1 - w0), 1e-12);
}

/// v(t) = sin(2πt) sampled on deterministic non-uniform steps (0.6–1.8 ms),
/// window [0.25, 1.5]. The trapezoidal reductions converge to the continuous
/// integrals at O(h²) ≈ 1e-6, so the oracle is the calculus value with a
/// 1e-5-scale tolerance — the maths, not a pinned behaviour.
TEST(ProbeOracle, SampledSineMatchesContinuousIntegralsToTightTolerance) {
  constexpr double kPi = 3.14159265358979323846;
  const double w0 = 0.25;
  const double w1 = 1.5;
  ManualProbe probe(ProbeWindow{w0, w1}, 0.0);
  double t = 0.0;
  std::size_t i = 0;
  while (t <= 2.0) {
    probe.push(t, std::sin(2.0 * kPi * t));
    t += (3.0 + static_cast<double>(i % 7)) * 2e-4;  // non-uniform, 0.6–1.8 ms
    ++i;
  }
  EXPECT_NEAR(probe.channel.covered_time(), w1 - w0, 2e-3);
  // ∫ sin(2πt) dt over [0.25, 1.5] = (cos(π/2) - cos(3π)) / 2π = 1/(2π).
  EXPECT_NEAR(probe.channel.mean(), 1.0 / (2.0 * kPi) / (w1 - w0), 1e-5);
  // ∫ sin² = [t/2 - sin(4πt)/(8π)] over [0.25, 1.5] = 0.625 ⇒ rms = √0.5.
  EXPECT_NEAR(probe.channel.rms(), std::sqrt(0.5), 1e-5);
  EXPECT_NEAR(probe.channel.minimum(), -1.0, 1e-5);
  EXPECT_NEAR(probe.channel.maximum(), 1.0, 1e-5);
  // sin(2πt) > 0 on (0.25, 0.5) ∪ (1, 1.5) inside the window: 0.75 s above
  // a zero threshold, one upward crossing (at t = 1).
  EXPECT_EQ(probe.channel.crossings(), 1u);
  EXPECT_NEAR(probe.channel.time_above(), 0.75, 1e-4);
  EXPECT_NEAR(probe.channel.duty_cycle(), 0.75 / (w1 - w0), 1e-4);
}

// ---- end-to-end on the real model -----------------------------------------

ExperimentSpec probed_charging(double duration) {
  ExperimentSpec spec = charging_scenario(duration);
  spec.trace_interval = 0.01;
  spec.probes.push_back(ProbeSpec{"Vm", ProbeSpec::Kind::kNodeVoltage, "Vm"});
  spec.probes.push_back(ProbeSpec{"Vi", ProbeSpec::Kind::kStateVariable, "supercap.Vi",
                                  0.0, 0.0, std::nullopt, false});
  spec.probes.push_back(ProbeSpec{"P_gen", ProbeSpec::Kind::kGeneratorPower});
  spec.probes.push_back(ProbeSpec{"P_store", ProbeSpec::Kind::kHarvestedPower});
  spec.probes.push_back(ProbeSpec{"E_store", ProbeSpec::Kind::kStoredEnergy});
  spec.probes.push_back(
      ProbeSpec{"Vm_pos", ProbeSpec::Kind::kNodeVoltage, "Vm", 0.0, 0.0, 0.0, false});
  return spec;
}

TEST(Probes, EveryKindProducesConsistentStatistics) {
  const ScenarioResult result = run_experiment(probed_charging(0.5));
  ASSERT_EQ(result.probes.size(), 6u);

  for (const ProbeResult& probe : result.probes) {
    EXPECT_GT(probe.samples, 10u) << probe.label;
    EXPECT_LE(probe.minimum, probe.mean) << probe.label;
    EXPECT_LE(probe.mean, probe.maximum) << probe.label;
    EXPECT_GE(probe.rms, 0.0) << probe.label;
  }

  // Recorded probes carry columns aligned with the Vc trace.
  EXPECT_EQ(result.probes[0].trace.size(), result.time.size());
  EXPECT_TRUE(result.probes[0].recorded);
  EXPECT_FALSE(result.probes[1].recorded);  // record = false
  EXPECT_TRUE(result.probes[1].trace.empty());

  // The AC input sees both polarities; the stored energy only grows from a
  // discharged start.
  const ProbeResult& vm = result.probes[0];
  EXPECT_LT(vm.minimum, 0.0);
  EXPECT_GT(vm.maximum, 0.0);
  const ProbeResult& energy = result.probes[4];
  EXPECT_GE(energy.minimum, 0.0);
  EXPECT_GT(energy.final_value, 0.0);
  EXPECT_GE(energy.maximum, energy.final_value);

  // Threshold statistics: the AC waveform spends about half its time above
  // zero and crosses upward roughly once per excitation period (70 Hz).
  const ProbeResult& duty = result.probes[5];
  ASSERT_TRUE(duty.duty_cycle.has_value());
  ASSERT_TRUE(duty.crossings.has_value());
  EXPECT_NEAR(*duty.duty_cycle, 0.5, 0.1);
  EXPECT_NEAR(static_cast<double>(*duty.crossings), 35.0, 5.0);

  // No-threshold probes report no threshold statistics.
  EXPECT_FALSE(vm.duty_cycle.has_value());
  EXPECT_THROW((void)probe_statistic(vm, "duty_cycle"), ModelError);
  EXPECT_THROW((void)probe_statistic(vm, "bogus"), ModelError);
  EXPECT_DOUBLE_EQ(probe_statistic(duty, "crossings"),
                   static_cast<double>(*duty.crossings));
  EXPECT_DOUBLE_EQ(probe_statistic(vm, "mean"), vm.mean);
  EXPECT_DOUBLE_EQ(probe_statistic(vm, "final"), vm.final_value);
}

/// The MCU duty probe samples the controller's state machine as a 0/1
/// indicator; the time-weighted mean is the occupancy fraction. A short
/// watchdog period plus a deliberate frequency mismatch forces the full
/// sleep -> measuring -> tuning cycle inside the simulated span.
TEST(Probes, McuStateDutyTracksControllerOccupancy) {
  ExperimentSpec spec = charging_scenario(1.5);
  spec.with_mcu = true;
  spec.trace_interval = 0.01;
  spec.excitation.initial_frequency_hz = 72.0;  // mismatched -> tuning burst
  spec.overrides.push_back(ParamOverride{"supercap.initial_voltage", 3.3});
  spec.overrides.push_back(ParamOverride{"mcu.watchdog_period", 0.3});
  spec.probes.push_back(ProbeSpec{"sleep_duty", ProbeSpec::Kind::kMcuState, "sleep"});
  spec.probes.push_back(ProbeSpec{"awake_duty", ProbeSpec::Kind::kMcuState, "awake", 0.0, 0.0,
                                  std::nullopt, false});
  spec.probes.push_back(ProbeSpec{"tuning_duty", ProbeSpec::Kind::kMcuState, "tuning", 0.0,
                                  0.0, std::nullopt, false});

  const ScenarioResult result = run_experiment(spec);
  ASSERT_EQ(result.probes.size(), 3u);
  const ProbeResult& sleep = result.probes[0];
  const ProbeResult& awake = result.probes[1];
  const ProbeResult& tuning = result.probes[2];

  // The sleep/awake indicators partition the run: their occupancies sum to
  // one, and every recorded sample is exactly 0 or 1.
  EXPECT_NEAR(sleep.mean + awake.mean, 1.0, 1e-9);
  for (const double v : sleep.trace) {
    EXPECT_TRUE(v == 0.0 || v == 1.0);
  }
  EXPECT_EQ(sleep.minimum, 0.0);
  EXPECT_EQ(sleep.maximum, 1.0);

  // The mismatch triggered at least one tuning burst, so the controller
  // spent real time tuning — but still slept most of the run.
  EXPECT_GT(tuning.mean, 0.0);
  EXPECT_LE(tuning.mean, awake.mean + 1e-12);
  EXPECT_GT(sleep.mean, 0.5);
  EXPECT_GT(result.mcu_events.size(), 0u);
}

TEST(Probes, McuStateProbeRejectsBadTargetAndMissingMcu) {
  ProbeSpec probe{"duty", ProbeSpec::Kind::kMcuState, "running"};
  EXPECT_THROW(probe.validate(), ModelError);
  probe.target.clear();
  EXPECT_THROW(probe.validate(), ModelError);
  probe.target = "awake";
  EXPECT_NO_THROW(probe.validate());

  // Installing on an experiment without the MCU fails loudly, naming the
  // missing switch.
  ExperimentSpec spec = charging_scenario(0.1);
  spec.with_mcu = false;
  spec.probes.push_back(probe);
  try {
    (void)run_experiment(spec);
    FAIL() << "expected ModelError for an mcu_state probe without an MCU";
  } catch (const ModelError& error) {
    EXPECT_NE(std::string(error.what()).find("with_mcu"), std::string::npos);
  }
}

// ---- actuator travel / energy probes ---------------------------------------

/// Analytic oracle for the actuator kinematics probes: command one move on
/// an otherwise quiet charging run and check the time-weighted statistics
/// against the closed-form trajectory — gap(t) is piecewise linear, the
/// speed indicator is a top-hat whose time integral is the commanded travel,
/// and the work rate integrates to the exact mechanical actuation energy
/// W = integral of Ft(g) dg over the travelled gap interval.
TEST(Probes, ActuatorProbesMatchCommandedMoveOracle) {
  ExperimentSpec spec = charging_scenario(0.4);
  spec.trace_interval = 0.01;
  spec.probes.push_back(ProbeSpec{"gap", ProbeSpec::Kind::kActuator, "gap"});
  spec.probes.push_back(ProbeSpec{"slew", ProbeSpec::Kind::kActuator, "speed", 0.0, 0.0,
                                  std::nullopt, false});
  spec.probes.push_back(ProbeSpec{"actuation", ProbeSpec::Kind::kActuator, "work", 0.0,
                                  0.0, std::nullopt, false});

  ehsim::sim::HarvesterSession session = make_experiment_session(spec);
  install_probes(session, spec.probes, spec.duration);
  const ehsim::harvester::LinearActuator& actuator = session.system().actuator();
  const ehsim::harvester::TuningMechanism& tuning = session.system().tuning();

  const double g0 = actuator.position(0.0);
  const double g1 = g0 - 0.2e-3;  // close the gap by 0.2 mm
  const double travel_time = std::abs(g1 - g0) / actuator.speed();
  ASSERT_LT(travel_time, spec.duration);  // the move completes mid-run

  session.system().actuator().command(g1, 0.0);
  session.initialise();
  session.run_until(spec.duration);
  const std::vector<ProbeResult> probes = collect_probe_results(session, spec.probes);
  ASSERT_EQ(probes.size(), 3u);
  const ProbeResult& gap = probes[0];
  const ProbeResult& slew = probes[1];
  const ProbeResult& work = probes[2];

  // Gap: arrives exactly at the target and stays; the time-weighted mean of
  // the piecewise-linear trajectory is the ramp average plus the dwell.
  EXPECT_DOUBLE_EQ(gap.final_value, g1);
  EXPECT_DOUBLE_EQ(gap.maximum, g0);
  EXPECT_DOUBLE_EQ(gap.minimum, g1);
  const double expected_mean =
      (0.5 * (g0 + g1) * travel_time + g1 * (spec.duration - travel_time)) / spec.duration;
  EXPECT_NEAR(gap.mean, expected_mean, 1e-6 * expected_mean);
  EXPECT_EQ(gap.trace.size(), gap.recorded ? gap.trace.size() : 0u);

  // Speed indicator: slew rate while moving, zero after arrival — its time
  // integral recovers the commanded travel distance.
  EXPECT_DOUBLE_EQ(slew.maximum, actuator.speed());
  EXPECT_DOUBLE_EQ(slew.minimum, 0.0);
  EXPECT_DOUBLE_EQ(slew.final_value, 0.0);
  EXPECT_NEAR(slew.mean * slew.covered_time, std::abs(g1 - g0),
              1e-3 * std::abs(g1 - g0));

  // Work rate: |Ft| x speed while moving; its time integral is the exact
  // line integral of the magnetic tuning force over the travelled interval
  // (Simpson quadrature as the independent oracle).
  const std::size_t n = 2000;  // even
  const double h = (g0 - g1) / static_cast<double>(n);
  double energy = tuning.force_at_gap(g1) + tuning.force_at_gap(g0);
  for (std::size_t i = 1; i < n; ++i) {
    const double g = g1 + h * static_cast<double>(i);
    energy += (i % 2 == 1 ? 4.0 : 2.0) * tuning.force_at_gap(g);
  }
  energy *= h / 3.0;
  EXPECT_GT(energy, 0.0);
  EXPECT_NEAR(work.mean * work.covered_time, energy, 1e-3 * energy);
  EXPECT_DOUBLE_EQ(work.final_value, 0.0);  // not moving at the end
}

TEST(Probes, ActuatorProbeValidatesTargets) {
  ProbeSpec probe{"travel", ProbeSpec::Kind::kActuator, "warp"};
  EXPECT_THROW(probe.validate(), ModelError);
  probe.target.clear();
  EXPECT_THROW(probe.validate(), ModelError);
  for (const char* target : {"gap", "speed", "work"}) {
    probe.target = target;
    EXPECT_NO_THROW(probe.validate()) << target;
  }

  // An idle actuator is a valid probe subject: constant gap, zero speed and
  // work — the probes must not demand MCU activity to be installable.
  ExperimentSpec spec = charging_scenario(0.05);
  spec.probes.push_back(ProbeSpec{"gap", ProbeSpec::Kind::kActuator, "gap"});
  spec.probes.push_back(ProbeSpec{"work", ProbeSpec::Kind::kActuator, "work", 0.0, 0.0,
                                  std::nullopt, false});
  const ScenarioResult result = run_experiment(spec);
  ASSERT_EQ(result.probes.size(), 2u);
  EXPECT_DOUBLE_EQ(result.probes[0].minimum, result.probes[0].maximum);  // no motion
  EXPECT_DOUBLE_EQ(result.probes[1].rms, 0.0);
  EXPECT_DOUBLE_EQ(result.probes[1].mean, 0.0);
}

/// Scenario 1's retune is a real actuator move driven by the MCU: the work
/// probe integrates to a strictly positive actuation energy and the gap
/// probe records the tuning travel, tying the probe kind to the paper's
/// tunable-harvester energy bookkeeping end to end.
TEST(Probes, ActuatorWorkTracksMcuRetune) {
  ExperimentSpec spec = scenario1();
  spec.duration = 80.0;  // past the 60 s shift and the retune burst
  spec.probes.push_back(ProbeSpec{"gap", ProbeSpec::Kind::kActuator, "gap"});
  spec.probes.push_back(ProbeSpec{"actuation", ProbeSpec::Kind::kActuator, "work", 0.0,
                                  0.0, std::nullopt, false});

  const ScenarioResult result = run_experiment(spec);
  ASSERT_EQ(result.probes.size(), 2u);
  const ProbeResult& gap = result.probes[0];
  const ProbeResult& work = result.probes[1];
  EXPECT_GT(result.mcu_events.size(), 0u);
  EXPECT_LT(gap.minimum, gap.maximum);  // the retune moved the magnets
  EXPECT_GT(work.mean * work.covered_time, 0.0);
  EXPECT_GE(work.minimum, 0.0);  // work rate is |Ft| x speed, never negative
}

TEST(Probes, DeterministicAcrossRunsAndBatchThreads) {
  const ExperimentSpec spec = probed_charging(0.3);
  const ScenarioResult serial = run_experiment(spec);

  const std::vector<ScenarioJob> jobs(2, ScenarioJob{spec, std::nullopt});
  const auto parallel = run_scenario_batch(jobs, 2);
  ASSERT_EQ(parallel.size(), 2u);
  for (const ScenarioResult& result : parallel) {
    ASSERT_EQ(result.probes.size(), serial.probes.size());
    for (std::size_t i = 0; i < serial.probes.size(); ++i) {
      const ProbeResult& a = serial.probes[i];
      const ProbeResult& b = result.probes[i];
      EXPECT_EQ(a.samples, b.samples) << a.label;
      EXPECT_EQ(a.mean, b.mean) << a.label;  // bit-identical
      EXPECT_EQ(a.rms, b.rms) << a.label;
      EXPECT_EQ(a.final_value, b.final_value) << a.label;
      EXPECT_EQ(a.trace, b.trace) << a.label;
    }
  }
}

}  // namespace
