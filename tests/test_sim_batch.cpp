/// \file test_sim_batch.cpp
/// \brief Session lifecycle and BatchRunner determinism tests.
///
/// The contract under test: a parallel sweep produces results *bit-identical*
/// to the serial run of the same jobs, in job order, because every job owns
/// its model/engine/trace and slot i is written only by job i.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/linearised_solver.hpp"
#include "experiments/scenarios.hpp"
#include "sim/batch_runner.hpp"
#include "sim/harvester_session.hpp"
#include "sim/session.hpp"
#include "support/test_blocks.hpp"

namespace {

using ehsim::ModelError;
using ehsim::core::LinearisedSolver;
using ehsim::core::SystemAssembler;
using ehsim::sim::BatchRunner;
using ehsim::sim::HarvesterSession;
using ehsim::sim::Session;
using ehsim::testing::CapacitorBlock;
using ehsim::testing::SourceResistorBlock;

// ---- BatchRunner ----------------------------------------------------------

TEST(BatchRunner, MapPreservesJobOrder) {
  BatchRunner runner(4);
  EXPECT_EQ(runner.thread_count(), 4u);
  // Earlier jobs sleep longer, so completion order inverts submission order;
  // the result vector must still be indexed by job.
  const auto results = runner.map<int>(16, [](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::milliseconds((16 - i) % 4));
    return static_cast<int>(i * i);
  });
  ASSERT_EQ(results.size(), 16u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i * i));
  }
}

TEST(BatchRunner, SerialRunnerExecutesInline) {
  BatchRunner runner(1);
  EXPECT_EQ(runner.thread_count(), 1u);
  std::vector<std::size_t> order;
  runner.for_each_index(5, [&order](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(BatchRunner, SerialRunnerDrainsBeforeRethrowLikeParallel) {
  // Error-case side effects must match the parallel path: every
  // non-throwing job runs, then the lowest-index exception surfaces.
  BatchRunner runner(1);
  std::vector<std::size_t> ran;
  try {
    runner.for_each_index(5, [&ran](std::size_t i) {
      if (i == 1) {
        throw std::runtime_error("one");
      }
      ran.push_back(i);
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "one");
  }
  EXPECT_EQ(ran, (std::vector<std::size_t>{0, 2, 3, 4}));
}

TEST(BatchRunner, LowestIndexExceptionWinsAfterDrain) {
  BatchRunner runner(4);
  std::atomic<int> completed{0};
  try {
    runner.for_each_index(8, [&completed](std::size_t i) {
      if (i == 5) {
        throw std::runtime_error("five");
      }
      if (i == 2) {
        throw std::runtime_error("two");
      }
      ++completed;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "two");  // lowest job index
  }
  EXPECT_EQ(completed.load(), 6);  // every non-throwing job still ran
  // The pool survives a failed batch.
  const auto results = runner.map<int>(3, [](std::size_t i) { return static_cast<int>(i); });
  EXPECT_EQ(results, (std::vector<int>{0, 1, 2}));
}

TEST(BatchRunner, EmptyBatchIsANoOp) {
  BatchRunner runner(2);
  runner.for_each_index(0, [](std::size_t) { FAIL() << "no jobs expected"; });
}

// ---- parallel == serial on real scenario sweeps ---------------------------

TEST(BatchRunner, FourWayParallelSweepBitIdenticalToSerial) {
  using namespace ehsim::experiments;
  std::vector<ScenarioJob> jobs;
  for (const double v0 : {0.5, 1.5, 2.5, 3.3}) {
    ScenarioJob job;
    job.spec = charging_scenario(1.5);
    job.params = experiment_params(job.spec);
    job.params->supercap.initial_voltage = v0;
    jobs.push_back(std::move(job));
  }

  const auto serial = run_scenario_batch(jobs, 1);
  const auto parallel = run_scenario_batch(jobs, 4);

  ASSERT_EQ(serial.size(), jobs.size());
  ASSERT_EQ(parallel.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(serial[i].stats.steps, parallel[i].stats.steps) << "job " << i;
    EXPECT_EQ(serial[i].time, parallel[i].time) << "job " << i;
    EXPECT_EQ(serial[i].vc, parallel[i].vc) << "job " << i;  // bit-identical
    EXPECT_EQ(serial[i].final_vc, parallel[i].final_vc) << "job " << i;
    EXPECT_EQ(serial[i].power_mean, parallel[i].power_mean) << "job " << i;
  }
  // The sweep actually varied: different initial voltages, different traces.
  EXPECT_NE(parallel[0].final_vc, parallel[3].final_vc);
}

/// The default kernel never reports lockstep activity: plain per-job batches
/// keep their counters at zero, which is also what keeps the result JSON
/// (and every existing golden document) byte-identical.
TEST(BatchRunner, JobsKernelReportsNoLockstepActivity) {
  using namespace ehsim::experiments;
  std::vector<ScenarioJob> jobs(2, ScenarioJob{charging_scenario(0.3), std::nullopt});
  BatchStats stats;
  const auto results = run_scenario_batch(jobs, 2, &stats);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(stats.lockstep_groups, 0u);
  EXPECT_EQ(stats.shared_factorisations, 0u);
  EXPECT_EQ(stats.expm_segments, 0u);
  for (const ScenarioResult& result : results) {
    EXPECT_EQ(result.batch_kernel, BatchKernel::kJobs);
    EXPECT_EQ(result.lockstep_groups, 0u);
    EXPECT_EQ(result.shared_factorisations, 0u);
    EXPECT_EQ(result.expm_segments, 0u);
  }
}

/// Warm starts and the lockstep kernel compose: the seeds are computed the
/// same way as in the per-job path, and a batch of identical jobs stays
/// bit-identical to its per-job warm-started run.
TEST(BatchRunner, WarmStartComposesWithLockstepKernel) {
  using namespace ehsim::experiments;
  std::vector<ScenarioJob> jobs(3, ScenarioJob{charging_scenario(0.6), std::nullopt});

  BatchOptions warm_jobs;
  warm_jobs.threads = 1;
  warm_jobs.warm_start = true;
  BatchStats jobs_stats;
  const auto per_job = run_scenario_batch(jobs, warm_jobs, &jobs_stats);

  BatchOptions warm_lockstep = warm_jobs;
  warm_lockstep.batch_kernel = BatchKernel::kLockstep;
  BatchStats lockstep_stats;
  const auto lockstep = run_scenario_batch(jobs, warm_lockstep, &lockstep_stats);

  ASSERT_EQ(per_job.size(), lockstep.size());
  EXPECT_EQ(jobs_stats.warm_start_hits, lockstep_stats.warm_start_hits);
  EXPECT_GT(lockstep_stats.shared_factorisations, 0u);
  for (std::size_t i = 0; i < per_job.size(); ++i) {
    EXPECT_EQ(per_job[i].stats.steps, lockstep[i].stats.steps) << "job " << i;
    EXPECT_EQ(per_job[i].vc, lockstep[i].vc) << "job " << i;  // bit-identical
    EXPECT_EQ(per_job[i].final_vc, lockstep[i].final_vc) << "job " << i;
    EXPECT_EQ(lockstep[i].batch_kernel, BatchKernel::kLockstep) << "job " << i;
  }
}

// ---- Session lifecycle ----------------------------------------------------

struct RcModel {
  SystemAssembler assembler;
  RcModel() {
    const auto source = assembler.add_block(
        std::make_unique<SourceResistorBlock>([](double) { return 1.0; }, 10.0));
    const auto cap = assembler.add_block(std::make_unique<CapacitorBlock>(0.05, 0.0));
    const auto v = assembler.net("V");
    const auto i = assembler.net("I");
    assembler.bind(source, 0, v);
    assembler.bind(source, 1, i);
    assembler.bind(cap, 0, v);
    assembler.bind(cap, 1, i);
    assembler.elaborate();
  }
};

TEST(Session, MatchesDirectSolverBitForBit) {
  RcModel direct;
  LinearisedSolver solver(direct.assembler);
  solver.initialise(0.0);
  solver.advance_to(1.0);

  RcModel managed;
  Session session(managed.assembler);
  session.run_until(1.0);  // auto-initialises at t = 0

  ASSERT_EQ(solver.state().size(), session.engine().state().size());
  EXPECT_EQ(solver.state()[0], session.engine().state()[0]);
  EXPECT_EQ(solver.stats().steps, session.stats().steps);
  EXPECT_EQ(solver.stats().jacobian_builds, session.stats().jacobian_builds);
}

TEST(Session, TraceAndObserversRecord) {
  RcModel model;
  Session session(model.assembler);
  auto& trace = session.enable_trace(0.01);
  trace.probe_state("cap.vc");
  std::size_t observed = 0;
  session.add_observer(
      [&observed](double, std::span<const double>, std::span<const double>) { ++observed; });
  session.run_until(0.5);
  EXPECT_GT(trace.size(), 10u);
  EXPECT_GT(observed, trace.size());  // observer sees every accepted point
  EXPECT_GT(session.cpu_seconds(), 0.0);
}

TEST(Session, LifecycleMisuseThrows) {
  RcModel model;
  Session session(model.assembler);
  EXPECT_THROW((void)session.trace(), ModelError);
  session.initialise(0.0);
  EXPECT_THROW(session.initialise(0.0), ModelError);
  EXPECT_THROW(session.on_initialised([](ehsim::core::AnalogEngine&) {}), ModelError);
  session.enable_trace(0.01);
  EXPECT_THROW(session.enable_trace(0.01), ModelError);
}

TEST(Session, ReadyHooksRunOnInitialise) {
  RcModel model;
  Session session(model.assembler);
  bool hook_ran = false;
  session.on_initialised([&hook_ran](ehsim::core::AnalogEngine& engine) {
    hook_ran = true;
    EXPECT_EQ(engine.time(), 0.25);
  });
  session.initialise(0.25);
  EXPECT_TRUE(hook_ran);
}

TEST(HarvesterSession, RunsTheFullModelWithMcu) {
  using namespace ehsim;
  const auto params =
      experiments::experiment_params(experiments::charging_scenario(1.0));
  HarvesterSession::Options options;
  options.with_mcu = true;
  HarvesterSession session(params, options);
  EXPECT_EQ(session.system().assembler().num_states(), 11u);
  session.run_until(0.5);
  EXPECT_GT(session.stats().steps, 0u);
  EXPECT_GT(session.session().sync_points(), 0u);  // MCU watchdog fired
}

TEST(HarvesterSession, BaselineEngineFactoryPlugsIn) {
  using namespace ehsim;
  HarvesterSession::Options options;
  options.mode = harvester::DeviceEvalMode::kExactShockley;
  options.engine_factory = [](core::SystemAssembler& system) {
    return experiments::make_engine(experiments::EngineKind::kSystemVision, system);
  };
  HarvesterSession session(harvester::HarvesterParams{}, options);
  session.run_until(0.01);
  EXPECT_GT(session.stats().newton_iterations, 0u);
}

}  // namespace
