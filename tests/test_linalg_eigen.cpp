/// \file test_linalg_eigen.cpp
/// \brief Tests for the QR eigensolver and polynomial root finder.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>
#include <random>

#include "linalg/eigen.hpp"

namespace {

using ehsim::linalg::eigenvalues;
using ehsim::linalg::Matrix;
using ehsim::linalg::polynomial_roots;
using ehsim::linalg::spectral_abscissa;
using ehsim::linalg::spectral_radius_exact;

/// Sort eigenvalues by (real, imag) for comparison.
std::vector<std::complex<double>> sorted(std::vector<std::complex<double>> v) {
  std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    if (a.real() != b.real()) {
      return a.real() < b.real();
    }
    return a.imag() < b.imag();
  });
  return v;
}

TEST(Eigen, DiagonalMatrix) {
  const Matrix a{{3.0, 0.0, 0.0}, {0.0, -1.0, 0.0}, {0.0, 0.0, 7.0}};
  const auto eig = sorted(eigenvalues(a));
  ASSERT_EQ(eig.size(), 3u);
  EXPECT_NEAR(eig[0].real(), -1.0, 1e-10);
  EXPECT_NEAR(eig[1].real(), 3.0, 1e-10);
  EXPECT_NEAR(eig[2].real(), 7.0, 1e-10);
  for (const auto& l : eig) {
    EXPECT_NEAR(l.imag(), 0.0, 1e-10);
  }
}

TEST(Eigen, UpperTriangularEigenvaluesAreDiagonal) {
  const Matrix a{{1.0, 5.0, -3.0}, {0.0, 2.0, 8.0}, {0.0, 0.0, 4.0}};
  const auto eig = sorted(eigenvalues(a));
  EXPECT_NEAR(eig[0].real(), 1.0, 1e-9);
  EXPECT_NEAR(eig[1].real(), 2.0, 1e-9);
  EXPECT_NEAR(eig[2].real(), 4.0, 1e-9);
}

TEST(Eigen, SymmetricKnownSpectrum) {
  const Matrix a{{2.0, 1.0}, {1.0, 2.0}};  // eigenvalues 1, 3
  const auto eig = sorted(eigenvalues(a));
  EXPECT_NEAR(eig[0].real(), 1.0, 1e-10);
  EXPECT_NEAR(eig[1].real(), 3.0, 1e-10);
}

TEST(Eigen, RotationGivesComplexPair) {
  const Matrix a{{0.0, -1.0}, {1.0, 0.0}};  // eigenvalues +-i
  const auto eig = sorted(eigenvalues(a));
  ASSERT_EQ(eig.size(), 2u);
  EXPECT_NEAR(eig[0].real(), 0.0, 1e-10);
  EXPECT_NEAR(std::abs(eig[0].imag()), 1.0, 1e-10);
  EXPECT_NEAR(eig[0].imag(), -eig[1].imag(), 1e-12);
}

TEST(Eigen, DampedOscillatorCompanionForm) {
  // x'' + 2 zeta w x' + w^2 x = 0, w = 440, zeta = 0.01: lambda =
  // -zeta w +- i w sqrt(1 - zeta^2). This is the harvester's mechanical mode.
  const double w = 440.0;
  const double zeta = 0.01;
  const Matrix a{{0.0, 1.0}, {-w * w, -2.0 * zeta * w}};
  const auto eig = eigenvalues(a);
  ASSERT_EQ(eig.size(), 2u);
  for (const auto& l : eig) {
    EXPECT_NEAR(l.real(), -zeta * w, 1e-6 * w);
    EXPECT_NEAR(std::abs(l.imag()), w * std::sqrt(1.0 - zeta * zeta), 1e-6 * w);
  }
}

TEST(Eigen, SingularMatrixHasZeroEigenvalue) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};  // rank 1: eigenvalues 0, 5
  const auto eig = sorted(eigenvalues(a));
  EXPECT_NEAR(eig[0].real(), 0.0, 1e-10);
  EXPECT_NEAR(eig[1].real(), 5.0, 1e-10);
}

TEST(Eigen, SpectralRadiusExact) {
  const Matrix a{{0.0, -2.0}, {2.0, 0.0}};
  EXPECT_NEAR(spectral_radius_exact(a), 2.0, 1e-10);
}

TEST(Eigen, SpectralAbscissaOfStableSystem) {
  const Matrix a{{-1.0, 100.0}, {0.0, -2.0}};
  EXPECT_NEAR(spectral_abscissa(a), -1.0, 1e-9);
}

TEST(Eigen, OneByOne) {
  Matrix a(1, 1);
  a(0, 0) = -42.0;
  const auto eig = eigenvalues(a);
  ASSERT_EQ(eig.size(), 1u);
  EXPECT_DOUBLE_EQ(eig[0].real(), -42.0);
}

TEST(Eigen, WideMagnitudeSpread) {
  // Time constants spanning six orders of magnitude, as in the harvester's
  // eliminated system (balancing must keep the small ones accurate).
  Matrix a(4, 4);
  a(0, 0) = -1e-2;
  a(1, 1) = -1.0;
  a(2, 2) = -1e2;
  a(3, 3) = -1e4;
  a(0, 1) = 5.0;
  a(1, 2) = -3.0;
  a(2, 3) = 70.0;
  const auto eig = sorted(eigenvalues(a));
  EXPECT_NEAR(eig[0].real(), -1e4, 1e-4);
  EXPECT_NEAR(eig[1].real(), -1e2, 1e-7);
  EXPECT_NEAR(eig[2].real(), -1.0, 1e-9);
  EXPECT_NEAR(eig[3].real(), -1e-2, 1e-9);
}

/// Property: trace equals eigenvalue sum, for random matrices of many sizes.
class EigenTrace : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenTrace, TraceMatchesEigenvalueSum) {
  const std::size_t n = GetParam();
  std::mt19937 rng(99u + static_cast<unsigned>(n));
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  Matrix a(n, n);
  double trace = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      a(r, c) = dist(rng);
    }
    trace += a(r, r);
  }
  const auto eig = eigenvalues(a);
  ASSERT_EQ(eig.size(), n);
  std::complex<double> sum{0.0, 0.0};
  for (const auto& l : eig) {
    sum += l;
  }
  EXPECT_NEAR(sum.real(), trace, 1e-8 * std::max(1.0, std::abs(trace)));
  EXPECT_NEAR(sum.imag(), 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenTrace, ::testing::Values(2, 3, 4, 5, 6, 8, 11, 13, 16));

TEST(PolynomialRoots, Quadratic) {
  // z^2 - 3z + 2 = (z-1)(z-2)
  const auto roots = polynomial_roots({{2.0, 0.0}, {-3.0, 0.0}});
  ASSERT_EQ(roots.size(), 2u);
  double r1 = std::min(roots[0].real(), roots[1].real());
  double r2 = std::max(roots[0].real(), roots[1].real());
  EXPECT_NEAR(r1, 1.0, 1e-10);
  EXPECT_NEAR(r2, 2.0, 1e-10);
}

TEST(PolynomialRoots, ComplexPair) {
  // z^2 + 1 = 0
  const auto roots = polynomial_roots({{1.0, 0.0}, {0.0, 0.0}});
  ASSERT_EQ(roots.size(), 2u);
  for (const auto& r : roots) {
    EXPECT_NEAR(std::abs(r), 1.0, 1e-10);
    EXPECT_NEAR(r.real(), 0.0, 1e-10);
  }
}

TEST(PolynomialRoots, QuarticRootsOnUnitCircle) {
  // z^4 - 1 = 0: roots are the 4th roots of unity.
  const auto roots = polynomial_roots({{-1.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}});
  ASSERT_EQ(roots.size(), 4u);
  for (const auto& r : roots) {
    EXPECT_NEAR(std::abs(r), 1.0, 1e-9);
  }
}

TEST(PolynomialRoots, LinearAndEmpty) {
  const auto lin = polynomial_roots({{5.0, 0.0}});
  ASSERT_EQ(lin.size(), 1u);
  EXPECT_NEAR(lin[0].real(), -5.0, 1e-14);
  EXPECT_TRUE(polynomial_roots({}).empty());
}

}  // namespace
