/// \file test_experiment_spec.cpp
/// \brief Declarative experiment layer: parameter registry, legacy-shim
/// bit-identity, sweep expansion/execution, shared diode tables and the
/// empty-batch fix.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "experiments/scenarios.hpp"
#include "experiments/sweep.hpp"
#include "harvester/dickson_multiplier.hpp"
#include "pwl/table_cache.hpp"
#include "sim/harvester_session.hpp"

namespace {

using namespace ehsim::experiments;
using ehsim::ModelError;

// ---- parameter registry ---------------------------------------------------

TEST(ParamRegistry, GetSetRoundTrip) {
  ehsim::harvester::HarvesterParams params;
  EXPECT_DOUBLE_EQ(get_param(params, "generator.proof_mass"), 0.018);
  set_param(params, "generator.proof_mass", 0.02);
  EXPECT_DOUBLE_EQ(params.generator.proof_mass, 0.02);
  set_param(params, "multiplier.stages", 7.0);  // integer field set by rounding
  EXPECT_EQ(params.multiplier.stages, 7u);
  EXPECT_DOUBLE_EQ(get_param(params, "multiplier.stages"), 7.0);
}

TEST(ParamRegistry, UnknownPathThrowsWithName) {
  ehsim::harvester::HarvesterParams params;
  try {
    set_param(params, "generator.does_not_exist", 1.0);
    FAIL() << "expected ModelError";
  } catch (const ModelError& error) {
    EXPECT_NE(std::string(error.what()).find("generator.does_not_exist"), std::string::npos);
  }
}

TEST(ParamRegistry, PathListIsSortedAndCoversTheStructs) {
  const auto paths = param_paths();
  EXPECT_TRUE(std::is_sorted(paths.begin(), paths.end()));
  for (const char* expected :
       {"generator.flux_linkage", "supercap.initial_voltage", "mcu.watchdog_period",
        "vibration.acceleration_amplitude", "multiplier.diode.saturation_current"}) {
    EXPECT_NE(std::find(paths.begin(), paths.end(), expected), paths.end()) << expected;
  }
  // Every advertised path resolves.
  ehsim::harvester::HarvesterParams params;
  for (const auto& path : paths) {
    (void)get_param(params, path);
  }
}

TEST(ParamRegistry, OverridesApplyInOrder) {
  ehsim::harvester::HarvesterParams params;
  apply_overrides(params, {{"supercap.initial_voltage", 1.0},
                           {"supercap.initial_voltage", 2.5}});
  EXPECT_DOUBLE_EQ(params.supercap.initial_voltage, 2.5);
}

TEST(ExperimentParams, ConflictingOverridesAreRejectedLoudly) {
  ExperimentSpec spec = charging_scenario(1.0);
  spec.overrides.push_back(ParamOverride{"vibration.initial_frequency_hz", 65.0});
  EXPECT_THROW((void)experiment_params(spec), ModelError);  // excitation owns this

  ExperimentSpec gap = charging_scenario(1.0);
  gap.overrides.push_back(ParamOverride{"actuator.initial_gap", 3e-3});
  EXPECT_THROW((void)experiment_params(gap), ModelError);  // pre_tuned_hz owns this
  gap.pre_tuned_hz = 0.0;  // direct actuator positioning is fine
  EXPECT_DOUBLE_EQ(experiment_params(gap).actuator.initial_gap, 3e-3);

  ExperimentSpec amplitude = charging_scenario(1.0);
  amplitude.overrides.push_back(ParamOverride{"vibration.acceleration_amplitude", 0.4});
  // Allowed while the schedule does not pin the amplitude itself...
  EXPECT_DOUBLE_EQ(experiment_params(amplitude).vibration.acceleration_amplitude, 0.4);
  // ...but conflicts once it does.
  amplitude.excitation.initial_amplitude = 0.5;
  EXPECT_THROW((void)experiment_params(amplitude), ModelError);
}

// ---- legacy shim ----------------------------------------------------------

/// The seed one-shot description of scenario 1, written out by hand.
ScenarioSpec seed_scenario1() {
  ScenarioSpec spec;
  spec.name = "scenario1-1hz";
  spec.duration = 300.0;
  spec.pre_tuned_hz = 70.0;
  spec.initial_ambient_hz = 70.0;
  spec.shift_time = 60.0;
  spec.shifted_ambient_hz = 71.0;
  return spec;
}

TEST(LegacyShim, CannedSpecsLiftTheSeedScenarios) {
  EXPECT_EQ(to_experiment_spec(seed_scenario1()), scenario1());
  ScenarioSpec charging;
  charging.name = "supercap-charging";
  charging.duration = 10.0;
  charging.shift_time = 0.0;
  charging.with_mcu = false;
  EXPECT_EQ(to_experiment_spec(charging), charging_scenario(10.0));
}

TEST(LegacyShim, ScenarioParamsMatchesExperimentParams) {
  const auto legacy = scenario_params(seed_scenario1());
  const auto modern = experiment_params(scenario1());
  EXPECT_DOUBLE_EQ(legacy.actuator.initial_gap, modern.actuator.initial_gap);
  EXPECT_DOUBLE_EQ(legacy.vibration.initial_frequency_hz,
                   modern.vibration.initial_frequency_hz);
  EXPECT_DOUBLE_EQ(legacy.supercap.initial_voltage, modern.supercap.initial_voltage);
}

TEST(LegacyShim, RunScenarioBitIdenticalToScheduleDrivenSession) {
  // The shim (one-shot shift) and a hand-built session using the raw
  // VibrationProfile API must produce the same trace bits.
  ScenarioSpec legacy = seed_scenario1();
  legacy.duration = 4.0;
  legacy.shift_time = 1.5;
  legacy.with_mcu = false;
  legacy.trace_interval = 0.01;
  const ScenarioResult via_shim = run_scenario(legacy, EngineKind::kProposed);

  const auto params = scenario_params(legacy);
  ehsim::sim::HarvesterSession::Options options;
  options.mode = ehsim::harvester::DeviceEvalMode::kPwlTable;
  options.with_mcu = false;
  ehsim::sim::HarvesterSession session(params, options);
  session.system().vibration().set_frequency_at(1.5, 71.0);
  session.enable_trace(0.01).probe_net("Vc");
  session.run_until(4.0);

  EXPECT_EQ(via_shim.stats.steps, session.stats().steps);
  EXPECT_EQ(via_shim.time, session.session().trace().times());
  EXPECT_EQ(via_shim.vc, session.session().trace().column("Vc"));
}

// ---- sweep expansion ------------------------------------------------------

SweepSpec small_sweep() {
  SweepSpec sweep;
  sweep.base = charging_scenario(1.0);
  sweep.base.name = "grid";
  sweep.axes.push_back(SweepAxis{"supercap.initial_voltage", {0.5, 1.5, 2.5, 3.3}, {}});
  sweep.axes.push_back(SweepAxis{"multiplier.stages", {4.0, 5.0}, {}});
  return sweep;
}

TEST(SweepSpec, GridExpansionIsRowMajorAndUniquelyNamed) {
  const auto specs = small_sweep().expand();
  ASSERT_EQ(specs.size(), 8u);
  // Last axis fastest.
  EXPECT_EQ(specs[0].name, "grid/supercap.initial_voltage=0.5/multiplier.stages=4");
  EXPECT_EQ(specs[1].name, "grid/supercap.initial_voltage=0.5/multiplier.stages=5");
  EXPECT_EQ(specs[7].name, "grid/supercap.initial_voltage=3.3/multiplier.stages=5");
  // Overrides landed (appended after the base's initial_voltage=0 override).
  ehsim::harvester::HarvesterParams params = experiment_params(specs[7]);
  EXPECT_DOUBLE_EQ(params.supercap.initial_voltage, 3.3);
  EXPECT_EQ(params.multiplier.stages, 5u);
}

TEST(SweepSpec, ZipModeWalksAxesInLockStep) {
  SweepSpec sweep = small_sweep();
  sweep.mode = SweepSpec::Mode::kZip;
  sweep.axes[1].values = {3.0, 4.0, 5.0, 6.0};
  const auto specs = sweep.expand();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(experiment_params(specs[2]).multiplier.stages, 5u);
  EXPECT_DOUBLE_EQ(experiment_params(specs[2]).supercap.initial_voltage, 2.5);

  sweep.axes[1].values = {3.0};  // length mismatch
  EXPECT_THROW(sweep.expand(), ModelError);
}

TEST(SweepSpec, EngineAndEventAxesResolve) {
  SweepSpec sweep;
  sweep.base = scenario1();
  sweep.base.duration = 2.0;
  sweep.axes.push_back(
      SweepAxis{"excitation.event[0].frequency_hz", {69.0, 70.5, 72.0}, {}});
  sweep.axes.push_back(SweepAxis{{}, {}, {EngineKind::kProposed, EngineKind::kSystemCA}});
  const auto specs = sweep.expand();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_DOUBLE_EQ(specs[0].excitation.events[0].frequency_hz, 69.0);
  EXPECT_EQ(specs[0].engine, EngineKind::kProposed);
  EXPECT_EQ(specs[1].engine, EngineKind::kSystemCA);
  EXPECT_NE(specs[1].name.find("engine=systemca"), std::string::npos);

  SweepSpec bad = sweep;
  bad.axes[0].param = "excitation.event[5].frequency_hz";
  EXPECT_THROW(bad.expand(), ModelError);

  // An engine axis with a stale parameter path is a spec bug, not a silent
  // engine-only sweep.
  SweepSpec mixed = sweep;
  mixed.axes[1].param = "multiplier.stages";
  EXPECT_THROW(mixed.expand(), ModelError);
}

TEST(SweepSpec, NearbyAxisValuesGetDistinctJobNames) {
  SweepSpec sweep;
  sweep.base = charging_scenario(1.0);
  sweep.base.name = "fine";
  // Differ only in the 9th significant digit — the names (which double as
  // output file stems) must still be distinct.
  sweep.axes.push_back(
      SweepAxis{"multiplier.stage_capacitance", {1.23456781e-5, 1.23456789e-5}, {}});
  const auto specs = sweep.expand();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_NE(specs[0].name, specs[1].name);
}

TEST(SweepSpec, EightJobSweepParallelBitIdenticalToSerial) {
  const SweepSpec sweep = small_sweep();
  BatchStats serial_stats;
  BatchStats parallel_stats;
  const auto serial = run_sweep(sweep, 1, &serial_stats);
  const auto parallel = run_sweep(sweep, 4, &parallel_stats);
  ASSERT_EQ(serial.size(), 8u);
  ASSERT_EQ(parallel.size(), 8u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].scenario, parallel[i].scenario) << i;
    EXPECT_EQ(serial[i].stats.steps, parallel[i].stats.steps) << i;
    EXPECT_EQ(serial[i].time, parallel[i].time) << i;
    EXPECT_EQ(serial[i].vc, parallel[i].vc) << i;  // bit-identical
    EXPECT_EQ(serial[i].final_vc, parallel[i].final_vc) << i;
  }
  // The sweep varied: initial voltages differ across the first axis.
  EXPECT_NE(serial[0].final_vc, serial[6].final_vc);
  // All eight jobs share one diode-table structure; at most the first
  // builder in each batch misses.
  EXPECT_EQ(serial_stats.jobs, 8u);
  EXPECT_GE(serial_stats.shared_table_hits, 7u);
  EXPECT_GE(parallel_stats.shared_table_hits, 7u);
}

// ---- shared diode tables --------------------------------------------------

TEST(SharedDiodeTable, IdenticalStructureSharesOneInstance) {
  using ehsim::harvester::DeviceEvalMode;
  using ehsim::harvester::DicksonMultiplier;
  ehsim::harvester::MultiplierParams params;
  DicksonMultiplier first(params, DeviceEvalMode::kPwlTable);
  DicksonMultiplier second(params, DeviceEvalMode::kPwlTable);
  EXPECT_EQ(&first.table(), &second.table());
  EXPECT_TRUE(second.table_shared());

  // A different construction key gets its own table...
  ehsim::harvester::MultiplierParams finer = params;
  finer.table_segments = 1024;
  DicksonMultiplier third(finer, DeviceEvalMode::kPwlTable);
  EXPECT_NE(&first.table(), &third.table());

  // ...and opting out builds privately.
  ehsim::harvester::MultiplierParams isolated = params;
  isolated.share_diode_table = false;
  DicksonMultiplier fourth(isolated, DeviceEvalMode::kPwlTable);
  EXPECT_NE(&first.table(), &fourth.table());
  EXPECT_FALSE(fourth.table_shared());

  const auto stats = ehsim::pwl::diode_table_cache_stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.entries, 2u);
}

TEST(SharedDiodeTable, SharedRunBitIdenticalToPrivateTableRun) {
  ExperimentSpec spec = charging_scenario(1.0);
  spec.trace_interval = 0.01;
  const ScenarioResult shared = run_experiment(spec);

  auto params = experiment_params(spec);
  params.multiplier.share_diode_table = false;
  const ScenarioResult isolated = run_experiment(spec, &params);

  EXPECT_FALSE(isolated.shared_diode_table);
  EXPECT_EQ(shared.stats.steps, isolated.stats.steps);
  EXPECT_EQ(shared.time, isolated.time);
  EXPECT_EQ(shared.vc, isolated.vc);  // bit-identical
  EXPECT_EQ(shared.final_vc, isolated.final_vc);
}

// ---- batch edge cases -----------------------------------------------------

TEST(RunScenarioBatch, EmptyJobVectorReturnsEmptyWithoutThreadPool) {
  BatchStats stats;
  stats.jobs = 99;  // must be reset
  const auto results = run_scenario_batch({}, 8, &stats);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(stats.jobs, 0u);
  EXPECT_EQ(stats.shared_table_hits, 0u);
}

// ---- solver step-identity (LLE zero-drift on cache hits) ------------------

TEST(JacobianReuse, ReuseArmsAreStepIdentical) {
  std::uint64_t hashes[2];
  std::uint64_t steps[2];
  for (int arm = 0; arm < 2; ++arm) {
    const auto params = experiment_params(charging_scenario(0.5));
    ehsim::sim::HarvesterSession::Options options;
    options.solver.enable_jacobian_reuse = arm == 0;
    ehsim::sim::HarvesterSession session(params, options);
    std::uint64_t hash = 1469598103934665603ull;
    session.add_observer(
        [&hash](double t, std::span<const double>, std::span<const double>) {
          std::uint64_t bits;
          std::memcpy(&bits, &t, sizeof bits);
          hash ^= bits;
          hash *= 1099511628211ull;
        });
    session.run_until(0.5);
    hashes[arm] = hash;
    steps[arm] = session.stats().steps;
  }
  EXPECT_EQ(steps[0], steps[1]);
  EXPECT_EQ(hashes[0], hashes[1]);  // every accepted step time, bit for bit
}

}  // namespace
