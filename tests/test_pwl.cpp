/// \file test_pwl.cpp
/// \brief Piecewise-linear table and diode linearisation tests (paper §III-B).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "pwl/diode_table.hpp"
#include "pwl/pwl_table.hpp"

namespace {

using ehsim::ModelError;
using ehsim::pwl::diode_conductance;
using ehsim::pwl::diode_current;
using ehsim::pwl::DiodeParams;
using ehsim::pwl::DiodeTable;
using ehsim::pwl::limit_junction_voltage;
using ehsim::pwl::PwlTable;
using ehsim::pwl::voltage_at_conductance;

TEST(PwlTable, ExactAtBreakpoints) {
  const PwlTable table([](double x) { return x * x; }, 0.0, 4.0, 8);
  for (int i = 0; i <= 8; ++i) {
    const double x = 0.5 * i;
    EXPECT_NEAR(table.value(x), x * x, 1e-12) << "x=" << x;
  }
}

TEST(PwlTable, LinearFunctionReproducedExactly) {
  const PwlTable table([](double x) { return 3.0 * x - 2.0; }, -1.0, 1.0, 4);
  EXPECT_NEAR(table.value(0.3), 3.0 * 0.3 - 2.0, 1e-12);
  EXPECT_NEAR(table.slope(0.3), 3.0, 1e-12);
}

TEST(PwlTable, BoundaryExtrapolationIsLinear) {
  const PwlTable table([](double x) { return x * x; }, 0.0, 1.0, 2);
  // Below x_min: first segment extended; slope of [0, 0.5] chord is 0.5.
  EXPECT_NEAR(table.value(-1.0), 0.0 + 0.5 * (-1.0), 1e-12);
  // Above x_max: last segment slope is (1 - 0.25)/0.5 = 1.5.
  EXPECT_NEAR(table.value(2.0), 1.0 + 1.5 * 1.0, 1e-12);
}

TEST(PwlTable, AffineFormConsistent) {
  const PwlTable table([](double x) { return std::sin(x); }, 0.0, 3.0, 32);
  const double x = 1.234;
  const auto affine = table.affine(x);
  EXPECT_NEAR(affine.slope * x + affine.intercept, table.value(x), 1e-14);
  EXPECT_DOUBLE_EQ(affine.slope, table.slope(x));
}

TEST(PwlTable, ErrorShrinksQuadraticallyWithSegments) {
  // Chord interpolation error is O(dx^2): 4x the segments -> ~16x smaller.
  const auto fn = [](double x) { return std::exp(x); };
  const PwlTable coarse(fn, 0.0, 1.0, 16);
  const PwlTable fine(fn, 0.0, 1.0, 64);
  const double e_coarse = coarse.max_error_against(fn);
  const double e_fine = fine.max_error_against(fn);
  EXPECT_GT(e_coarse / e_fine, 10.0);
  EXPECT_LT(e_coarse / e_fine, 25.0);
}

TEST(PwlTable, InvalidConstruction) {
  EXPECT_THROW(PwlTable(nullptr, 0.0, 1.0, 4), ModelError);
  EXPECT_THROW(PwlTable([](double x) { return x; }, 1.0, 0.0, 4), ModelError);
  EXPECT_THROW(PwlTable([](double x) { return x; }, 0.0, 1.0, 0), ModelError);
  EXPECT_THROW(PwlTable(std::vector<double>{1.0}, 0.0, 1.0), ModelError);
}

TEST(PwlTable, ExplicitBreakpointConstructor) {
  const PwlTable table(std::vector<double>{0.0, 1.0, 4.0}, 0.0, 2.0);
  EXPECT_EQ(table.segments(), 2u);
  EXPECT_NEAR(table.value(0.5), 0.5, 1e-14);
  EXPECT_NEAR(table.value(1.5), 2.5, 1e-14);
}

TEST(Diode, ShockleyCurrentAndConductanceConsistent) {
  const DiodeParams params;
  const double vd = 0.25;
  const double dv = 1e-7;
  const double numeric_g =
      (diode_current(params, vd + dv) - diode_current(params, vd - dv)) / (2.0 * dv);
  EXPECT_NEAR(diode_conductance(params, vd), numeric_g, 1e-6 * numeric_g + 1e-15);
}

TEST(Diode, ReverseSaturation) {
  const DiodeParams params;
  // Far reverse bias: current ~ -Is + g_min * vd.
  const double i = diode_current(params, -2.0);
  EXPECT_NEAR(i, -params.saturation_current + params.g_min * -2.0,
              1e-3 * params.saturation_current);
}

TEST(Diode, VoltageAtConductanceInvertsConductance) {
  const DiodeParams params;
  const double g_target = 0.005;
  const double v = voltage_at_conductance(params, g_target);
  EXPECT_NEAR(diode_conductance(params, v), g_target, 1e-9);
}

TEST(Diode, JunctionLimitingPassesSmallSteps) {
  const DiodeParams params;
  EXPECT_DOUBLE_EQ(limit_junction_voltage(params, 0.2, 0.19), 0.2);
}

TEST(Diode, JunctionLimitingClampsOvershoot) {
  const DiodeParams params;
  const double limited = limit_junction_voltage(params, 5.0, 0.3);
  EXPECT_LT(limited, 1.0);  // exponential overflow averted
  EXPECT_GT(limited, 0.3);  // still moves forward
}

TEST(DiodeTable, CompanionMatchesShockleyAtOperatingPoints) {
  const DiodeParams params;
  const DiodeTable table(params, 4096, -1.0, 0.005);
  // Probe inside the tabulated domain (it ends where G reaches g_max,
  // ~0.18 V for these parameters; beyond it the device is deliberately
  // ohmic — see ConductanceClampBoundsSlope).
  for (double vd : {-0.5, -0.1, 0.0, 0.05, 0.1, 0.15}) {
    const auto companion = table.conductance_and_source(vd);
    const double i_lin = companion.slope * vd + companion.intercept;
    EXPECT_NEAR(i_lin, diode_current(params, vd), 5e-7) << "vd=" << vd;
  }
}

TEST(DiodeTable, ConductanceClampBoundsSlope) {
  const DiodeParams params;
  const double g_max = 0.005;
  const DiodeTable table(params, 512, -1.0, g_max);
  // Beyond the table the device continues ohmically with a bounded slope —
  // the property that keeps the Eq. 7 stability step practical.
  const auto companion = table.conductance_and_source(2.0);
  EXPECT_LE(companion.slope, g_max * 1.2);
}

TEST(DiodeTable, ErrorDecreasesWithGranularity) {
  // Paper: "the granularity of the piece-wise linear models can be
  // arbitrarily fine since the size of the look-up tables does not affect
  // the simulation speed."
  const DiodeParams params;
  const DiodeTable coarse(params, 64);
  const DiodeTable fine(params, 1024);
  EXPECT_GT(coarse.max_table_error(), fine.max_table_error() * 50.0);
}

TEST(DiodeTable, InvalidConstruction) {
  const DiodeParams params;
  EXPECT_THROW(DiodeTable(params, 0), ModelError);
  EXPECT_THROW((void)voltage_at_conductance(params, 0.0), ModelError);
}

/// Property sweep: the PWL companion current is continuous across segment
/// boundaries (chord construction), which is what keeps the AB derivative
/// history usable across segment changes.
class DiodeTableContinuity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DiodeTableContinuity, CurrentContinuousAcrossBreakpoints) {
  const DiodeParams params;
  const std::size_t segments = GetParam();
  const DiodeTable table(params, segments);
  const double v0 = -1.0;
  const double dx = (table.v_max() - v0) / static_cast<double>(segments);
  for (std::size_t k = 1; k < segments; ++k) {
    const double vb = v0 + dx * static_cast<double>(k);
    const double left = table.current(vb - 1e-12);
    const double right = table.current(vb + 1e-12);
    EXPECT_NEAR(left, right, 1e-9 + 1e-6 * std::abs(left)) << "segments=" << segments;
  }
}

INSTANTIATE_TEST_SUITE_P(Granularities, DiodeTableContinuity,
                         ::testing::Values(16, 64, 256, 1024));

}  // namespace
