/// \file test_harvester_supercapacitor.cpp
/// \brief Supercapacitor + equivalent load tests (paper Eqs. 15-16).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/linearised_solver.hpp"
#include "harvester/supercapacitor.hpp"
#include "linalg/matrix.hpp"

namespace {

using ehsim::core::SystemAssembler;
using ehsim::harvester::load_mode_name;
using ehsim::harvester::load_resistance;
using ehsim::harvester::LoadMode;
using ehsim::harvester::LoadParams;
using ehsim::harvester::Supercapacitor;
using ehsim::harvester::SupercapacitorParams;
using ehsim::linalg::Matrix;
using ehsim::linalg::Vector;

SupercapacitorParams default_params() { return SupercapacitorParams{}; }

TEST(Load, Eq16Resistances) {
  const LoadParams p;
  EXPECT_DOUBLE_EQ(load_resistance(p, LoadMode::kSleep), 1.0e9);
  EXPECT_DOUBLE_EQ(load_resistance(p, LoadMode::kAwake), 33.0);
  EXPECT_DOUBLE_EQ(load_resistance(p, LoadMode::kTuning), 16.7);
  EXPECT_STREQ(load_mode_name(LoadMode::kSleep), "sleep");
  EXPECT_STREQ(load_mode_name(LoadMode::kTuning), "tuning");
}

TEST(Supercap, InitialStatePrecharged) {
  Supercapacitor cap(default_params(), LoadParams{});
  Vector x(3);
  cap.initial_state(x.span());
  EXPECT_DOUBLE_EQ(x[0], default_params().initial_voltage);
  EXPECT_DOUBLE_EQ(x[1], default_params().initial_voltage);
  EXPECT_DOUBLE_EQ(x[2], default_params().initial_voltage);
}

TEST(Supercap, LoadModeSwitchBumpsEpoch) {
  Supercapacitor cap(default_params(), LoadParams{});
  const auto e0 = cap.epoch();
  cap.set_load_mode(LoadMode::kAwake);
  EXPECT_EQ(cap.epoch(), e0 + 1);
  cap.set_load_mode(LoadMode::kAwake);  // no-op: same mode
  EXPECT_EQ(cap.epoch(), e0 + 1);
  EXPECT_DOUBLE_EQ(cap.load_resistance_now(), 33.0);
}

TEST(Supercap, JacobiansMatchFiniteDifferences) {
  SupercapacitorParams p = default_params();
  p.leakage_resistance = 5e4;
  Supercapacitor cap(p, LoadParams{});
  cap.set_load_mode(LoadMode::kAwake);
  Vector x{3.2, 3.0, 2.8};
  Vector y{3.4, 1e-4};
  Matrix jxx(3, 3), jxy(3, 2), jyx(1, 3), jyy(1, 2);
  cap.jacobians(0.0, x.span(), y.span(), jxx, jxy, jyx, jyy);

  Vector fx0(3), fy0(1), fx1(3), fy1(1);
  cap.eval(0.0, x.span(), y.span(), fx0.span(), fy0.span());
  const double eps = 1e-7;
  for (std::size_t j = 0; j < 3; ++j) {
    Vector xp = x;
    xp[j] += eps;
    cap.eval(0.0, xp.span(), y.span(), fx1.span(), fy1.span());
    for (std::size_t i = 0; i < 3; ++i) {
      const double fd = (fx1[i] - fx0[i]) / eps;
      EXPECT_NEAR(jxx(i, j), fd, 1e-4 * std::max(1.0, std::abs(fd)));
    }
    EXPECT_NEAR(jyx(0, j), (fy1[0] - fy0[0]) / eps, 1e-5);
  }
  for (std::size_t j = 0; j < 2; ++j) {
    Vector yp = y;
    yp[j] += eps;
    cap.eval(0.0, x.span(), yp.span(), fx1.span(), fy1.span());
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_NEAR(jxy(i, j), (fx1[i] - fx0[i]) / eps, 1e-4);
    }
    EXPECT_NEAR(jyy(0, j), (fy1[0] - fy0[0]) / eps, 1e-5);
  }
}

TEST(Supercap, VoltageDependentCapacitanceEntersJacobian) {
  // With Ci1 > 0 the (Vi, Vi) Jacobian entry depends on the operating
  // point — the supercapacitor is the genuinely non-linear part of Eq. 15.
  SupercapacitorParams p = default_params();
  Supercapacitor cap(p, LoadParams{});
  Matrix jxx1(3, 3), jxy(3, 2), jyx(1, 3), jyy(1, 2);
  Matrix jxx2(3, 3);
  Vector y{3.45, 0.0};
  Vector x_low{1.0, 1.0, 1.0};
  Vector x_high{3.4, 3.4, 3.4};
  cap.jacobians(0.0, x_low.span(), y.span(), jxx1, jxy, jyx, jyy);
  cap.jacobians(0.0, x_high.span(), y.span(), jxx2, jxy, jyx, jyy);
  EXPECT_NE(jxx1(0, 0), jxx2(0, 0));
}

TEST(Supercap, StoredChargeIntegratesNonlinearBranch) {
  SupercapacitorParams p = default_params();
  Supercapacitor cap(p, LoadParams{});
  const Vector x{2.0, 2.0, 2.0};
  const double expected = p.ci0 * 2.0 + 0.5 * p.ci1 * 4.0 + p.cd * 2.0 + p.cl * 2.0;
  EXPECT_NEAR(cap.stored_charge(x.span()), expected, 1e-12);
}

/// Full self-discharge fixture: supercapacitor alone with a source block
/// representing an open circuit (Ic = 0 at the port).
struct DischargeFixture {
  SystemAssembler assembler;
  ehsim::core::BlockHandle cap_handle;

  class OpenPort final : public ehsim::core::AnalogBlock {
   public:
    OpenPort() : AnalogBlock("open", 0, 2, 1) {}
    void eval(double, std::span<const double>, std::span<const double> y,
              std::span<double>, std::span<double> fy) const override {
      fy[0] = y[1];
    }
    void jacobians(double, std::span<const double>, std::span<const double>,
                   Matrix&, Matrix&, Matrix&, Matrix& jyy) const override {
      jyy(0, 1) = 1.0;
    }
  };

  explicit DischargeFixture(const SupercapacitorParams& p, LoadMode mode) {
    cap_handle = assembler.add_block(std::make_unique<Supercapacitor>(p, LoadParams{}));
    const auto open = assembler.add_block(std::make_unique<OpenPort>());
    const auto vc = assembler.net("Vc");
    const auto ic = assembler.net("Ic");
    assembler.bind(cap_handle, Supercapacitor::kVc, vc);
    assembler.bind(cap_handle, Supercapacitor::kIc, ic);
    assembler.bind(open, 0, vc);
    assembler.bind(open, 1, ic);
    assembler.elaborate();
    assembler.block_as<Supercapacitor>(cap_handle).set_load_mode(mode);
  }
};

TEST(Supercap, SleepModeHoldsCharge) {
  DischargeFixture fx(default_params(), LoadMode::kSleep);
  ehsim::core::LinearisedSolver solver(fx.assembler);
  solver.initialise(0.0);
  solver.advance_to(10.0);
  // 1 GOhm across ~0.5 F: no visible droop within 10 s.
  EXPECT_NEAR(solver.state()[0], default_params().initial_voltage, 1e-4);
}

TEST(Supercap, TuningModeDischargesAtExpectedRate) {
  SupercapacitorParams p = default_params();
  DischargeFixture fx(p, LoadMode::kTuning);
  ehsim::core::LinearisedSolver solver(fx.assembler);
  solver.initialise(0.0);
  double t_prev = 0.0;
  double charge_drawn = 0.0;
  const auto vc = fx.assembler.find_net("Vc")->index;
  solver.add_observer([&](double t, std::span<const double>, std::span<const double> y) {
    charge_drawn += y[vc] / 16.7 * (t - t_prev);
    t_prev = t;
  });
  solver.advance_to(2.0);
  // The terminal voltage starts at ~3.45 V: expect ~0.2 A draw initially,
  // sagging as the cap discharges; the dip must be substantial.
  EXPECT_LT(solver.state()[0], p.initial_voltage - 0.3);
  // Conservation: branch charge lost equals load charge drawn.
  const auto& cap = fx.assembler.block_as<Supercapacitor>(fx.cap_handle);
  Vector x0{p.initial_voltage, p.initial_voltage, p.initial_voltage};
  const double q_lost = cap.stored_charge(x0.span()) - cap.stored_charge(solver.state());
  EXPECT_NEAR(q_lost, charge_drawn, 0.05 * charge_drawn);
}

TEST(Supercap, ChargeRedistributionAcrossBranches) {
  // Start with only the immediate branch charged: the delayed/long branches
  // must pull up toward equilibrium through Rd/Rl.
  SupercapacitorParams p = default_params();
  p.initial_voltage = 3.0;
  DischargeFixture fx(p, LoadMode::kSleep);
  // Overwrite initial state: Vi charged, Vd/Vl empty.
  ehsim::core::LinearisedSolver solver(fx.assembler);
  solver.initialise(0.0);
  // Manually perturb through a custom init: simulate from a non-equilibrium
  // start by overriding states via a short strong discharge of Vd/Vl only —
  // simpler: check the time constants instead.
  // Rd*Cd = 9 s: after 2 s the delayed branch has moved ~20% toward Vc.
  solver.advance_to(2.0);
  EXPECT_NEAR(solver.state()[1], 3.0, 0.05);  // still near (equilibrium start)
}

TEST(Supercap, LeakageDrainsInSleep) {
  SupercapacitorParams leaky = default_params();
  leaky.leakage_resistance = 1e4;  // strong leak for test speed
  DischargeFixture fx(leaky, LoadMode::kSleep);
  ehsim::core::LinearisedSolver solver(fx.assembler);
  solver.initialise(0.0);
  solver.advance_to(50.0);
  EXPECT_LT(solver.state()[0], leaky.initial_voltage - 0.02);
}

TEST(Supercap, InvalidConstruction) {
  SupercapacitorParams bad = default_params();
  bad.ri = 0.0;
  EXPECT_THROW(Supercapacitor(bad, LoadParams{}), ehsim::ModelError);
  SupercapacitorParams bad2 = default_params();
  bad2.cd = -1.0;
  EXPECT_THROW(Supercapacitor(bad2, LoadParams{}), ehsim::ModelError);
}

TEST(Supercap, StateAndTerminalNames) {
  Supercapacitor cap(default_params(), LoadParams{});
  EXPECT_EQ(cap.state_name(0), "Vi");
  EXPECT_EQ(cap.state_name(1), "Vd");
  EXPECT_EQ(cap.state_name(2), "Vl");
  EXPECT_EQ(cap.terminal_name(0), "Vc");
  EXPECT_EQ(cap.terminal_name(1), "Ic");
}

}  // namespace
