/// \file test_lockstep_batch.cpp
/// \brief Lockstep SoA batch kernel: exactness, divergence and expm bounds.
///
/// The contract under test (sim/lockstep_batch.hpp, docs/spec_format.md):
///  * a batch of bitwise-identical jobs marches bit-for-bit like the per-job
///    path, and so does the shared prefix of sweep points that differ only
///    in excitation events after t = 0;
///  * once members diverge, shared linearisations keep every result within
///    the documented io::compare tolerances of its per-job reference;
///  * lockstep_expm stays within the same bounds while taking exact
///    matrix-exponential stretches;
///  * the march is serial, so results are identical for any thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "core/linearised_solver.hpp"
#include "linalg/expm.hpp"
#include "linalg/matrix.hpp"
#include "experiments/scenarios.hpp"
#include "sim/harvester_session.hpp"
#include "sim/lockstep_batch.hpp"

namespace {

using namespace ehsim::experiments;
using ehsim::ModelError;
using ehsim::linalg::Matrix;

// ---- linalg::expm ---------------------------------------------------------

TEST(Expm, IdentityAndDiagonal) {
  Matrix zero(3, 3);
  const Matrix ez = ehsim::linalg::expm(zero);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(ez(r, c), r == c ? 1.0 : 0.0, 1e-15);
    }
  }

  Matrix diag(2, 2);
  diag(0, 0) = -1.5;
  diag(1, 1) = 2.0;
  const Matrix ed = ehsim::linalg::expm(diag);
  EXPECT_NEAR(ed(0, 0), std::exp(-1.5), 1e-13);
  EXPECT_NEAR(ed(1, 1), std::exp(2.0), 1e-12);
  EXPECT_NEAR(ed(0, 1), 0.0, 1e-14);
  EXPECT_NEAR(ed(1, 0), 0.0, 1e-14);
}

TEST(Expm, RotationMatchesTrig) {
  // exp([[0,-w],[w,0]]) = [[cos w, -sin w],[sin w, cos w]] — the oscillator
  // propagation the lockstep expm path builds on (needs squaring: |w| > 1/2).
  const double w = 2.75;
  Matrix a(2, 2);
  a(0, 1) = -w;
  a(1, 0) = w;
  const Matrix e = ehsim::linalg::expm(a);
  EXPECT_NEAR(e(0, 0), std::cos(w), 1e-12);
  EXPECT_NEAR(e(0, 1), -std::sin(w), 1e-12);
  EXPECT_NEAR(e(1, 0), std::sin(w), 1e-12);
  EXPECT_NEAR(e(1, 1), std::cos(w), 1e-12);
}

TEST(Expm, DampedOscillatorMatchesClosedForm) {
  // exp(t*[[a,-b],[b,a]]) = e^{a t} R(b t).
  const double alpha = -0.4;
  const double beta = 1.9;
  Matrix m(2, 2);
  m(0, 0) = alpha;
  m(0, 1) = -beta;
  m(1, 0) = beta;
  m(1, 1) = alpha;
  const Matrix e = ehsim::linalg::expm(m);
  const double scale = std::exp(alpha);
  EXPECT_NEAR(e(0, 0), scale * std::cos(beta), 1e-12);
  EXPECT_NEAR(e(0, 1), -scale * std::sin(beta), 1e-12);
  EXPECT_NEAR(e(1, 0), scale * std::sin(beta), 1e-12);
  EXPECT_NEAR(e(1, 1), scale * std::cos(beta), 1e-12);
}

TEST(Expm, RejectsNonSquare) {
  EXPECT_THROW((void)ehsim::linalg::expm(Matrix(2, 3)), ModelError);
}

// ---- lockstep batch end-to-end --------------------------------------------

ExperimentSpec lockstep_spec(double duration) {
  ExperimentSpec spec;
  spec.name = "lockstep-test";
  spec.duration = duration;
  spec.pre_tuned_hz = 70.0;
  spec.excitation.initial_frequency_hz = 70.0;
  spec.with_mcu = true;
  spec.trace_interval = 0.05;
  spec.power_bin_width = 0.5;
  return spec;
}

std::vector<ScenarioResult> run_with_kernel(const std::vector<ScenarioJob>& jobs,
                                            BatchKernel kernel, BatchStats* stats = nullptr,
                                            std::size_t threads = 1) {
  BatchOptions options;
  options.threads = threads;
  options.batch_kernel = kernel;
  return run_scenario_batch(jobs, options, stats);
}

/// Largest |a-b| / max(1, |a|, |b|) over two traces of (nearly) equal
/// length; differing step sequences may decimate one extra sample.
double max_rel_error(const std::vector<double>& a, const std::vector<double>& b) {
  EXPECT_LE(a.size() > b.size() ? a.size() - b.size() : b.size() - a.size(), 1u);
  double worst = 0.0;
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    const double scale = std::max({1.0, std::abs(a[i]), std::abs(b[i])});
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  }
  return worst;
}

TEST(LockstepBatch, DuplicateBatchBitIdenticalToPerJob) {
  std::vector<ScenarioJob> jobs(4);
  for (auto& job : jobs) {
    job.spec = lockstep_spec(1.5);
    job.spec.excitation.step_frequency(0.75, 72.0);
  }

  BatchStats lockstep_stats;
  const auto per_job = run_with_kernel(jobs, BatchKernel::kJobs);
  const auto lockstep = run_with_kernel(jobs, BatchKernel::kLockstep, &lockstep_stats);

  ASSERT_EQ(per_job.size(), jobs.size());
  ASSERT_EQ(lockstep.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(per_job[i].stats.steps, lockstep[i].stats.steps) << "job " << i;
    EXPECT_EQ(per_job[i].time, lockstep[i].time) << "job " << i;
    EXPECT_EQ(per_job[i].vc, lockstep[i].vc) << "job " << i;  // bit-identical
    EXPECT_EQ(per_job[i].final_vc, lockstep[i].final_vc) << "job " << i;
    EXPECT_EQ(per_job[i].power_mean, lockstep[i].power_mean) << "job " << i;
    EXPECT_EQ(per_job[i].mcu_events.size(), lockstep[i].mcu_events.size()) << "job " << i;
  }
  // Followers rode the leader's refreshes instead of assembling their own.
  EXPECT_GT(lockstep_stats.shared_factorisations, 0u);
  EXPECT_EQ(lockstep_stats.expm_segments, 0u);
}

TEST(LockstepBatch, SingleJobBitIdenticalToPerJob) {
  std::vector<ScenarioJob> jobs(1);
  jobs[0].spec = lockstep_spec(1.0);

  const auto per_job = run_with_kernel(jobs, BatchKernel::kJobs);
  const auto lockstep = run_with_kernel(jobs, BatchKernel::kLockstep);
  ASSERT_EQ(lockstep.size(), 1u);
  EXPECT_EQ(per_job[0].stats.steps, lockstep[0].stats.steps);
  EXPECT_EQ(per_job[0].vc, lockstep[0].vc);
  EXPECT_EQ(per_job[0].final_vc, lockstep[0].final_vc);
}

TEST(LockstepBatch, SplitAndRemergeAcrossSegmentCrossing) {
  // Sweep points share the prefix [0, 1.0) and then step to different
  // frequencies: clones follow the leader exactly, peel off at t = 1.0 and
  // re-merge into signature groups afterwards.
  std::vector<ScenarioJob> jobs;
  for (const double hz : {69.0, 71.0, 73.0}) {
    ScenarioJob job;
    job.spec = lockstep_spec(2.0);
    job.spec.excitation.step_frequency(1.0, hz);
    jobs.push_back(std::move(job));
  }

  BatchStats stats;
  const auto per_job = run_with_kernel(jobs, BatchKernel::kJobs);
  const auto lockstep = run_with_kernel(jobs, BatchKernel::kLockstep, &stats);

  ASSERT_EQ(lockstep.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    // Identical prefix: before the divergence time every member still steps
    // exactly like its per-job self, so the decimated trace is bit-for-bit
    // equal there. Past the split the global step agreement changes the
    // step sequence, so only bounded error is promised.
    const std::size_t common = std::min(per_job[i].time.size(), lockstep[i].time.size());
    for (std::size_t k = 0; k < common; ++k) {
      if (per_job[i].time[k] >= 1.0 || lockstep[i].time[k] >= 1.0) {
        break;
      }
      EXPECT_EQ(per_job[i].time[k], lockstep[i].time[k]) << "job " << i << " sample " << k;
      EXPECT_EQ(per_job[i].vc[k], lockstep[i].vc[k]) << "job " << i << " t=" << per_job[i].time[k];
    }
    // After the split: bounded error against the per-job reference (the
    // documented compare tolerance for diverged lockstep batches). Vc is
    // slow, so comparing per decimated sample is meaningful even though the
    // sample times differ in their low bits.
    EXPECT_LT(max_rel_error(per_job[i].vc, lockstep[i].vc), 1e-3) << "job " << i;
    EXPECT_NEAR(per_job[i].final_vc, lockstep[i].final_vc,
                1e-3 * std::max(1.0, std::abs(per_job[i].final_vc)))
        << "job " << i;
  }
  EXPECT_GT(stats.shared_factorisations, 0u);
}

TEST(LockstepBatch, ExpmKernelStaysWithinBounds) {
  std::vector<ScenarioJob> jobs(3);
  for (auto& job : jobs) {
    job.spec = lockstep_spec(1.5);
  }
  // Distinct trace decimation must not break clone detection (observers are
  // per-member).
  jobs[1].spec.trace_interval = 0.05;

  BatchStats stats;
  const auto per_job = run_with_kernel(jobs, BatchKernel::kJobs);
  const auto expm = run_with_kernel(jobs, BatchKernel::kLockstepExpm, &stats);

  ASSERT_EQ(expm.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_LT(max_rel_error(per_job[i].vc, expm[i].vc), 1e-3) << "job " << i;
    EXPECT_NEAR(per_job[i].rms_power_before, expm[i].rms_power_before,
                1e-3 * std::max(1.0, std::abs(per_job[i].rms_power_before)))
        << "job " << i;
  }
  EXPECT_GT(stats.expm_segments, 0u) << "expm never engaged on a still, sinusoidal stretch";
}

TEST(LockstepBatch, DeterministicAcrossThreadCounts) {
  // The lockstep march is serial by construction; the threads option must
  // not change a single bit.
  std::vector<ScenarioJob> jobs;
  for (const double hz : {70.0, 74.0}) {
    ScenarioJob job;
    job.spec = lockstep_spec(1.0);
    job.spec.excitation.step_frequency(0.5, hz);
    jobs.push_back(std::move(job));
  }

  const auto t1 = run_with_kernel(jobs, BatchKernel::kLockstep, nullptr, 1);
  const auto t2 = run_with_kernel(jobs, BatchKernel::kLockstep, nullptr, 2);
  const auto t8 = run_with_kernel(jobs, BatchKernel::kLockstep, nullptr, 8);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(t1[i].vc, t2[i].vc) << "job " << i;
    EXPECT_EQ(t1[i].vc, t8[i].vc) << "job " << i;
    EXPECT_EQ(t1[i].stats.steps, t8[i].stats.steps) << "job " << i;
  }
}

TEST(LockstepBatch, MixedDurationBatchTerminatesAndStaysBounded) {
  // Regression: a spec.duration sweep axis retires the front member from the
  // live set first; the barrier clock must then advance from a member that is
  // still live, or the march freezes at the finished member's horizon and
  // never reaches the later horizons.
  std::vector<ScenarioJob> jobs;
  for (const double duration : {0.6, 1.0, 1.4}) {
    ScenarioJob job;
    job.spec = lockstep_spec(duration);
    jobs.push_back(std::move(job));
  }

  const auto per_job = run_with_kernel(jobs, BatchKernel::kJobs);
  const auto lockstep = run_with_kernel(jobs, BatchKernel::kLockstep);

  ASSERT_EQ(lockstep.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    // Durations differ, so members are not clones: only the documented
    // bounded error vs the per-job reference is promised.
    EXPECT_LT(max_rel_error(per_job[i].vc, lockstep[i].vc), 1e-3) << "job " << i;
    EXPECT_NEAR(per_job[i].final_vc, lockstep[i].final_vc,
                1e-3 * std::max(1.0, std::abs(per_job[i].final_vc)))
        << "job " << i;
  }
}

TEST(LockstepBatch, ReuseDisabledArmStepIdenticalToPerJob) {
  // Ablation A6 (enable_jacobian_reuse = false, LLE control on): a
  // signature-stable refresh still rebuilds the Jacobians, but must observe
  // zero drift exactly like the per-job refresh() — the drift observation
  // follows the signature verdict, not the rebuild decision. Regression for
  // the lockstep rebuild path hard-coding an unstable-signature observation.
  const auto params = experiment_params(charging_scenario(0.5));
  ehsim::sim::HarvesterSession::Options options;
  options.solver.enable_jacobian_reuse = false;

  ehsim::sim::HarvesterSession reference(params, options);
  reference.run_until(0.4);

  ehsim::sim::HarvesterSession a(params, options);
  ehsim::sim::HarvesterSession b(params, options);
  a.initialise();
  b.initialise();
  ehsim::sim::HarvesterSession* sessions[2] = {&a, &b};
  std::vector<ehsim::sim::LockstepMember> members(2);
  for (std::size_t i = 0; i < 2; ++i) {
    members[i].solver =
        dynamic_cast<ehsim::core::LinearisedSolver*>(&sessions[i]->engine());
    ASSERT_NE(members[i].solver, nullptr);
    members[i].t_end = 0.4;
    // Forbid all sharing (distinct classes, never adopt — the configuration
    // run_lockstep_batch derives for sole-class members): isolates the solo
    // rebuild path, which must stay exact.
    members[i].param_class = i;
    members[i].share_after = std::numeric_limits<double>::infinity();
  }
  ehsim::sim::LockstepBatch batch(std::move(members));
  batch.run();

  for (ehsim::sim::HarvesterSession* session : sessions) {
    EXPECT_EQ(reference.stats().steps, session->stats().steps);
    const auto expect_state = reference.state();
    const auto state = session->state();
    ASSERT_EQ(expect_state.size(), state.size());
    for (std::size_t k = 0; k < state.size(); ++k) {
      EXPECT_EQ(expect_state[k], state[k]) << "state " << k;  // bit-identical
    }
  }
}

TEST(LockstepBatch, ExpmDeclinesWhenDistinctCellsExceedCache) {
  // More distinct parameter classes than the expm cell cache holds: every
  // slot gets pinned by the stretch being assembled, so the kernel must
  // decline exact propagation and fall back to time-stepping (regression for
  // the eviction scan spinning forever hunting a free slot).
  std::vector<ScenarioJob> jobs(129);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].spec = lockstep_spec(0.1);
    jobs[i].spec.with_mcu = false;
    jobs[i].spec.overrides.push_back(
        {"load.sleep_ohms", 40000.0 + 50.0 * static_cast<double>(i)});
  }

  BatchStats stats;
  const auto results = run_with_kernel(jobs, BatchKernel::kLockstepExpm, &stats);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(std::isfinite(results[i].final_vc)) << "job " << i;
  }
  // The stretch needs a cell for every live member, so it can never open.
  EXPECT_EQ(stats.expm_segments, 0u);
}

TEST(LockstepBatch, BaselineEngineJobRejected) {
  std::vector<ScenarioJob> jobs(2);
  jobs[0].spec = lockstep_spec(0.5);
  jobs[1].spec = lockstep_spec(0.5);
  jobs[1].spec.engine = EngineKind::kPspice;

  BatchOptions options;
  options.batch_kernel = BatchKernel::kLockstep;
  EXPECT_THROW((void)run_scenario_batch(jobs, options, nullptr), ModelError);
}

TEST(LockstepBatch, KernelIdsRoundTrip) {
  for (const BatchKernel kernel :
       {BatchKernel::kJobs, BatchKernel::kLockstep, BatchKernel::kLockstepExpm}) {
    EXPECT_EQ(parse_batch_kernel(batch_kernel_id(kernel)), kernel);
  }
  EXPECT_THROW((void)parse_batch_kernel("simd"), ModelError);
}

}  // namespace
