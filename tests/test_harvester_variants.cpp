/// \file test_harvester_variants.cpp
/// \brief Piezoelectric and electrostatic front-end blocks (paper §V:
/// "a generic approach which can be applied to other types of
/// microgenerators").
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>

#include "core/linearised_solver.hpp"
#include "harvester/dickson_multiplier.hpp"
#include "harvester/electrostatic_generator.hpp"
#include "harvester/piezo_generator.hpp"
#include "harvester/supercapacitor.hpp"
#include "harvester/vibration_source.hpp"

namespace {

using namespace ehsim;
using harvester::DeviceEvalMode;
using harvester::DicksonMultiplier;
using harvester::ElectrostaticGenerator;
using harvester::ElectrostaticParams;
using harvester::PiezoGenerator;
using harvester::PiezoParams;
using harvester::VibrationParams;
using harvester::VibrationProfile;

VibrationProfile strong_vibration(double hz = 70.0) {
  VibrationParams params;
  params.acceleration_amplitude = 2.0;
  params.initial_frequency_hz = hz;
  return VibrationProfile(params);
}

template <typename Block>
void check_jacobians_by_finite_difference(const Block& block, std::size_t n,
                                          linalg::Vector x, linalg::Vector y) {
  linalg::Matrix jxx(n, n), jxy(n, 2), jyx(1, n), jyy(1, 2);
  block.jacobians(0.1, x.span(), y.span(), jxx, jxy, jyx, jyy);
  linalg::Vector fxp(n), fyp(1), fxm(n), fym(1);
  // Central differences with per-variable perturbation: states span enormous
  // magnitude ranges (the electrostatic charge is ~1e-10 C) and the block
  // equations have genuine curvature (q^2 terms), so one-sided differences
  // with a fixed epsilon would not validate to tight tolerances.
  auto eps_for = [](double v) { return std::max(1e-12, 1e-4 * std::abs(v)); };
  for (std::size_t j = 0; j < n; ++j) {
    const double eps = eps_for(x[j]);
    linalg::Vector xp = x;
    linalg::Vector xm = x;
    xp[j] += eps;
    xm[j] -= eps;
    block.eval(0.1, xp.span(), y.span(), fxp.span(), fyp.span());
    block.eval(0.1, xm.span(), y.span(), fxm.span(), fym.span());
    for (std::size_t i = 0; i < n; ++i) {
      const double fd = (fxp[i] - fxm[i]) / (2.0 * eps);
      EXPECT_NEAR(jxx(i, j), fd, 2e-3 * std::max(1.0, std::abs(fd))) << "dfx/dx " << i << j;
    }
    EXPECT_NEAR(jyx(0, j), (fyp[0] - fym[0]) / (2.0 * eps),
                2e-3 * std::max(1.0, std::abs(jyx(0, j))));
  }
  for (std::size_t j = 0; j < 2; ++j) {
    const double eps = std::max(1e-10, eps_for(y[j]));  // terminals are volt/amp scale
    linalg::Vector yp = y;
    linalg::Vector ym = y;
    yp[j] += eps;
    ym[j] -= eps;
    block.eval(0.1, x.span(), yp.span(), fxp.span(), fyp.span());
    block.eval(0.1, x.span(), ym.span(), fxm.span(), fym.span());
    for (std::size_t i = 0; i < n; ++i) {
      const double fd = (fxp[i] - fxm[i]) / (2.0 * eps);
      EXPECT_NEAR(jxy(i, j), fd, 2e-3 * std::max(1.0, std::abs(fd)));
    }
    EXPECT_NEAR(jyy(0, j), (fyp[0] - fym[0]) / (2.0 * eps),
                2e-3 * std::max(1.0, std::abs(jyy(0, j))));
  }
}

TEST(Piezo, Dimensions) {
  const auto vibration = strong_vibration();
  PiezoGenerator gen(PiezoParams{}, vibration);
  EXPECT_EQ(gen.num_states(), 3u);
  EXPECT_EQ(gen.num_terminals(), 2u);
  EXPECT_EQ(gen.num_algebraic(), 1u);
  EXPECT_EQ(gen.state_name(2), "vp");
}

TEST(Piezo, JacobiansMatchFiniteDifferences) {
  const auto vibration = strong_vibration();
  PiezoGenerator gen(PiezoParams{}, vibration);
  check_jacobians_by_finite_difference(gen, 3, linalg::Vector{1e-4, 0.02, 0.5},
                                       linalg::Vector{0.5, 1e-4});
}

TEST(Piezo, ConstantJacobianSignature) {
  const auto vibration = strong_vibration();
  PiezoGenerator gen(PiezoParams{}, vibration);
  const linalg::Vector xa{0.0, 0.0, 0.0};
  const linalg::Vector xb{1e-3, 0.1, 2.0};
  const linalg::Vector y{0.0, 0.0};
  EXPECT_EQ(gen.jacobian_signature(0.0, xa.span(), y.span()),
            gen.jacobian_signature(5.0, xb.span(), y.span()));
}

TEST(Piezo, OpenCircuitVoltageTracksDisplacement) {
  // With Im = 0, Cp vp' = theta z': vp = (theta/Cp) z (+ const). Drive at
  // resonance and check the proportionality at the end of a run.
  const auto vibration = strong_vibration();
  core::SystemAssembler assembler;
  PiezoParams params;
  const auto gen_handle =
      assembler.add_block(std::make_unique<PiezoGenerator>(params, vibration));
  class OpenBlock final : public core::AnalogBlock {
   public:
    OpenBlock() : AnalogBlock("open", 0, 2, 1) {}
    void eval(double, std::span<const double>, std::span<const double> y,
              std::span<double>, std::span<double> fy) const override {
      fy[0] = y[1];
    }
    void jacobians(double, std::span<const double>, std::span<const double>,
                   linalg::Matrix&, linalg::Matrix&, linalg::Matrix&,
                   linalg::Matrix& jyy) const override {
      jyy(0, 1) = 1.0;
    }
  };
  const auto open_handle = assembler.add_block(std::make_unique<OpenBlock>());
  const auto vm = assembler.net("Vm");
  const auto im = assembler.net("Im");
  assembler.bind(gen_handle, 0, vm);
  assembler.bind(gen_handle, 1, im);
  assembler.bind(open_handle, 0, vm);
  assembler.bind(open_handle, 1, im);
  assembler.elaborate();

  core::SolverConfig config;
  config.h_max = 5e-5;
  core::LinearisedSolver solver(assembler, config);
  solver.initialise(0.0);
  solver.advance_to(1.0);
  const double z = solver.state()[PiezoGenerator::kZ];
  const double vp = solver.state()[PiezoGenerator::kVp];
  EXPECT_NEAR(vp, params.force_factor / params.piezo_capacitance * z,
              0.05 * std::abs(vp) + 1e-3);
  EXPECT_GT(std::abs(vp), 0.1);  // the device actually generates voltage
}

TEST(Electrostatic, Dimensions) {
  const auto vibration = strong_vibration();
  ElectrostaticGenerator gen(ElectrostaticParams{}, vibration);
  EXPECT_EQ(gen.num_states(), 3u);
  EXPECT_EQ(gen.num_terminals(), 2u);
  EXPECT_EQ(gen.num_algebraic(), 1u);
  EXPECT_EQ(gen.state_name(2), "q");
}

TEST(Electrostatic, JacobiansMatchFiniteDifferences) {
  const auto vibration = strong_vibration();
  ElectrostaticParams params;
  ElectrostaticGenerator gen(params, vibration);
  const double q0 = params.nominal_capacitance() * params.bias_voltage;
  check_jacobians_by_finite_difference(gen, 3, linalg::Vector{5e-6, 0.01, q0},
                                       linalg::Vector{0.3, 1e-7});
}

TEST(Electrostatic, BiasEquilibriumIsConsistent) {
  const auto vibration = strong_vibration();
  ElectrostaticParams params;
  ElectrostaticGenerator gen(params, vibration);
  linalg::Vector x(3);
  gen.initial_state(x.span());
  // At the initial state with V = 0, I = 0 the port equation must balance.
  linalg::Vector y{0.0, 0.0};
  linalg::Vector fx(3), fy(1);
  gen.eval(0.0, x.span(), y.span(), fx.span(), fy.span());
  EXPECT_NEAR(fy[0], 0.0, 1e-9);
}

TEST(Variants, PiezoFrontEndChargesStorageThroughMultiplier) {
  // End-to-end generality: piezo -> Dickson -> supercap with the proposed
  // engine (the paper's claimed drop-in substitution).
  const auto vibration = strong_vibration();
  core::SystemAssembler assembler;
  PiezoParams gen_params;
  const auto gen =
      assembler.add_block(std::make_unique<PiezoGenerator>(gen_params, vibration));
  harvester::MultiplierParams mult_params;
  const auto mult = assembler.add_block(
      std::make_unique<DicksonMultiplier>(mult_params, DeviceEvalMode::kPwlTable));
  harvester::SupercapacitorParams cap_params;
  cap_params.initial_voltage = 0.5;
  const auto cap = assembler.add_block(
      std::make_unique<harvester::Supercapacitor>(cap_params, harvester::LoadParams{}));
  const auto vm = assembler.net("Vm");
  const auto im = assembler.net("Im");
  const auto vc = assembler.net("Vc");
  const auto ic = assembler.net("Ic");
  assembler.bind(gen, 0, vm);
  assembler.bind(gen, 1, im);
  assembler.bind(mult, DicksonMultiplier::kVm, vm);
  assembler.bind(mult, DicksonMultiplier::kIm, im);
  assembler.bind(mult, DicksonMultiplier::kVc, vc);
  assembler.bind(mult, DicksonMultiplier::kIc, ic);
  assembler.bind(cap, harvester::Supercapacitor::kVc, vc);
  assembler.bind(cap, harvester::Supercapacitor::kIc, ic);
  assembler.elaborate();
  EXPECT_EQ(assembler.num_states(), 3u + 6u + 3u);

  core::LinearisedSolver solver(assembler);
  solver.initialise(0.0);
  solver.advance_to(4.0);
  double charge = 0.0;
  double t_prev = solver.time();
  const std::size_t ic_i = assembler.net_index(ic);
  solver.add_observer([&](double t, std::span<const double>, std::span<const double> y) {
    charge += y[ic_i] * (t - t_prev);
    t_prev = t;
  });
  solver.advance_to(6.0);
  EXPECT_GT(charge / 2.0, 1e-7);  // net positive charging current
}

}  // namespace
