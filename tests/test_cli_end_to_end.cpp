/// \file test_cli_end_to_end.cpp
/// \brief Acceptance: `ehsim run examples/specs/scenario1.json` reproduces
/// scenario1() with a trace bit-identical to the run_scenario compatibility
/// shim.
///
/// The full 300 s scenario runs twice (once through the CLI binary, once
/// in-process through the legacy shim), so this is the slowest test in the
/// suite (~15 s); it is also the one that pins the whole spec -> JSON ->
/// CLI -> engine -> CSV pipeline bit-for-bit.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <set>
#include <sstream>
#include <string>

#include "experiments/optimise_spec.hpp"
#include "experiments/param_registry.hpp"
#include "experiments/probes.hpp"
#include "experiments/scenarios.hpp"
#include "experiments/sweep.hpp"
#include "io/json.hpp"
#include "io/spec_json.hpp"

namespace {

using namespace ehsim::experiments;

TEST(EhsimCli, Scenario1SpecBitIdenticalToCompatibilityShim) {
  const std::string spec_path =
      std::string(EHSIM_SOURCE_DIR) + "/examples/specs/scenario1.json";
  const std::filesystem::path out_dir =
      std::filesystem::temp_directory_path() / "ehsim_cli_scenario1";
  std::filesystem::remove_all(out_dir);

  const std::string command = std::string("\"") + EHSIM_CLI_PATH + "\" run \"" + spec_path +
                              "\" --out \"" + out_dir.string() + "\" --quiet";
  ASSERT_EQ(std::system(command.c_str()), 0) << command;

  // The legacy one-shot description of scenario 1 through the shim.
  ScenarioSpec legacy;
  legacy.name = "scenario1-1hz";
  legacy.duration = 300.0;
  legacy.pre_tuned_hz = 70.0;
  legacy.initial_ambient_hz = 70.0;
  legacy.shift_time = 60.0;
  legacy.shifted_ambient_hz = 71.0;
  const ScenarioResult shim = run_scenario(legacy, EngineKind::kProposed);

  // The CLI's CSV trace must equal the shim's, byte for byte.
  std::ostringstream expected_csv;
  ehsim::io::write_trace_csv(expected_csv, shim);
  const std::string actual_csv =
      ehsim::io::read_file((out_dir / "scenario1-1hz.trace.csv").string());
  EXPECT_EQ(expected_csv.str(), actual_csv);

  // And the summary must agree on the exact solver path and physics.
  const auto json = ehsim::io::JsonValue::parse(
      ehsim::io::read_file((out_dir / "scenario1-1hz.result.json").string()));
  EXPECT_EQ(json.at("stats").at("steps").as_number(),
            static_cast<double>(shim.stats.steps));
  EXPECT_EQ(json.at("final_vc").as_number(), shim.final_vc);
  EXPECT_EQ(json.at("final_resonance_hz").as_number(), shim.final_resonance_hz);
  EXPECT_EQ(json.at("mcu_events").as_array().size(), shim.mcu_events.size());

  std::filesystem::remove_all(out_dir);
}

/// `ehsim echo` must canonicalise all three spec types (it used to fall
/// through to the experiment member for optimise files).
TEST(EhsimCli, EchoCanonicalisesOptimiseSpecs) {
  const std::string spec_path =
      std::string(EHSIM_SOURCE_DIR) + "/examples/specs/scenario1_tuning.json";
  const std::filesystem::path echo_path =
      std::filesystem::temp_directory_path() / "ehsim_cli_echo_optimise.json";
  const std::string command = std::string("\"") + EHSIM_CLI_PATH + "\" echo \"" +
                              spec_path + "\" > \"" + echo_path.string() + "\"";
  ASSERT_EQ(std::system(command.c_str()), 0) << command;

  const auto file = ehsim::io::load_spec_file(spec_path);
  ASSERT_NE(file.get_if<ehsim::experiments::OptimiseSpec>(), nullptr);
  const auto echoed =
      ehsim::io::JsonValue::parse(ehsim::io::read_file(echo_path.string()));
  EXPECT_EQ(echoed, ehsim::io::to_json((*file.get_if<ehsim::experiments::OptimiseSpec>())));
  std::filesystem::remove(echo_path);
}

/// Acceptance: `ehsim optimise examples/specs/scenario1_tuning.json`
/// reproduces the in-process declarative driver bit-identically through the
/// CLI binary and the JSON result document (io numbers round-trip exactly
/// via to_chars / exact parse). Together with the hand-coded-loop test in
/// test_experiments_optimise this pins CLI == driver == C++ API.
TEST(EhsimCli, OptimiseSpecBitIdenticalToInProcessDriver) {
  const std::string spec_path =
      std::string(EHSIM_SOURCE_DIR) + "/examples/specs/scenario1_tuning.json";
  const std::filesystem::path out_dir =
      std::filesystem::temp_directory_path() / "ehsim_cli_optimise";
  std::filesystem::remove_all(out_dir);

  const std::string command = std::string("\"") + EHSIM_CLI_PATH + "\" optimise \"" +
                              spec_path + "\" --out \"" + out_dir.string() + "\" --quiet";
  ASSERT_EQ(std::system(command.c_str()), 0) << command;

  const auto file = ehsim::io::load_spec_file(spec_path);
  ASSERT_NE(file.get_if<ehsim::experiments::OptimiseSpec>(), nullptr);
  const ScenarioResult proof = run_experiment(file.get_if<ehsim::experiments::OptimiseSpec>()->base);
  ASSERT_EQ(proof.probes.size(), 1u);  // the spec's objective probe is live
  const OptimiseResult driver = ehsim::experiments::run_optimise((*file.get_if<ehsim::experiments::OptimiseSpec>()));

  const auto json = ehsim::io::JsonValue::parse(ehsim::io::read_file(
      (out_dir / (file.get_if<ehsim::experiments::OptimiseSpec>()->name + ".optimise.json")).string()));
  EXPECT_EQ(json.at("best").at("x").as_number(), driver.best.x);
  EXPECT_EQ(json.at("best").at("objective").as_number(), driver.best.value);
  EXPECT_EQ(json.at("best").at("evaluations").as_number(),
            static_cast<double>(driver.best.evaluations));
  const auto& evaluations = json.at("evaluations").as_array();
  ASSERT_EQ(evaluations.size(), driver.evaluations.size());
  for (std::size_t i = 0; i < evaluations.size(); ++i) {
    EXPECT_EQ(evaluations[i].at("x").as_number(), driver.evaluations[i].x) << i;
    EXPECT_EQ(evaluations[i].at("objective").as_number(), driver.evaluations[i].objective)
        << i;
  }
  EXPECT_EQ(json.at("best_run").at("final_vc").as_number(), driver.best_run.final_vc);
  EXPECT_EQ(json.at("best_run").at("stats").at("steps").as_number(),
            static_cast<double>(driver.best_run.stats.steps));

  std::filesystem::remove_all(out_dir);
}

/// Regression: `ehsim params` must track the spec-key sources of truth
/// automatically. Every addressable path/kind/statistic/key the C++ layer
/// exports — including the multi-variable optimise keys and the per-axis
/// `variables` entry keys — must appear verbatim in the output, so the CLI
/// listing and the parser's allowed sets can never drift apart.
TEST(EhsimCli, ParamsListsEverySpecKeySourceOfTruth) {
  const std::filesystem::path out_path =
      std::filesystem::temp_directory_path() / "ehsim_cli_params.txt";
  const std::string command =
      std::string("\"") + EHSIM_CLI_PATH + "\" params > \"" + out_path.string() + "\"";
  ASSERT_EQ(std::system(command.c_str()), 0) << command;

  std::set<std::string> lines;
  {
    std::istringstream in(ehsim::io::read_file(out_path.string()));
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t begin = line.find_first_not_of(' ');
      if (begin != std::string::npos) {
        lines.insert(line.substr(begin));
      }
    }
  }
  const auto expect_listed = [&lines](const std::vector<std::string>& keys,
                                      const char* what) {
    for (const std::string& key : keys) {
      EXPECT_TRUE(lines.count(key)) << what << " entry '" << key
                                    << "' missing from `ehsim params` output";
    }
  };
  expect_listed(param_paths(), "device parameter");
  expect_listed(spec_field_paths(), "spec field");
  expect_listed(probe_kind_ids(), "probe kind");
  expect_listed(probe_statistic_ids(), "probe statistic");
  expect_listed(optimise_spec_keys(), "optimise spec key");
  expect_listed(optimise_variable_keys(), "optimise variables-entry key");

  std::filesystem::remove(out_path);
}

/// Exit-code hygiene: an unknown subcommand must fail with a nonzero status
/// and emit a single-line machine-parseable JSON error on stderr naming the
/// offending command — scripts driving the CLI get a structured failure,
/// not just prose.
TEST(EhsimCli, UnknownCommandEmitsSingleLineJsonErrorAndNonzeroStatus) {
  const std::filesystem::path err_path =
      std::filesystem::temp_directory_path() / "ehsim_cli_unknown_cmd.txt";
  const std::string command = std::string("\"") + EHSIM_CLI_PATH + "\" frobnicate 2> \"" +
                              err_path.string() + "\"";
  EXPECT_NE(std::system(command.c_str()), 0) << command;

  std::istringstream err(ehsim::io::read_file(err_path.string()));
  std::string first_line;
  ASSERT_TRUE(static_cast<bool>(std::getline(err, first_line)));
  const auto json = ehsim::io::JsonValue::parse(first_line);  // one valid JSON line
  EXPECT_EQ(json.at("error").as_string(), "unknown command");
  EXPECT_EQ(json.at("command").as_string(), "frobnicate");
  EXPECT_NE(json.at("expected").as_string().find("serve"), std::string::npos);

  std::filesystem::remove(err_path);
}

/// The serve daemon end to end through the binary: a malformed envelope gets
/// a per-job error event naming the bad key while the session keeps serving
/// and still exits 0 (protocol errors are responses, not crashes).
TEST(EhsimCli, ServeScriptSurvivesMalformedEnvelope) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "ehsim_cli_serve";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::filesystem::path script = dir / "script.ndjson";
  const std::filesystem::path out_path = dir / "events.ndjson";
  ehsim::io::write_file(script.string(),
                        "{\"id\": 1, \"type\": \"run\", \"speck\": {}}\n"
                        "{\"id\": 2, \"type\": \"stats\"}\n"
                        "{\"id\": 3, \"type\": \"shutdown\"}\n");

  const std::string command = std::string("\"") + EHSIM_CLI_PATH + "\" serve --script \"" +
                              script.string() + "\" > \"" + out_path.string() + "\"";
  ASSERT_EQ(std::system(command.c_str()), 0) << command;

  bool saw_error = false;
  bool saw_stats = false;
  bool saw_shutdown = false;
  std::istringstream events(ehsim::io::read_file(out_path.string()));
  std::string line;
  while (std::getline(events, line)) {
    const auto event = ehsim::io::JsonValue::parse(line);
    const std::string& kind = event.at("event").as_string();
    if (kind == "error") {
      saw_error = true;
      EXPECT_EQ(event.at("key").as_string(), "speck");
      EXPECT_EQ(event.at("id").as_number(), 1.0);
    } else if (kind == "stats") {
      saw_stats = true;
      EXPECT_EQ(event.at("requests").at("errors").as_number(), 1.0);
    } else if (kind == "shutdown") {
      saw_shutdown = true;
    }
  }
  EXPECT_TRUE(saw_error);
  EXPECT_TRUE(saw_stats);
  EXPECT_TRUE(saw_shutdown);

  std::filesystem::remove_all(dir);
}

}  // namespace
