/// \file test_json_fuzz.cpp
/// \brief Deterministic seeded fuzzing of the JSON layer and the spec
/// round-trip.
///
/// Three properties, each checked over a few hundred generated cases:
///   1. parse(print(x)) == x for random JsonValue trees and random (valid)
///      ExperimentSpec / SweepSpec / OptimiseSpec instances — the lossless
///      round-trip contract of docs/spec_format.md, on inputs nobody
///      hand-wrote.
///   2. Strict unknown-key rejection: renaming *any* object key anywhere in
///      a spec document makes parsing throw ModelError (either the renamed
///      key is unknown or a required key went missing — never a silent
///      accept).
///   3. The parser never crashes: every strict prefix of a valid document is
///      rejected with ModelError, and random byte strings either parse or
///      throw ModelError — nothing else. The ASan/UBSan CI job runs this
///      suite, so "never crashes" includes "never reads out of bounds".
///
/// All randomness is a seeded splitmix64 stream (the same platform-stable
/// generator the excitation random walk uses) — no wall clock anywhere, so a
/// failure replays exactly from the printed seed.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "experiments/accuracy.hpp"
#include "experiments/autotune.hpp"
#include "experiments/ensemble.hpp"
#include "experiments/optimise_spec.hpp"
#include "experiments/scenarios.hpp"
#include "experiments/sweep.hpp"
#include "io/json.hpp"
#include "io/spec_json.hpp"

namespace {

using ehsim::ModelError;
using ehsim::io::JsonValue;
using namespace ehsim::experiments;

/// splitmix64 — identical update to the excitation random walk's stream.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform draw in [0, n).
  std::size_t below(std::size_t n) { return static_cast<std::size_t>(next() % n); }

  /// Uniform draw in [lo, hi).
  double uniform(double lo, double hi) {
    const double unit = static_cast<double>(next() >> 11) * 0x1.0p-53;
    return lo + (hi - lo) * unit;
  }

  bool chance(double p) { return uniform(0.0, 1.0) < p; }

 private:
  std::uint64_t state_;
};

// ---- random JSON documents ------------------------------------------------

std::string random_text(SplitMix64& rng) {
  // Escapes, control characters and multi-byte UTF-8 all round-trip.
  static const std::vector<std::string> pool = {
      "a", "Z", "0", "_", " ", "\"", "\\", "/", "\n", "\t", "\r", "\x01",
      "\x1f", "{", "}", "[", "]", ":", ",", "é", "€", "😀", "\xC2\xA0"};
  std::string text;
  const std::size_t length = rng.below(12);
  for (std::size_t i = 0; i < length; ++i) {
    text += pool[rng.below(pool.size())];
  }
  return text;
}

double random_number(SplitMix64& rng) {
  switch (rng.below(5)) {
    case 0:
      return static_cast<double>(static_cast<std::int64_t>(rng.next())) * 1e-3;
    case 1:
      return rng.uniform(-1.0, 1.0);
    case 2:
      return rng.uniform(-1.0, 1.0) * 1e300;   // near-overflow magnitudes
    case 3:
      return rng.uniform(-1.0, 1.0) * 1e-300;  // subnormal territory
    default:
      return static_cast<double>(rng.below(1000));
  }
}

JsonValue random_json(SplitMix64& rng, std::size_t depth) {
  const std::size_t kinds = depth == 0 ? 4 : 6;  // leaves only at max depth
  switch (rng.below(kinds)) {
    case 0:
      return JsonValue(nullptr);
    case 1:
      return JsonValue(rng.chance(0.5));
    case 2:
      return JsonValue(random_number(rng));
    case 3:
      return JsonValue(random_text(rng));
    case 4: {
      JsonValue array = JsonValue::make_array();
      const std::size_t size = rng.below(5);
      for (std::size_t i = 0; i < size; ++i) {
        array.push_back(random_json(rng, depth - 1));
      }
      return array;
    }
    default: {
      JsonValue object = JsonValue::make_object();
      const std::size_t size = rng.below(5);
      for (std::size_t i = 0; i < size; ++i) {
        // set() replaces duplicates, so keys stay unique by construction.
        object.set("k" + std::to_string(rng.below(16)), random_json(rng, depth - 1));
      }
      return object;
    }
  }
}

TEST(JsonFuzz, RandomDocumentsRoundTripThroughTextExactly) {
  SplitMix64 rng(0xE45157ull);
  for (int i = 0; i < 300; ++i) {
    const JsonValue value = random_json(rng, 4);
    EXPECT_EQ(JsonValue::parse(value.dump()), value) << "case " << i;
    EXPECT_EQ(JsonValue::parse(value.dump(2)), value) << "case " << i;
    // Serialisation itself is deterministic.
    EXPECT_EQ(value.dump(), JsonValue::parse(value.dump()).dump()) << "case " << i;
  }
}

// ---- random (valid) spec documents ----------------------------------------

/// Continuous device-parameter paths with safe value ranges.
struct SafeParam {
  const char* path;
  double lo;
  double hi;
};
const SafeParam kSafeParams[] = {
    {"supercap.initial_voltage", 0.0, 5.0},
    {"generator.proof_mass", 0.012, 0.022},
    {"load.sleep_ohms", 10.0, 1e6},
    {"multiplier.stage_capacitance", 1e-6, 1e-4},
    {"supercap.ci0", 0.1, 0.5},
};

ProbeSpec random_probe(SplitMix64& rng, std::size_t index) {
  ProbeSpec probe;
  probe.label = "p" + std::to_string(index);
  switch (rng.below(7)) {
    case 0:
      probe.kind = ProbeSpec::Kind::kNodeVoltage;
      probe.target = std::vector<std::string>{"Vm", "Im", "Vc", "Ic"}[rng.below(4)];
      break;
    case 1:
      probe.kind = ProbeSpec::Kind::kStateVariable;
      probe.target = "supercap.Vi";
      break;
    case 2:
      probe.kind = ProbeSpec::Kind::kGeneratorPower;
      break;
    case 3:
      probe.kind = ProbeSpec::Kind::kHarvestedPower;
      break;
    case 4:
      probe.kind = ProbeSpec::Kind::kMcuState;
      probe.target =
          std::vector<std::string>{"sleep", "measuring", "tuning", "awake"}[rng.below(4)];
      break;
    case 5:
      probe.kind = ProbeSpec::Kind::kActuator;
      probe.target = std::vector<std::string>{"gap", "speed", "work"}[rng.below(3)];
      break;
    default:
      probe.kind = ProbeSpec::Kind::kStoredEnergy;
      break;
  }
  if (rng.chance(0.4)) {
    probe.window_start = rng.uniform(0.0, 1.0);
    probe.window_end = probe.window_start + rng.uniform(0.1, 5.0);
  }
  if (rng.chance(0.4)) {
    probe.threshold = rng.uniform(-1.0, 1.0);
  }
  probe.record = rng.chance(0.7);
  return probe;
}

ExperimentSpec random_experiment(SplitMix64& rng) {
  ExperimentSpec spec;
  spec.name = "fuzz-" + std::to_string(rng.below(1000000));
  spec.duration = rng.uniform(0.1, 400.0);
  spec.pre_tuned_hz = rng.chance(0.9) ? rng.uniform(60.0, 80.0) : 0.0;
  spec.with_mcu = rng.chance(0.5);
  spec.trace_interval = rng.chance(0.8) ? rng.uniform(0.0, 1.0) : 0.0;
  spec.power_bin_width = rng.uniform(0.1, 5.0);
  spec.engine = std::vector<EngineKind>{EngineKind::kProposed, EngineKind::kSystemVision,
                                        EngineKind::kPspice,
                                        EngineKind::kSystemCA}[rng.below(4)];
  spec.excitation.initial_frequency_hz = rng.uniform(40.0, 90.0);
  if (rng.chance(0.5)) {
    spec.excitation.initial_amplitude = rng.uniform(0.1, 1.0);
  }
  double cursor = rng.uniform(0.1, 10.0);
  const std::size_t events = rng.below(4);
  for (std::size_t i = 0; i < events; ++i) {
    switch (rng.below(4)) {
      case 0:
        spec.excitation.step_frequency(cursor, rng.uniform(40.0, 90.0));
        break;
      case 1: {
        const double duration = rng.uniform(0.5, 10.0);
        spec.excitation.ramp_frequency(cursor, duration, rng.uniform(40.0, 90.0));
        cursor += duration;
        break;
      }
      case 2:
        spec.excitation.step_amplitude(cursor, rng.uniform(0.0, 1.0));
        break;
      default: {
        RandomWalkParams walk;
        walk.step_interval = rng.uniform(0.2, 3.0);
        walk.frequency_sigma = rng.uniform(0.0, 0.5);
        walk.amplitude_sigma = rng.uniform(0.0, 0.05);
        walk.seed = rng.next();  // uint64 range, incl. string-serialised seeds
        walk.min_frequency_hz = 30.0;
        walk.max_frequency_hz = 100.0;
        walk.min_amplitude = 0.05;
        const double duration = rng.uniform(1.0, 20.0);
        spec.excitation.random_walk(cursor, duration, walk);
        cursor += duration;
        break;
      }
    }
    cursor += rng.uniform(0.1, 10.0);
  }
  const std::size_t overrides = rng.below(3);
  for (std::size_t i = 0; i < overrides; ++i) {
    const SafeParam& param = kSafeParams[rng.below(std::size(kSafeParams))];
    spec.overrides.push_back(ParamOverride{param.path, rng.uniform(param.lo, param.hi)});
  }
  const std::size_t probes = rng.below(4);
  for (std::size_t i = 0; i < probes; ++i) {
    spec.probes.push_back(random_probe(rng, i));
  }
  return spec;
}

SweepSpec random_sweep(SplitMix64& rng) {
  SweepSpec sweep;
  sweep.base = random_experiment(rng);
  sweep.mode = rng.chance(0.5) ? SweepSpec::Mode::kGrid : SweepSpec::Mode::kZip;
  sweep.threads = rng.below(5);
  sweep.warm_start = rng.chance(0.3);
  sweep.batch_kernel = std::vector<BatchKernel>{BatchKernel::kJobs, BatchKernel::kLockstep,
                                                BatchKernel::kLockstepExpm}[rng.below(3)];
  const std::size_t axes = 1 + rng.below(3);
  const std::size_t zip_length = 1 + rng.below(4);
  for (std::size_t a = 0; a < axes; ++a) {
    SweepAxis axis;
    const std::size_t length =
        sweep.mode == SweepSpec::Mode::kZip ? zip_length : 1 + rng.below(4);
    if (a == 0 && rng.chance(0.3)) {
      static const EngineKind kinds[] = {EngineKind::kProposed, EngineKind::kSystemVision,
                                         EngineKind::kPspice, EngineKind::kSystemCA};
      for (std::size_t i = 0; i < length; ++i) {
        axis.engines.push_back(kinds[(rng.below(4) + i) % 4]);
      }
    } else if (rng.chance(0.3)) {
      axis.param = "spec.pre_tuned_hz";
      for (std::size_t i = 0; i < length; ++i) {
        axis.values.push_back(rng.uniform(60.0, 80.0));
      }
    } else {
      const SafeParam& param = kSafeParams[rng.below(std::size(kSafeParams))];
      axis.param = param.path;
      for (std::size_t i = 0; i < length; ++i) {
        axis.values.push_back(rng.uniform(param.lo, param.hi));
      }
    }
    sweep.axes.push_back(std::move(axis));
  }
  return sweep;
}

OptimiseSpec random_optimise(SplitMix64& rng) {
  OptimiseSpec spec;
  spec.name = "fuzz-optimise-" + std::to_string(rng.below(1000000));
  spec.base = random_experiment(rng);
  if (spec.base.probes.empty()) {
    spec.base.probes.push_back(ProbeSpec{"p0", ProbeSpec::Kind::kGeneratorPower});
  }
  const ProbeSpec& objective = spec.base.probes[rng.below(spec.base.probes.size())];
  spec.objective = objective.label;
  if (objective.threshold && rng.chance(0.3)) {
    spec.statistic = rng.chance(0.5) ? "duty_cycle" : "crossings";
  } else {
    static const char* statistics[] = {"final", "min", "max", "mean", "rms"};
    spec.statistic = statistics[rng.below(std::size(statistics))];
  }
  spec.maximise = rng.chance(0.7);
  spec.warm_start = rng.chance(0.3);
  spec.max_evaluations = 5 + rng.below(40);
  spec.x_tolerance = rng.uniform(1e-4, 0.1);
  const std::size_t axes = 1 + rng.below(3);
  if (axes == 1 && rng.chance(0.5)) {
    // The single-variable alias form.
    const SafeParam& param = kSafeParams[rng.below(std::size(kSafeParams))];
    spec.variable = param.path;
    spec.lower = param.lo;
    spec.upper = param.hi;
  } else {
    for (std::size_t i = 0; i < axes; ++i) {
      // Distinct paths: pick a window of the safe-param table.
      const SafeParam& param = kSafeParams[(rng.below(2) + i) % std::size(kSafeParams)];
      OptimiseVariable axis;
      axis.path = param.path;
      axis.lower = param.lo;
      axis.upper = param.hi;
      if (rng.chance(0.4)) {
        axis.x_tolerance = rng.uniform(1e-3, 0.1);
      }
      bool duplicate = false;
      for (const OptimiseVariable& existing : spec.variables) {
        duplicate = duplicate || existing.path == axis.path;
      }
      if (!duplicate) {
        spec.variables.push_back(std::move(axis));
      }
    }
  }
  return spec;
}

EnsembleSpec random_ensemble(SplitMix64& rng) {
  EnsembleSpec ensemble;
  ensemble.base = random_experiment(rng);
  // An ensemble needs at least one seeded walk to vary; random_experiment's
  // event tail ends well before t = 200 (time monotonicity holds).
  RandomWalkParams walk;
  walk.step_interval = rng.uniform(0.2, 3.0);
  walk.frequency_sigma = rng.uniform(0.0, 0.5);
  walk.seed = rng.next();
  walk.min_frequency_hz = 30.0;
  walk.max_frequency_hz = 100.0;
  ensemble.base.excitation.random_walk(200.0, rng.uniform(1.0, 20.0), walk);
  if (rng.chance(0.5)) {
    const std::size_t count = 2 + rng.below(5);
    for (std::size_t i = 0; i < count; ++i) {
      // Strictly increasing offsets keep the seeds unique by construction.
      const std::uint64_t previous = ensemble.seeds.empty() ? 0 : ensemble.seeds.back();
      ensemble.seeds.push_back(previous + 1 + rng.below(1000));
    }
  } else {
    ensemble.num_seeds = 2 + rng.below(5);
  }
  ensemble.threads = rng.below(5);
  ensemble.warm_start = rng.chance(0.3);
  ensemble.batch_kernel = std::vector<BatchKernel>{
      BatchKernel::kJobs, BatchKernel::kLockstep, BatchKernel::kLockstepExpm}[rng.below(3)];
  return ensemble;
}

AutotuneSpec random_autotune(SplitMix64& rng) {
  AutotuneSpec spec;
  spec.name = "fuzz-autotune-" + std::to_string(rng.below(1000000));
  spec.base = random_experiment(rng);
  spec.base.engine = EngineKind::kProposed;  // the only tunable engine
  // Ladders over the model-invariant knob paths, values inside each knob's
  // validated range and strictly increasing (so they are duplicate-free).
  struct Ladder {
    const char* path;
    double lo;
    double hi;
    bool integral;
  };
  static const Ladder ladders[] = {
      {"solver.h_max", 5e-4, 4e-3, false},
      {"solver.h_initial", 1e-7, 1e-5, false},
      {"solver.stability_safety", 0.5, 0.9, false},
      {"solver.lle_tolerance", 0.1, 1.0, false},
      {"solver.init_tolerance", 1e-12, 1e-8, false},
      {"multiplier.table_segments", 256.0, 4096.0, true},
  };
  const std::size_t knobs = 1 + rng.below(3);
  for (std::size_t i = 0; i < knobs; ++i) {
    const Ladder& ladder = ladders[(rng.below(2) + 2 * i) % std::size(ladders)];
    AutotuneKnob knob;
    knob.path = ladder.path;
    bool duplicate = false;
    for (const AutotuneKnob& existing : spec.knobs) {
      duplicate = duplicate || existing.path == knob.path;
    }
    if (duplicate) {
      continue;
    }
    const std::size_t rungs = 1 + rng.below(4);
    double value = ladder.lo;
    for (std::size_t r = 0; r < rungs; ++r) {
      knob.values.push_back(ladder.integral ? std::floor(value) : value);
      value += (ladder.hi - ladder.lo) / 3.5 * rng.uniform(0.5, 1.0);
    }
    spec.knobs.push_back(std::move(knob));
  }
  if (rng.chance(0.6)) {
    spec.kernels.push_back(BatchKernel::kJobs);
    if (rng.chance(0.5)) {
      spec.kernels.push_back(BatchKernel::kLockstepExpm);
    }
  }
  spec.error_budget = rng.uniform(1e-4, 0.1);
  if (rng.chance(0.5)) {
    spec.oracle_step = rng.uniform(1e-5, 1e-3);
  }
  spec.max_evaluations = 5 + rng.below(60);
  return spec;
}

ErrorMetrics random_error_metrics(SplitMix64& rng) {
  ErrorMetrics metrics;
  metrics.vc_max_rel_error = rng.uniform(0.0, 1e-2);
  metrics.vc_rms_rel_error = rng.uniform(0.0, 1e-3);
  metrics.final_vc_rel_error = rng.uniform(0.0, 1e-4);
  metrics.energy_rel_error = rng.uniform(0.0, 0.1);
  metrics.resonance_rel_error = rng.uniform(0.0, 1e-2);
  return metrics;
}

AccuracyReport random_accuracy_report(SplitMix64& rng) {
  AccuracyReport report;
  report.name = "fuzz-report-" + std::to_string(rng.below(1000000));
  report.engine = "proposed";
  report.oracle_step = rng.uniform(1e-6, 1e-4);
  report.oracle_steps = rng.next() >> 24;
  report.oracle_cpu_seconds = rng.uniform(0.0, 10.0);
  const std::size_t kernels = 1 + rng.below(3);
  for (std::size_t k = 0; k < kernels; ++k) {
    KernelAccuracy kernel;
    kernel.kernel = batch_kernel_id(std::vector<BatchKernel>{
        BatchKernel::kJobs, BatchKernel::kLockstep, BatchKernel::kLockstepExpm}[k]);
    kernel.cpu_seconds = rng.uniform(0.0, 1.0);
    kernel.steps = rng.next() >> 24;
    kernel.bounds = random_error_metrics(rng);
    const std::size_t jobs = 1 + rng.below(3);
    for (std::size_t j = 0; j < jobs; ++j) {
      JobAccuracy job;
      job.job = "job-" + std::to_string(j);
      job.errors = random_error_metrics(rng);
      const std::size_t probes = rng.below(3);
      for (std::size_t p = 0; p < probes; ++p) {
        // Built by append — operator+(const char*, string&&) trips a GCC 12
        // -Wrestrict false positive (PR105329) under -Werror.
        std::string label = "p";
        label += std::to_string(p);
        job.probes.push_back(ProbeAccuracy{std::move(label), rng.uniform(0.0, 1e-3)});
      }
      kernel.jobs.push_back(std::move(job));
    }
    report.kernels.push_back(std::move(kernel));
  }
  return report;
}

AutotuneResult random_autotune_result(SplitMix64& rng) {
  AutotuneResult result;
  result.name = "fuzz-tune-" + std::to_string(rng.below(1000000));
  result.error_budget = rng.uniform(1e-4, 0.1);
  result.oracle_step = rng.uniform(1e-6, 1e-4);
  result.oracle_steps = rng.next() >> 24;
  result.paths = {"solver.h_max", "multiplier.table_segments"};
  result.baseline_cost = rng.uniform(1e3, 1e6);
  result.baseline_error = rng.uniform(0.0, 0.1);
  result.chosen_values = {rng.uniform(5e-4, 4e-3), std::floor(rng.uniform(256.0, 4096.0))};
  result.chosen_kernel = "lockstep_expm";
  result.chosen_cost = rng.uniform(1e3, 1e6);
  result.chosen_error = rng.uniform(0.0, 0.1);
  result.cost_ratio = result.chosen_cost / result.baseline_cost;
  result.feasible = rng.chance(0.8);
  result.evaluations = 1 + rng.below(60);
  result.sweeps = 1 + rng.below(5);
  const std::size_t entries = 1 + rng.below(6);
  for (std::size_t i = 0; i < entries; ++i) {
    AutotuneEvaluation entry;
    entry.values = {rng.uniform(5e-4, 4e-3), std::floor(rng.uniform(256.0, 4096.0))};
    entry.kernel = rng.chance(0.5) ? "jobs" : "lockstep_expm";
    entry.cost = rng.uniform(1e3, 1e6);
    entry.error = rng.uniform(0.0, 0.1);
    entry.feasible = entry.error <= result.error_budget;
    result.log.push_back(std::move(entry));
  }
  return result;
}

TEST(SpecFuzz, RandomExperimentSpecsRoundTripLosslessly) {
  SplitMix64 rng(0x5EED01ull);
  for (int i = 0; i < 120; ++i) {
    const ExperimentSpec spec = random_experiment(rng);
    ASSERT_NO_THROW(spec.validate()) << "generator bug, case " << i;
    const std::string text = ehsim::io::to_json(spec).dump(2);
    EXPECT_EQ(ehsim::io::experiment_from_json(JsonValue::parse(text)), spec)
        << "case " << i;
  }
}

TEST(SpecFuzz, RandomSweepSpecsRoundTripLosslessly) {
  SplitMix64 rng(0x5EED02ull);
  for (int i = 0; i < 80; ++i) {
    const SweepSpec sweep = random_sweep(rng);
    ASSERT_NO_THROW(sweep.validate()) << "generator bug, case " << i;
    const std::string text = ehsim::io::to_json(sweep).dump(2);
    EXPECT_EQ(ehsim::io::sweep_from_json(JsonValue::parse(text)), sweep) << "case " << i;
  }
}

TEST(SpecFuzz, RandomOptimiseSpecsRoundTripLosslessly) {
  SplitMix64 rng(0x5EED03ull);
  for (int i = 0; i < 80; ++i) {
    const OptimiseSpec spec = random_optimise(rng);
    ASSERT_NO_THROW(spec.validate()) << "generator bug, case " << i;
    const std::string text = ehsim::io::to_json(spec).dump(2);
    EXPECT_EQ(ehsim::io::optimise_from_json(JsonValue::parse(text)), spec) << "case " << i;
  }
}

TEST(SpecFuzz, RandomEnsembleSpecsRoundTripLosslessly) {
  SplitMix64 rng(0x5EED07ull);
  for (int i = 0; i < 80; ++i) {
    const EnsembleSpec spec = random_ensemble(rng);
    ASSERT_NO_THROW(spec.validate()) << "generator bug, case " << i;
    const std::string text = ehsim::io::to_json(spec).dump(2);
    EXPECT_EQ(ehsim::io::ensemble_from_json(JsonValue::parse(text)), spec) << "case " << i;
  }
}

TEST(SpecFuzz, RandomAutotuneSpecsRoundTripLosslessly) {
  SplitMix64 rng(0x5EED08ull);
  for (int i = 0; i < 80; ++i) {
    const AutotuneSpec spec = random_autotune(rng);
    ASSERT_NO_THROW(spec.validate()) << "generator bug, case " << i;
    const std::string text = ehsim::io::to_json(spec).dump(2);
    EXPECT_EQ(ehsim::io::autotune_from_json(JsonValue::parse(text)), spec) << "case " << i;
    // And through the tagged union, preserving the flavour.
    ehsim::io::AnySpec any = ehsim::io::spec_from_json(JsonValue::parse(text));
    const AutotuneSpec* held = any.get_if<AutotuneSpec>();
    ASSERT_NE(held, nullptr) << "case " << i;
    EXPECT_EQ(*held, spec) << "case " << i;
  }
}

TEST(SpecFuzz, RandomAccuracyReportsRoundTripLosslessly) {
  SplitMix64 rng(0x5EED09ull);
  for (int i = 0; i < 80; ++i) {
    const AccuracyReport report = random_accuracy_report(rng);
    const std::string text = ehsim::io::to_json(report).dump(2);
    EXPECT_EQ(ehsim::io::accuracy_report_from_json(JsonValue::parse(text)), report)
        << "case " << i;
  }
}

TEST(SpecFuzz, RandomAutotuneResultsRoundTripLosslessly) {
  SplitMix64 rng(0x5EED0Aull);
  for (int i = 0; i < 80; ++i) {
    const AutotuneResult result = random_autotune_result(rng);
    const std::string text = ehsim::io::to_json(result).dump(2);
    EXPECT_EQ(ehsim::io::autotune_result_from_json(JsonValue::parse(text)), result)
        << "case " << i;
  }
}

// ---- strict unknown-key rejection under key mutation -----------------------

std::size_t count_object_keys(const JsonValue& value) {
  std::size_t count = 0;
  if (value.is_object()) {
    for (const auto& [key, member] : value.as_object()) {
      count += 1 + count_object_keys(member);
    }
  } else if (value.is_array()) {
    for (const JsonValue& member : value.as_array()) {
      count += count_object_keys(member);
    }
  }
  return count;
}

/// Rename the \p index-th object key (pre-order) by appending '~'; returns
/// false when index is past the last key.
bool mutate_key(JsonValue& value, std::size_t& index) {
  if (value.is_object()) {
    for (auto& [key, member] : value.as_object()) {
      if (index == 0) {
        key += '~';
        return true;
      }
      --index;
      if (mutate_key(member, index)) {
        return true;
      }
    }
  } else if (value.is_array()) {
    for (JsonValue& member : value.as_array()) {
      if (mutate_key(member, index)) {
        return true;
      }
    }
  }
  return false;
}

TEST(SpecFuzz, EveryMutatedKeyIsRejected) {
  SplitMix64 rng(0x5EED04ull);
  for (int i = 0; i < 30; ++i) {
    JsonValue document;
    switch (i % 5) {
      case 0:
        document = ehsim::io::to_json(random_experiment(rng));
        break;
      case 1:
        document = ehsim::io::to_json(random_sweep(rng));
        break;
      case 2:
        document = ehsim::io::to_json(random_optimise(rng));
        break;
      case 3:
        document = ehsim::io::to_json(random_autotune(rng));
        break;
      default:
        document = ehsim::io::to_json(random_ensemble(rng));
        break;
    }
    const std::size_t keys = count_object_keys(document);
    ASSERT_GT(keys, 0u);
    for (std::size_t key = 0; key < keys; ++key) {
      JsonValue mutated = document;
      std::size_t cursor = key;
      ASSERT_TRUE(mutate_key(mutated, cursor));
      // Either the renamed key is unknown or a required key went missing —
      // both must throw, never silently parse.
      EXPECT_THROW((void)ehsim::io::spec_from_json(mutated), ModelError)
          << "case " << i << ", key " << key << ": " << mutated.dump();
    }
  }
}

/// The result documents of the accuracy layer are strict-keyed too — a
/// hand-edited or version-skewed report must fail loudly when read back
/// (the regression matrix and golden tests parse these files).
TEST(SpecFuzz, EveryMutatedAccuracyDocumentKeyIsRejected) {
  SplitMix64 rng(0x5EED0Bull);
  for (int i = 0; i < 6; ++i) {
    const bool autotune = (i % 2) != 0;
    const JsonValue document = autotune
                                   ? ehsim::io::to_json(random_autotune_result(rng))
                                   : ehsim::io::to_json(random_accuracy_report(rng));
    const std::size_t keys = count_object_keys(document);
    ASSERT_GT(keys, 0u);
    for (std::size_t key = 0; key < keys; ++key) {
      JsonValue mutated = document;
      std::size_t cursor = key;
      ASSERT_TRUE(mutate_key(mutated, cursor));
      if (autotune) {
        EXPECT_THROW((void)ehsim::io::autotune_result_from_json(mutated), ModelError)
            << "case " << i << ", key " << key << ": " << mutated.dump();
      } else {
        EXPECT_THROW((void)ehsim::io::accuracy_report_from_json(mutated), ModelError)
            << "case " << i << ", key " << key << ": " << mutated.dump();
      }
    }
  }
}

/// Strict-key coverage of the checkpoint document: write a real mid-run
/// checkpoint, then rename *every* object key in it (envelope, workload
/// meta, embedded spec, session payload) — each mutation must make the
/// resume path throw ModelError instead of restoring corrupted state.
TEST(CheckpointFuzz, EveryMutatedCheckpointKeyIsRejected) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "ehsim_ckpt_fuzz";
  fs::remove_all(dir);
  fs::create_directories(dir);

  ExperimentSpec spec;
  spec.name = "ckpt-fuzz";
  spec.duration = 0.4;
  spec.pre_tuned_hz = 70.0;
  spec.with_mcu = true;
  spec.trace_interval = 0.05;
  spec.excitation.initial_frequency_hz = 70.0;

  CheckpointOptions writing;
  writing.every = 0.2;
  writing.dir = dir.string();
  writing.abort_after = 1;
  ASSERT_FALSE(run_experiment_checkpointed(spec, RunOptions{}, writing).has_value());
  const std::string path = checkpoint_file_path(writing, spec.name);
  const JsonValue document = JsonValue::parse(ehsim::io::read_file(path));

  CheckpointOptions resuming;
  resuming.dir = dir.string();
  resuming.resume = true;
  const std::size_t keys = count_object_keys(document);
  ASSERT_GT(keys, 0u);
  for (std::size_t key = 0; key < keys; ++key) {
    JsonValue mutated = document;
    std::size_t cursor = key;
    ASSERT_TRUE(mutate_key(mutated, cursor));
    ehsim::io::write_file(path, mutated.dump(-1));
    EXPECT_THROW((void)run_experiment_checkpointed(spec, RunOptions{}, resuming), ModelError)
        << "checkpoint key " << key << " of " << keys;
  }

  // And the unmutated document still resumes — the harness itself is sound.
  ehsim::io::write_file(path, document.dump(-1));
  EXPECT_TRUE(run_experiment_checkpointed(spec, RunOptions{}, resuming).has_value());
  fs::remove_all(dir);
}

// ---- parser robustness ----------------------------------------------------

TEST(JsonFuzz, EveryStrictPrefixOfAValidDocumentIsRejected) {
  SplitMix64 rng(0x5EED05ull);
  const std::string text = ehsim::io::to_json(random_optimise(rng)).dump(2);
  for (std::size_t cut = 0; cut < text.size(); ++cut) {
    EXPECT_THROW((void)JsonValue::parse(text.substr(0, cut)), ModelError) << "cut " << cut;
  }
  EXPECT_THROW((void)JsonValue::parse(text + " x"), ModelError);
}

TEST(JsonFuzz, GarbageAndBitFlippedInputNeverCrashesTheParser) {
  SplitMix64 rng(0x5EED06ull);
  // Random byte strings over the full byte range.
  for (int i = 0; i < 400; ++i) {
    std::string garbage;
    const std::size_t length = rng.below(64);
    for (std::size_t b = 0; b < length; ++b) {
      garbage.push_back(static_cast<char>(rng.below(256)));
    }
    try {
      (void)JsonValue::parse(garbage);  // a short garbage string may be valid
    } catch (const ModelError&) {
      // rejected with the documented error type — fine
    }
  }
  // Byte-level corruption of an otherwise valid document.
  const std::string text = ehsim::io::to_json(random_experiment(rng)).dump(2);
  for (int i = 0; i < 400; ++i) {
    std::string corrupted = text;
    const std::size_t edits = 1 + rng.below(3);
    for (std::size_t e = 0; e < edits; ++e) {
      corrupted[rng.below(corrupted.size())] = static_cast<char>(rng.below(256));
    }
    try {
      (void)JsonValue::parse(corrupted);
    } catch (const ModelError&) {
    }
  }
}

}  // namespace
