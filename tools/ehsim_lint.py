#!/usr/bin/env python3
"""ehsim determinism & concurrency lint.

Static checks for the repo's two machine-enforced contracts:

* Determinism: results (batch sweeps, serve responses, checkpoint resumes)
  must be bit-identical across thread counts and process restarts. That dies
  quietly when result-producing code iterates an unordered container, calls
  a non-deterministic random source, reads wall-clock time outside the
  cpu_seconds shims, or accumulates in single-precision floats.
* Concurrency: every mutex in src/ must be the annotated core::Mutex wrapper
  from core/thread_annotations.hpp so the clang -Wthread-safety CI leg can
  see it; raw std::mutex / std::condition_variable are invisible to the
  analysis and therefore banned.

Rules
-----
unordered-iteration  Range-for / .begin() iteration over a std::unordered_*
                     container declared in the same file. Iteration order is
                     libstdc++-version- and hash-seed-dependent, so any
                     result built by such a loop is not reproducible.
raw-random           std::random_device, rand(), srand(): non-seedable
                     entropy. Seeded std::mt19937 is fine and not flagged.
wall-clock           std::chrono::*_clock, time(), clock(), gettimeofday:
                     results must not depend on when they were computed.
                     The cpu_seconds shims carry explicit waivers.
float-accumulation   The `float` type. The engine is double-precision
                     end-to-end; a single float intermediate silently
                     truncates reductions, so src/ bans the type outright.
                     Long reductions that need more than double precision
                     have a sanctioned sink: ref::CompensatedAccumulator
                     (src/ref/compensated.hpp) — compensated double-double
                     summation, deterministic on every target.
extended-precision   `long double` / `__float128`. Their width is
                     platform-dependent (x87 80-bit vs aliased-to-double on
                     AArch64), so any result touching them is not
                     bit-reproducible across targets. Banned everywhere
                     except src/ref/ — the extended-precision reference
                     oracle is the one subsystem whose *job* is to run wider
                     than double, is never on a result-producing fast path,
                     and whose outputs are only consumed through double-
                     precision error metrics. The carve-out is path-based by
                     design: no waivers or baseline entries for this rule
                     outside src/ref/.
raw-mutex            std::mutex, std::condition_variable, lock_guard,
                     unique_lock, scoped_lock: use core::Mutex / MutexLock /
                     CondVar so -Wthread-safety can check the locking.

Waivers
-------
A finding is waived by `// lint:allow <rule>[,<rule>...]` on the same line
or the immediately preceding line. Waivers are deliberate and reviewable —
prefer them over baseline entries for code that is correct by argument
(e.g. the cpu_seconds wall-clock shim).

Baseline
--------
tools/ehsim_lint_baseline.json holds findings that predate the lint and are
tolerated until cleaned up. Keyed by (rule, file, normalised source text) so
line drift does not churn it. `--update-baseline` rewrites it from the
current tree; the checked-in baseline is empty and should stay that way.

Exit status: 0 clean, 1 new findings, 2 usage/IO error. Stdlib only.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

RULES = {
    "unordered-iteration": "iteration over an unordered container (non-deterministic order)",
    "raw-random": "non-deterministic random source (std::random_device / rand / srand)",
    "wall-clock": "wall-clock read outside the cpu_seconds shims",
    "float-accumulation": "single-precision float in a double-precision engine",
    "extended-precision": "long double/__float128 outside the src/ref oracle (non-portable width)",
    "raw-mutex": "raw std::mutex/condition_variable (invisible to -Wthread-safety)",
}

# The one directory allowed to use extended precision: the reference oracle
# (see the rule table above). Path prefix, POSIX-style relative to the root.
EXTENDED_PRECISION_CARVE_OUT = "src/ref/"

SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

ALLOW_RE = re.compile(r"//\s*lint:allow\s+([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)")

# Declarations of unordered containers: capture the variable/member name.
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*>\s+(\w+)\s*[;={(]"
)

RAW_RANDOM_RE = re.compile(r"\bstd::random_device\b|(?<![\w:])s?rand\s*\(")
# `time`/`clock` only in their libc forms: simulation-time accessors named
# time() (Engine::time, Session::time) are deterministic model time, not
# wall clock, and must not be flagged.
WALL_CLOCK_RE = re.compile(
    r"\bstd::chrono::(?:system|steady|high_resolution)_clock\b"
    r"|\bstd::time\s*\("
    r"|(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr)"
    r"|(?<![\w:.>])clock\s*\(\s*\)"
    r"|\bgettimeofday\b"
)
FLOAT_RE = re.compile(r"(?<![\w:])float(?![\w])")
EXTENDED_RE = re.compile(r"\blong\s+double\b|\b__float128\b")
RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|shared_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock)\b"
)


def strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Blank out comments and string/char literals, preserving line structure.

    Stateful across lines for /* */ blocks and raw string literals, so rule
    regexes never match inside documentation or logged text.
    """
    out = []
    in_block = False
    raw_delim = None  # inside R"delim( ... )delim" when not None
    for line in lines:
        result = []
        i = 0
        n = len(line)
        while i < n:
            if raw_delim is not None:
                end = line.find(")" + raw_delim + '"', i)
                if end < 0:
                    i = n
                else:
                    i = end + len(raw_delim) + 2
                    raw_delim = None
                continue
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = n
                else:
                    i = end + 2
                    in_block = False
                continue
            c = line[i]
            if c == "/" and i + 1 < n and line[i + 1] == "/":
                break  # line comment: drop the rest
            if c == "/" and i + 1 < n and line[i + 1] == "*":
                in_block = True
                i += 2
                continue
            raw = re.match(r'R"([^\s()\\]{0,16})\(', line[i:])
            if raw:
                raw_delim = raw.group(1)
                i += raw.end()
                continue
            if c in "\"'":
                quote = c
                j = i + 1
                while j < n:
                    if line[j] == "\\":
                        j += 2
                        continue
                    if line[j] == quote:
                        break
                    j += 1
                i = min(j + 1, n)
                result.append(quote + quote)  # keep token boundaries honest
                continue
            result.append(c)
            i += 1
        out.append("".join(result))
    return out


def waivers_for(raw_lines: list[str], index: int) -> set[str]:
    """Waiver rules applying to raw_lines[index] (same or preceding line)."""
    rules: set[str] = set()
    for k in (index, index - 1):
        if 0 <= k < len(raw_lines):
            m = ALLOW_RE.search(raw_lines[k])
            if m:
                rules.update(r.strip() for r in m.group(1).split(",") if r.strip())
    return rules


def unordered_iteration_findings(stripped: list[str]) -> list[tuple[int, str]]:
    names = set()
    for line in stripped:
        for m in UNORDERED_DECL_RE.finditer(line):
            names.add(m.group(1))
    if not names:
        return []
    alt = "|".join(re.escape(n) for n in sorted(names))
    range_for = re.compile(r"for\s*\([^;)]*:\s*(?:this->)?(%s)\s*\)" % alt)
    begin_iter = re.compile(r"\b(%s)\s*\.\s*(?:c?begin|c?end|c?rbegin|c?rend)\s*\(" % alt)
    found = []
    for idx, line in enumerate(stripped):
        m = range_for.search(line) or begin_iter.search(line)
        if m:
            found.append((idx, "iterates unordered container '%s'" % m.group(1)))
    return found


def scan_file(path: Path, root: Path) -> list[dict]:
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        print("ehsim_lint: cannot read %s: %s" % (path, error), file=sys.stderr)
        raise SystemExit(2)
    return scan_text(path.relative_to(root).as_posix(), text)


def scan_text(rel: str, text: str) -> list[dict]:
    raw = text.splitlines()
    stripped = strip_comments_and_strings(raw)
    findings = []

    def add(rule: str, idx: int, detail: str) -> None:
        if rule in waivers_for(raw, idx):
            return
        findings.append(
            {
                "rule": rule,
                "file": rel,
                "line": idx + 1,
                "text": " ".join(stripped[idx].split()),
                "detail": detail,
            }
        )

    for idx, detail in unordered_iteration_findings(stripped):
        add("unordered-iteration", idx, detail)
    simple = [
        ("raw-random", RAW_RANDOM_RE),
        ("wall-clock", WALL_CLOCK_RE),
        ("float-accumulation", FLOAT_RE),
        ("raw-mutex", RAW_MUTEX_RE),
    ]
    # Path-based carve-out, not a blanket waiver: inside src/ref/ the rule
    # is not evaluated at all (the oracle's whole job is extended precision;
    # per-line lint:allow there would just train people to scatter waivers).
    # Everywhere else a hit is a finding, silenced only by an explicit,
    # greppable lint:allow on that line.
    if not rel.startswith(EXTENDED_PRECISION_CARVE_OUT):
        simple.append(("extended-precision", EXTENDED_RE))
    for idx, line in enumerate(stripped):
        for rule, pattern in simple:
            if pattern.search(line):
                add(rule, idx, RULES[rule])
    return findings


def finding_key(f: dict) -> tuple[str, str, str]:
    return (f["rule"], f["file"], f["text"])


# (description, relative path, snippet, rules expected to fire) — the lint
# linting itself. Every rule needs at least one firing and one non-firing
# case; the extended-precision cases pin the src/ref/ carve-out and the
# comment/string stripper.
SELF_TEST_CASES = [
    ("long double flagged in src/core",
     "src/core/solver.hpp", "long double acc = 0.0;", {"extended-precision"}),
    ("__float128 flagged in src/experiments",
     "src/experiments/metrics.cpp", "__float128 wide;", {"extended-precision"}),
    ("long double allowed in the src/ref oracle",
     "src/ref/compensated.hpp", "long double sum_ = 0.0L;", set()),
    ("carve-out is the directory, not the prefix string",
     "src/refinery/boiler.hpp", "long double t;", {"extended-precision"}),
    ("extended-precision waivable outside src/ref only explicitly",
     "src/core/shim.hpp",
     "long double x;  // lint:allow extended-precision", set()),
    ("commented long double not flagged",
     "src/core/doc.hpp", "// long double would lose determinism here", set()),
    ("'long double' inside a string literal not flagged",
     "src/io/msg.cpp", 'const char* m = "long double";', set()),
    ("plain double stays clean",
     "src/core/ok.hpp", "double x = 0.0;", set()),
    ("float flagged",
     "src/core/f.hpp", "float f = 0.f;", {"float-accumulation"}),
    ("__float128 does not double-count as float",
     "src/core/g.hpp", "__float128 g;", {"extended-precision"}),
    ("raw std::mutex flagged",
     "src/serve/m.hpp", "std::mutex lock;", {"raw-mutex"}),
    ("core::Mutex clean",
     "src/serve/m2.hpp", "core::Mutex lock;", set()),
    ("std::random_device flagged",
     "src/experiments/r.cpp", "std::random_device rd;", {"raw-random"}),
    ("seeded mt19937 clean",
     "src/experiments/r2.cpp", "std::mt19937 gen(seed);", set()),
    ("steady_clock flagged",
     "src/experiments/t.cpp",
     "auto t0 = std::chrono::steady_clock::now();", {"wall-clock"}),
    ("unordered map iteration flagged",
     "src/io/u.cpp",
     "std::unordered_map<int, int> cache_;\nfor (const auto& kv : cache_) {}",
     {"unordered-iteration"}),
]


def self_test() -> int:
    failures = []
    for description, rel, snippet, expected in SELF_TEST_CASES:
        fired = {f["rule"] for f in scan_text(rel, snippet)}
        if fired != expected:
            failures.append(
                "  %s (%s):\n    expected %s, got %s"
                % (description, rel, sorted(expected) or "clean", sorted(fired) or "clean")
            )
    for rule in RULES:
        covered = any(rule in expected for _, _, _, expected in SELF_TEST_CASES)
        if not covered:
            failures.append("  rule '%s' has no firing self-test case" % rule)
    if failures:
        print("ehsim_lint --self-test: FAILED", file=sys.stderr)
        for failure in failures:
            print(failure, file=sys.stderr)
        return 1
    print("ehsim_lint --self-test: %d case(s) passed, every rule covered"
          % len(SELF_TEST_CASES))
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the checkout containing this script)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline JSON (default: tools/ehsim_lint_baseline.json under --root)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument("--list-rules", action="store_true", help="print the rule table")
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the scanner against embedded positive/negative snippets and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in RULES.items():
            print("%-22s %s" % (rule, description))
        return 0
    if args.self_test:
        return self_test()

    root = args.root.resolve()
    src = root / "src"
    if not src.is_dir():
        print("ehsim_lint: no src/ under %s" % root, file=sys.stderr)
        return 2
    baseline_path = args.baseline or root / "tools" / "ehsim_lint_baseline.json"

    findings = []
    for path in sorted(src.rglob("*")):
        if path.suffix in SOURCE_SUFFIXES and path.is_file():
            findings.extend(scan_file(path, root))

    if args.update_baseline:
        payload = sorted(
            (
                {"rule": f["rule"], "file": f["file"], "text": f["text"]}
                for f in findings
            ),
            key=lambda f: (f["rule"], f["file"], f["text"]),
        )
        baseline_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print("ehsim_lint: baseline updated with %d finding(s)" % len(payload))
        return 0

    baseline: set[tuple[str, str, str]] = set()
    if baseline_path.exists():
        try:
            for entry in json.loads(baseline_path.read_text(encoding="utf-8")):
                baseline.add((entry["rule"], entry["file"], entry["text"]))
        except (ValueError, KeyError, TypeError) as error:
            print("ehsim_lint: bad baseline %s: %s" % (baseline_path, error), file=sys.stderr)
            return 2

    new = [f for f in findings if finding_key(f) not in baseline]
    for f in sorted(new, key=lambda f: (f["file"], f["line"], f["rule"])):
        print("%s:%d: [%s] %s" % (f["file"], f["line"], f["rule"], f["detail"]))
        print("    %s" % f["text"])
    if new:
        print(
            "ehsim_lint: %d new finding(s) (%d baselined). Fix, waive with "
            "'// lint:allow <rule>', or --update-baseline." % (len(new), len(baseline)),
            file=sys.stderr,
        )
        return 1
    print("ehsim_lint: clean (%d file(s) scanned, %d baselined)" % (
        sum(1 for p in src.rglob("*") if p.suffix in SOURCE_SUFFIXES and p.is_file()),
        len(baseline),
    ))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
