#!/usr/bin/env python3
"""ehsim determinism & concurrency lint.

Static checks for the repo's two machine-enforced contracts:

* Determinism: results (batch sweeps, serve responses, checkpoint resumes)
  must be bit-identical across thread counts and process restarts. That dies
  quietly when result-producing code iterates an unordered container, calls
  a non-deterministic random source, reads wall-clock time outside the
  cpu_seconds shims, or accumulates in single-precision floats.
* Concurrency: every mutex in src/ must be the annotated core::Mutex wrapper
  from core/thread_annotations.hpp so the clang -Wthread-safety CI leg can
  see it; raw std::mutex / std::condition_variable are invisible to the
  analysis and therefore banned.

Rules
-----
unordered-iteration  Range-for / .begin() iteration over a std::unordered_*
                     container declared in the same file. Iteration order is
                     libstdc++-version- and hash-seed-dependent, so any
                     result built by such a loop is not reproducible.
raw-random           std::random_device, rand(), srand(): non-seedable
                     entropy. Seeded std::mt19937 is fine and not flagged.
wall-clock           std::chrono::*_clock, time(), clock(), gettimeofday:
                     results must not depend on when they were computed.
                     The cpu_seconds shims carry explicit waivers.
float-accumulation   The `float` type. The engine is double-precision
                     end-to-end; a single float intermediate silently
                     truncates reductions, so src/ bans the type outright.
raw-mutex            std::mutex, std::condition_variable, lock_guard,
                     unique_lock, scoped_lock: use core::Mutex / MutexLock /
                     CondVar so -Wthread-safety can check the locking.

Waivers
-------
A finding is waived by `// lint:allow <rule>[,<rule>...]` on the same line
or the immediately preceding line. Waivers are deliberate and reviewable —
prefer them over baseline entries for code that is correct by argument
(e.g. the cpu_seconds wall-clock shim).

Baseline
--------
tools/ehsim_lint_baseline.json holds findings that predate the lint and are
tolerated until cleaned up. Keyed by (rule, file, normalised source text) so
line drift does not churn it. `--update-baseline` rewrites it from the
current tree; the checked-in baseline is empty and should stay that way.

Exit status: 0 clean, 1 new findings, 2 usage/IO error. Stdlib only.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

RULES = {
    "unordered-iteration": "iteration over an unordered container (non-deterministic order)",
    "raw-random": "non-deterministic random source (std::random_device / rand / srand)",
    "wall-clock": "wall-clock read outside the cpu_seconds shims",
    "float-accumulation": "single-precision float in a double-precision engine",
    "raw-mutex": "raw std::mutex/condition_variable (invisible to -Wthread-safety)",
}

SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

ALLOW_RE = re.compile(r"//\s*lint:allow\s+([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)")

# Declarations of unordered containers: capture the variable/member name.
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*>\s+(\w+)\s*[;={(]"
)

RAW_RANDOM_RE = re.compile(r"\bstd::random_device\b|(?<![\w:])s?rand\s*\(")
# `time`/`clock` only in their libc forms: simulation-time accessors named
# time() (Engine::time, Session::time) are deterministic model time, not
# wall clock, and must not be flagged.
WALL_CLOCK_RE = re.compile(
    r"\bstd::chrono::(?:system|steady|high_resolution)_clock\b"
    r"|\bstd::time\s*\("
    r"|(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr)"
    r"|(?<![\w:.>])clock\s*\(\s*\)"
    r"|\bgettimeofday\b"
)
FLOAT_RE = re.compile(r"(?<![\w:])float(?![\w])")
RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|shared_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock)\b"
)


def strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Blank out comments and string/char literals, preserving line structure.

    Stateful across lines for /* */ blocks and raw string literals, so rule
    regexes never match inside documentation or logged text.
    """
    out = []
    in_block = False
    raw_delim = None  # inside R"delim( ... )delim" when not None
    for line in lines:
        result = []
        i = 0
        n = len(line)
        while i < n:
            if raw_delim is not None:
                end = line.find(")" + raw_delim + '"', i)
                if end < 0:
                    i = n
                else:
                    i = end + len(raw_delim) + 2
                    raw_delim = None
                continue
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = n
                else:
                    i = end + 2
                    in_block = False
                continue
            c = line[i]
            if c == "/" and i + 1 < n and line[i + 1] == "/":
                break  # line comment: drop the rest
            if c == "/" and i + 1 < n and line[i + 1] == "*":
                in_block = True
                i += 2
                continue
            raw = re.match(r'R"([^\s()\\]{0,16})\(', line[i:])
            if raw:
                raw_delim = raw.group(1)
                i += raw.end()
                continue
            if c in "\"'":
                quote = c
                j = i + 1
                while j < n:
                    if line[j] == "\\":
                        j += 2
                        continue
                    if line[j] == quote:
                        break
                    j += 1
                i = min(j + 1, n)
                result.append(quote + quote)  # keep token boundaries honest
                continue
            result.append(c)
            i += 1
        out.append("".join(result))
    return out


def waivers_for(raw_lines: list[str], index: int) -> set[str]:
    """Waiver rules applying to raw_lines[index] (same or preceding line)."""
    rules: set[str] = set()
    for k in (index, index - 1):
        if 0 <= k < len(raw_lines):
            m = ALLOW_RE.search(raw_lines[k])
            if m:
                rules.update(r.strip() for r in m.group(1).split(",") if r.strip())
    return rules


def unordered_iteration_findings(stripped: list[str]) -> list[tuple[int, str]]:
    names = set()
    for line in stripped:
        for m in UNORDERED_DECL_RE.finditer(line):
            names.add(m.group(1))
    if not names:
        return []
    alt = "|".join(re.escape(n) for n in sorted(names))
    range_for = re.compile(r"for\s*\([^;)]*:\s*(?:this->)?(%s)\s*\)" % alt)
    begin_iter = re.compile(r"\b(%s)\s*\.\s*(?:c?begin|c?end|c?rbegin|c?rend)\s*\(" % alt)
    found = []
    for idx, line in enumerate(stripped):
        m = range_for.search(line) or begin_iter.search(line)
        if m:
            found.append((idx, "iterates unordered container '%s'" % m.group(1)))
    return found


def scan_file(path: Path, root: Path) -> list[dict]:
    try:
        raw = path.read_text(encoding="utf-8").splitlines()
    except (OSError, UnicodeDecodeError) as error:
        print("ehsim_lint: cannot read %s: %s" % (path, error), file=sys.stderr)
        raise SystemExit(2)
    stripped = strip_comments_and_strings(raw)
    rel = path.relative_to(root).as_posix()
    findings = []

    def add(rule: str, idx: int, detail: str) -> None:
        if rule in waivers_for(raw, idx):
            return
        findings.append(
            {
                "rule": rule,
                "file": rel,
                "line": idx + 1,
                "text": " ".join(stripped[idx].split()),
                "detail": detail,
            }
        )

    for idx, detail in unordered_iteration_findings(stripped):
        add("unordered-iteration", idx, detail)
    simple = (
        ("raw-random", RAW_RANDOM_RE),
        ("wall-clock", WALL_CLOCK_RE),
        ("float-accumulation", FLOAT_RE),
        ("raw-mutex", RAW_MUTEX_RE),
    )
    for idx, line in enumerate(stripped):
        for rule, pattern in simple:
            if pattern.search(line):
                add(rule, idx, RULES[rule])
    return findings


def finding_key(f: dict) -> tuple[str, str, str]:
    return (f["rule"], f["file"], f["text"])


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the checkout containing this script)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline JSON (default: tools/ehsim_lint_baseline.json under --root)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument("--list-rules", action="store_true", help="print the rule table")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in RULES.items():
            print("%-22s %s" % (rule, description))
        return 0

    root = args.root.resolve()
    src = root / "src"
    if not src.is_dir():
        print("ehsim_lint: no src/ under %s" % root, file=sys.stderr)
        return 2
    baseline_path = args.baseline or root / "tools" / "ehsim_lint_baseline.json"

    findings = []
    for path in sorted(src.rglob("*")):
        if path.suffix in SOURCE_SUFFIXES and path.is_file():
            findings.extend(scan_file(path, root))

    if args.update_baseline:
        payload = sorted(
            (
                {"rule": f["rule"], "file": f["file"], "text": f["text"]}
                for f in findings
            ),
            key=lambda f: (f["rule"], f["file"], f["text"]),
        )
        baseline_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print("ehsim_lint: baseline updated with %d finding(s)" % len(payload))
        return 0

    baseline: set[tuple[str, str, str]] = set()
    if baseline_path.exists():
        try:
            for entry in json.loads(baseline_path.read_text(encoding="utf-8")):
                baseline.add((entry["rule"], entry["file"], entry["text"]))
        except (ValueError, KeyError, TypeError) as error:
            print("ehsim_lint: bad baseline %s: %s" % (baseline_path, error), file=sys.stderr)
            return 2

    new = [f for f in findings if finding_key(f) not in baseline]
    for f in sorted(new, key=lambda f: (f["file"], f["line"], f["rule"])):
        print("%s:%d: [%s] %s" % (f["file"], f["line"], f["rule"], f["detail"]))
        print("    %s" % f["text"])
    if new:
        print(
            "ehsim_lint: %d new finding(s) (%d baselined). Fix, waive with "
            "'// lint:allow <rule>', or --update-baseline." % (len(new), len(baseline)),
            file=sys.stderr,
        )
        return 1
    print("ehsim_lint: clean (%d file(s) scanned, %d baselined)" % (
        sum(1 for p in src.rglob("*") if p.suffix in SOURCE_SUFFIXES and p.is_file()),
        len(baseline),
    ))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
