/// \file ehsim_cli.cpp
/// \brief `ehsim` — run declarative experiment/sweep specs from JSON.
///
/// Scenarios are data, not code: a JSON spec file (docs/spec_format.md)
/// describes the excitation timeline, engine, parameter overrides and sweep
/// axes, and this driver executes it through the same run_experiment /
/// BatchRunner path the C++ API uses.
///
///   ehsim run spec.json [--threads N] [--warm-start] [--out DIR] [--probes LIST] [--quiet]
///   ehsim sweep sweep.json [--threads N] [--warm-start] [--out DIR] [--probes LIST] [--quiet]
///   ehsim optimise optimise.json [--warm-start] [--out DIR] [--quiet]
///   ehsim ensemble ensemble.json [--threads N] [--out DIR] [--quiet]
///   ehsim verify-accuracy spec.json [--kernels K1,K2] [--oracle-step H] [--out DIR]
///   ehsim autotune autotune.json [--out DIR] [--quiet]
///   ehsim resume spec.json --checkpoint-dir DIR [--checkpoint-every S] [run flags]
///   ehsim serve [--threads N] [--out DIR] [--script FILE] [--queue N] [--pool N] [--cold]
///   ehsim echo spec.json
///   ehsim compare expected actual [--rtol R] [--atol A] [--ignore k1,k2,...]
///   ehsim params
///
/// `run` accepts experiment and sweep spec types; `sweep` insists on a sweep
/// file; `optimise` insists on an optimise file and writes the search log +
/// optimum as <name>.optimise.json; `ensemble` insists on an ensemble file
/// and writes <name>.ensemble.json plus every replica's result files.
/// Results land as <name>.result.json plus
/// <name>.trace.csv per job under --out (default: current directory).
/// `run`/`sweep` take --checkpoint-every S --checkpoint-dir D to write
/// periodic per-job checkpoint files; `resume` continues a killed
/// checkpointed run from those files, bit-identical to the uninterrupted
/// run with the same cadence (docs/checkpoint_format.md).
/// `--probes` appends quick probe shorthands (`net:Vm`, `state:supercap.Vi`,
/// `power`, `harvested`, `energy`) to the spec before running. `compare`
/// diffs two result files (tolerance-aware, .json or .csv by extension) and
/// exits non-zero on mismatch — the golden-output CI tests are exactly
/// `ehsim run`/`ehsim optimise` + `ehsim compare`. `echo` parses and
/// re-serialises a spec (round-trip check / canonical formatting).
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "experiments/optimise_spec.hpp"
#include "experiments/scenarios.hpp"
#include "experiments/sweep.hpp"
#include "experiments/table_printer.hpp"
#include "io/compare.hpp"
#include "io/json.hpp"
#include "io/spec_json.hpp"
#include "serve/server.hpp"

namespace {

using namespace ehsim;

int usage(std::FILE* where = stderr) {
  std::fprintf(where,
               "usage: ehsim <command> [args]\n"
               "\n"
               "  run <spec.json> [--threads N] [--warm-start] [--batch-kernel K]\n"
               "      [--out DIR] [--probes LIST] [--quiet]\n"
               "      Execute an experiment or sweep spec; write per-job\n"
               "      <name>.result.json and <name>.trace.csv under --out (default .).\n"
               "      --probes appends quick probes (comma list of net:<name>,\n"
               "      state:<block.state>, power, harvested, energy) to the spec.\n"
               "      --warm-start seeds each job's initial operating point from a\n"
               "      structurally identical prior job (same results within solver\n"
               "      tolerance, fewer consistency iterations; off by default).\n"
               "      --batch-kernel picks jobs | lockstep | lockstep_expm: lockstep\n"
               "      marches the whole batch on one clock sharing Jacobian\n"
               "      factorisations (proposed engine only; identical jobs stay\n"
               "      bit-identical, diverged ones within compare tolerances);\n"
               "      lockstep_expm adds exact matrix-exponential segment\n"
               "      propagation. Overrides the sweep spec's batch_kernel.\n"
               "      --checkpoint-every S --checkpoint-dir D write one checkpoint\n"
               "      file per job into D at every S simulated seconds (atomic\n"
               "      replace; see docs/checkpoint_format.md).\n"
               "  sweep <sweep.json> [--threads N] [--warm-start] [--batch-kernel K]\n"
               "      [--out DIR] [--probes LIST] [--quiet]\n"
               "      Like run, but requires a sweep spec.\n"
               "  resume <spec.json> --checkpoint-dir D [--checkpoint-every S]\n"
               "      [run flags]\n"
               "      Continue a killed checkpointed run/sweep from the files in D.\n"
               "      With the same --checkpoint-every the finished results are\n"
               "      bit-identical (modulo cpu_seconds) to the uninterrupted run;\n"
               "      jobs without a checkpoint file start from t=0.\n"
               "  ensemble <ensemble.json> [--threads N] [--warm-start]\n"
               "      [--batch-kernel K] [--out DIR] [--quiet]\n"
               "      Run the K seed-varied replicas of an ensemble spec and write\n"
               "      <name>.ensemble.json (per-probe mean/stderr/min/max across\n"
               "      replicas) plus each replica's result/trace files.\n"
               "  optimise <optimise.json> [--warm-start] [--out DIR] [--quiet]\n"
               "      Run a declarative optimisation — golden section over one\n"
               "      variable, cyclic coordinate descent over a \"variables\"\n"
               "      array; write the search log + optimum as <name>.optimise.json\n"
               "      and the best run's result/trace files under --out.\n"
               "  verify-accuracy <spec.json> [--kernels K1,K2] [--oracle-step H]\n"
               "      [--threads N] [--out DIR] [--quiet]\n"
               "      Run an experiment or sweep spec on the extended-precision\n"
               "      reference oracle (src/ref) and on the fast path — once per\n"
               "      batch kernel — and write the measured max/RMS relative error\n"
               "      bounds on Vc, probes and harvested energy as\n"
               "      <name>.accuracy.json (docs/accuracy.md).\n"
               "  autotune <autotune.json> [--out DIR] [--quiet]\n"
               "      Run an autotune spec: one oracle run of the base experiment,\n"
               "      then memoised coordinate descent over the declared solver-knob\n"
               "      ladders (and batch kernels) for the cheapest configuration\n"
               "      whose measured error stays inside the spec's error budget.\n"
               "      Writes the deterministic search record <name>.autotune.json\n"
               "      plus the chosen configuration's result/trace files.\n"
               "  serve [--threads N] [--out DIR] [--script FILE] [--queue N]\n"
               "      [--pool N] [--cold]\n"
               "      Long-lived simulation service: read newline-delimited request\n"
               "      envelopes ({\"id\":..,\"type\":\"run|sweep|optimise|ensemble|resume|\n"
               "      cancel|stats|shutdown\",\"spec\":{..}} or \"spec_path\") from stdin\n"
               "      (or --script), with an optional \"checkpoint\" block on\n"
               "      run/sweep/resume,\n"
               "      stream JSON events to stdout, and keep diode tables, operating\n"
               "      points and prepared sessions warm across requests. Responses are\n"
               "      bit-identical to cold one-shot runs of the same specs (modulo\n"
               "      cpu_seconds / warm_start / shared_diode_table). --cold disables\n"
               "      the cross-request caches; docs/serve_protocol.md has the full\n"
               "      protocol.\n"
               "  echo <spec.json>\n"
               "      Parse a spec and print its canonical JSON to stdout.\n"
               "  compare <expected> <actual> [--rtol R] [--atol A] [--ignore k1,k2]\n"
               "      Tolerance-aware diff of two .json or .csv result files;\n"
               "      exits 2 when they differ.\n"
               "  params\n"
               "      List device parameter paths, spec fields, probe kinds,\n"
               "      probe statistics and optimise-spec keys.\n");
  return where == stdout ? 0 : 1;
}

struct RunArgs {
  std::string spec_path;
  std::size_t threads = 0;
  std::string out_dir = ".";
  std::string probes;          ///< comma list of --probes shorthands (may be empty)
  std::string batch_kernel;    ///< jobs | lockstep | lockstep_expm (empty: spec's choice)
  std::string checkpoint_dir;  ///< empty: checkpointing off
  double checkpoint_every = 0.0;
  int abort_after = -1;  ///< test hook: stop after N checkpoints (exit 3)
  bool warm_start = false;
  bool quiet = false;
};

std::optional<RunArgs> parse_run_args(const std::vector<std::string>& args) {
  RunArgs run;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--threads" && i + 1 < args.size()) {
      run.threads = static_cast<std::size_t>(std::stoul(args[++i]));
    } else if (arg == "--out" && i + 1 < args.size()) {
      run.out_dir = args[++i];
    } else if (arg == "--probes" && i + 1 < args.size()) {
      run.probes = args[++i];
    } else if (arg == "--batch-kernel" && i + 1 < args.size()) {
      run.batch_kernel = args[++i];
    } else if (arg == "--checkpoint-dir" && i + 1 < args.size()) {
      run.checkpoint_dir = args[++i];
    } else if (arg == "--checkpoint-every" && i + 1 < args.size()) {
      run.checkpoint_every = std::stod(args[++i]);
    } else if (arg == "--abort-after-checkpoints" && i + 1 < args.size()) {
      run.abort_after = std::stoi(args[++i]);
    } else if (arg == "--warm-start") {
      run.warm_start = true;
    } else if (arg == "--quiet") {
      run.quiet = true;
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "ehsim: unknown option '%s'\n", arg.c_str());
      return std::nullopt;
    } else if (run.spec_path.empty()) {
      run.spec_path = arg;
    } else {
      std::fprintf(stderr, "ehsim: unexpected argument '%s'\n", arg.c_str());
      return std::nullopt;
    }
  }
  if (run.spec_path.empty()) {
    std::fprintf(stderr, "ehsim: missing spec file\n");
    return std::nullopt;
  }
  return run;
}

/// Expand one --probes shorthand into a ProbeSpec: `net:<name>`,
/// `state:<block.state>`, `power`, `harvested` or `energy`. Labels default
/// to the target (net/state) or the kind id, so shorthand columns are
/// self-describing.
experiments::ProbeSpec probe_from_shorthand(const std::string& item) {
  experiments::ProbeSpec probe;
  const std::size_t colon = item.find(':');
  const std::string head = item.substr(0, colon);
  const std::string target = colon == std::string::npos ? "" : item.substr(colon + 1);
  if (head == "net") {
    probe.kind = experiments::ProbeSpec::Kind::kNodeVoltage;
    probe.target = target;
    probe.label = target;
  } else if (head == "state") {
    probe.kind = experiments::ProbeSpec::Kind::kStateVariable;
    probe.target = target;
    probe.label = target;
  } else if (head == "power" && target.empty()) {
    probe.kind = experiments::ProbeSpec::Kind::kGeneratorPower;
    probe.label = "generator_power";
  } else if (head == "harvested" && target.empty()) {
    probe.kind = experiments::ProbeSpec::Kind::kHarvestedPower;
    probe.label = "harvested_power";
  } else if (head == "energy" && target.empty()) {
    probe.kind = experiments::ProbeSpec::Kind::kStoredEnergy;
    probe.label = "stored_energy";
  } else {
    throw ehsim::ModelError("--probes item '" + item +
                            "' is not net:<name> | state:<block.state> | power | "
                            "harvested | energy");
  }
  probe.validate();
  return probe;
}

/// Append the --probes shorthands to an experiment spec (a sweep applies
/// them to its base, so every expanded job carries them).
void apply_probe_flag(experiments::ExperimentSpec& spec, const std::string& list) {
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string item = list.substr(start, comma - start);
    if (!item.empty()) {
      spec.probes.push_back(probe_from_shorthand(item));
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  spec.validate();  // catches duplicate labels against the spec's own probes
}

void write_results(const std::vector<experiments::ScenarioResult>& results,
                   const RunArgs& args) {
  for (const auto& result : results) {
    // io::write_result_files is the single writer shared with the serve
    // daemon — the serve determinism golden compares the files it produces.
    const std::string stem = io::write_result_files(args.out_dir, result);
    if (!args.quiet) {
      std::printf("wrote %s.result.json (+ .trace.csv, %zu points)\n", stem.c_str(),
                  result.time.size());
    }
  }
}

void print_summary(const std::vector<experiments::ScenarioResult>& results,
                   const experiments::BatchStats* batch) {
  experiments::TablePrinter table(
      {"job", "engine", "CPU", "steps", "final Vc [V]", "final f0r [Hz]"});
  for (const auto& result : results) {
    table.add_row({result.scenario, result.engine,
                   experiments::format_duration(result.cpu_seconds),
                   std::to_string(result.stats.steps),
                   experiments::format_double(result.final_vc, 4),
                   experiments::format_double(result.final_resonance_hz, 3)});
  }
  table.print(std::cout);
  if (batch != nullptr && batch->jobs > 1) {
    std::printf("%zu jobs, %zu shared diode-table hits\n", batch->jobs,
                batch->shared_table_hits);
  }
  if (batch != nullptr && (batch->warm_start_hits > 0 || batch->warm_start_rejects > 0)) {
    std::printf("warm starts: %zu seeded, %zu rejected, %llu total consistency "
                "iterations\n",
                batch->warm_start_hits, batch->warm_start_rejects,
                static_cast<unsigned long long>(batch->init_iterations));
  }
  if (batch != nullptr &&
      (batch->lockstep_groups > 0 || batch->shared_factorisations > 0 ||
       batch->expm_segments > 0)) {
    std::printf("lockstep: %llu shared groups, %llu shared factorisations, "
                "%llu expm segments\n",
                static_cast<unsigned long long>(batch->lockstep_groups),
                static_cast<unsigned long long>(batch->shared_factorisations),
                static_cast<unsigned long long>(batch->expm_segments));
  }
}

/// Resolve the checkpoint flags into CheckpointOptions (empty optional:
/// checkpointing off). --abort-after-checkpoints implies checkpointing.
std::optional<experiments::CheckpointOptions> checkpoint_options(const RunArgs& run,
                                                                 bool resume) {
  if (run.checkpoint_dir.empty() && run.checkpoint_every <= 0.0 && !resume) {
    return std::nullopt;
  }
  if (run.checkpoint_dir.empty()) {
    throw ehsim::ModelError("--checkpoint-every needs --checkpoint-dir");
  }
  experiments::CheckpointOptions checkpointing;
  checkpointing.every = run.checkpoint_every;
  checkpointing.dir = run.checkpoint_dir;
  checkpointing.resume = resume;
  checkpointing.abort_after = run.abort_after;
  return checkpointing;
}

/// `ehsim run` / `ehsim sweep` / `ehsim resume` — one body, spec-dispatched.
/// Exit codes: 0 done, 1 usage/model error, 3 stopped by
/// --abort-after-checkpoints (the checkpoint files are on disk for resume).
int cmd_run(const std::vector<std::string>& args, bool require_sweep, bool resume) {
  const auto run = parse_run_args(args);
  if (!run) {
    return 1;
  }
  io::AnySpec file = io::load_spec_file(run->spec_path);
  const std::optional<experiments::CheckpointOptions> checkpointing =
      checkpoint_options(*run, resume);

  experiments::BatchStats batch;
  experiments::BatchOptions options;
  options.threads = run->threads;
  options.warm_start = run->warm_start;
  if (!run->batch_kernel.empty()) {
    options.batch_kernel = experiments::parse_batch_kernel(run->batch_kernel);
  }

  // The one type-switch of the command: every other branch below is plain
  // option plumbing shared by all spec flavours.
  std::optional<std::vector<experiments::ScenarioResult>> results;
  const int wrong_spec = file.dispatch(io::overloaded{
      [&](experiments::ExperimentSpec& spec) {
        if (require_sweep) {
          std::fprintf(stderr, "ehsim sweep: '%s' is not a sweep spec (use `ehsim run`)\n",
                       run->spec_path.c_str());
          return 1;
        }
        if (!run->probes.empty()) {
          apply_probe_flag(spec, run->probes);
        }
        // Single experiments route through the batch layer too, so
        // --warm-start and the counters behave uniformly (one job: the
        // producer seeds it).
        options.threads = 1;  // one job — run inline, never spin up a pool
        const std::vector<experiments::ScenarioJob> jobs{
            experiments::ScenarioJob{spec, std::nullopt}};
        results = checkpointing
                      ? experiments::run_scenario_batch_checkpointed(jobs, options,
                                                                     *checkpointing, &batch)
                      : std::optional(experiments::run_scenario_batch(jobs, options, &batch));
        return 0;
      },
      [&](experiments::SweepSpec& sweep) {
        if (!run->probes.empty()) {
          apply_probe_flag(sweep.base, run->probes);
        }
        options.warm_start = options.warm_start || sweep.warm_start;
        if (run->batch_kernel.empty()) {
          options.batch_kernel = sweep.batch_kernel;
        }
        results = checkpointing
                      ? experiments::run_sweep_checkpointed(sweep, options, *checkpointing,
                                                            &batch)
                      : std::optional(experiments::run_sweep(sweep, options, &batch));
        return 0;
      },
      [&](experiments::OptimiseSpec&) {
        std::fprintf(stderr, "ehsim run: '%s' is an optimise spec (use `ehsim optimise`)\n",
                     run->spec_path.c_str());
        return 1;
      },
      [&](experiments::EnsembleSpec&) {
        std::fprintf(stderr, "ehsim run: '%s' is an ensemble spec (use `ehsim ensemble`)\n",
                     run->spec_path.c_str());
        return 1;
      },
      [&](experiments::AutotuneSpec&) {
        std::fprintf(stderr, "ehsim run: '%s' is an autotune spec (use `ehsim autotune`)\n",
                     run->spec_path.c_str());
        return 1;
      }});
  if (wrong_spec != 0) {
    return wrong_spec;
  }
  if (!results) {
    // The --abort-after-checkpoints hook stopped the run mid-flight; the
    // checkpoint files are committed, so `ehsim resume` can finish it.
    if (!run->quiet) {
      std::printf("stopped after %d checkpoint(s); resume with `ehsim resume %s "
                  "--checkpoint-dir %s`\n",
                  run->abort_after, run->spec_path.c_str(), run->checkpoint_dir.c_str());
    }
    return 3;
  }
  write_results(*results, *run);
  if (!run->quiet) {
    print_summary(*results, &batch);
  }
  return 0;
}

int cmd_ensemble(const std::vector<std::string>& args) {
  const auto run = parse_run_args(args);
  if (!run) {
    return 1;
  }
  if (!run->probes.empty()) {
    std::fprintf(stderr,
                 "ehsim ensemble: --probes is not supported (declare probes in the "
                 "spec's base experiment)\n");
    return 1;
  }
  io::AnySpec file = io::load_spec_file(run->spec_path);
  experiments::EnsembleSpec* spec = file.get_if<experiments::EnsembleSpec>();
  if (spec == nullptr) {
    std::fprintf(stderr, "ehsim ensemble: '%s' is not an ensemble spec (use `ehsim run`)\n",
                 run->spec_path.c_str());
    return 1;
  }
  experiments::BatchOptions options;
  options.threads = run->threads;
  options.warm_start = run->warm_start || spec->warm_start;
  options.batch_kernel = run->batch_kernel.empty()
                             ? spec->batch_kernel
                             : experiments::parse_batch_kernel(run->batch_kernel);
  experiments::BatchStats batch;
  const experiments::EnsembleResult result = experiments::run_ensemble(*spec, options, &batch);
  const std::string stem = io::write_ensemble_result_files(run->out_dir, result);
  if (!run->quiet) {
    std::printf("wrote %s.ensemble.json (%zu replicas)\n", stem.c_str(), result.runs.size());
    print_summary(result.runs, &batch);
    std::printf("ensemble final Vc [V]: mean %s +- %s stderr (min %s, max %s)\n",
                experiments::format_double(result.final_vc.mean, 4).c_str(),
                experiments::format_double(result.final_vc.stderr_mean, 4).c_str(),
                experiments::format_double(result.final_vc.minimum, 4).c_str(),
                experiments::format_double(result.final_vc.maximum, 4).c_str());
  }
  return 0;
}

int cmd_optimise(const std::vector<std::string>& args) {
  const auto run = parse_run_args(args);
  if (!run) {
    return 1;
  }
  if (!run->probes.empty()) {
    std::fprintf(stderr,
                 "ehsim optimise: --probes is not supported (declare probes in the "
                 "spec's base experiment)\n");
    return 1;
  }
  if (run->threads != 0) {
    std::fprintf(stderr,
                 "ehsim optimise: --threads is not supported (every line-search "
                 "probe depends on the previous bracket)\n");
    return 1;
  }
  io::AnySpec file = io::load_spec_file(run->spec_path);
  experiments::OptimiseSpec* optimise = file.get_if<experiments::OptimiseSpec>();
  if (optimise == nullptr) {
    std::fprintf(stderr, "ehsim optimise: '%s' is not an optimise spec (use `ehsim run`)\n",
                 run->spec_path.c_str());
    return 1;
  }
  if (run->warm_start) {
    optimise->warm_start = true;
  }

  const experiments::OptimiseResult result = experiments::run_optimise(*optimise);
  std::filesystem::create_directories(run->out_dir);
  const std::string stem =
      (std::filesystem::path(run->out_dir) / io::safe_file_stem(result.name)).string();
  io::write_file(stem + ".optimise.json", io::to_json(result).dump(2) + "\n");
  write_results({result.best_run}, *run);
  if (!run->quiet) {
    std::printf("wrote %s.optimise.json (%zu evaluations)\n", stem.c_str(),
                result.evaluations.size());
    if (result.warm_start) {
      std::printf("warm starts: %zu seeded, %zu rejected, %llu total consistency "
                  "iterations\n",
                  result.warm_start_hits, result.warm_start_rejects,
                  static_cast<unsigned long long>(result.init_iterations));
    }
    if (!result.variables.empty()) {
      // Multi-variable coordinate descent: one "path = value" per axis.
      std::string point;
      for (std::size_t i = 0; i < result.variables.size(); ++i) {
        if (i > 0) {
          point += ", ";
        }
        point += result.variables[i] + " = " +
                 experiments::format_double(result.best_nd.x[i], 6);
      }
      std::printf("%s %s: best %s = %s at %s (%zu sweeps, %s of probe '%s')\n",
                  result.maximise ? "maximised" : "minimised", result.name.c_str(),
                  result.statistic.c_str(),
                  experiments::format_double(result.best_nd.value, 6).c_str(),
                  point.c_str(), result.best_nd.sweeps, result.statistic.c_str(),
                  optimise->objective.c_str());
    } else {
      std::printf("%s %s: best %s = %s at %s (%s of probe '%s')\n",
                  result.maximise ? "maximised" : "minimised", result.name.c_str(),
                  result.statistic.c_str(),
                  experiments::format_double(result.best.value, 6).c_str(),
                  (result.variable + " = " + experiments::format_double(result.best.x, 6))
                      .c_str(),
                  result.statistic.c_str(), optimise->objective.c_str());
    }
  }
  return 0;
}

/// Parse a comma list of batch-kernel ids ("jobs,lockstep_expm").
std::vector<experiments::BatchKernel> parse_kernel_list(const std::string& list) {
  std::vector<experiments::BatchKernel> kernels;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string item = list.substr(start, comma - start);
    if (!item.empty()) {
      kernels.push_back(experiments::parse_batch_kernel(item));
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return kernels;
}

/// `ehsim verify-accuracy` — run a spec on the extended-precision reference
/// oracle and on the fast path (once per batch kernel), write the measured
/// error bounds as <name>.accuracy.json.
int cmd_verify_accuracy(const std::vector<std::string>& args) {
  std::string spec_path;
  std::string kernels;
  experiments::AccuracyOptions options;
  std::string out_dir = ".";
  bool quiet = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--kernels" && i + 1 < args.size()) {
      kernels = args[++i];
    } else if (arg == "--oracle-step" && i + 1 < args.size()) {
      options.oracle_step = std::stod(args[++i]);
    } else if (arg == "--threads" && i + 1 < args.size()) {
      options.threads = static_cast<std::size_t>(std::stoul(args[++i]));
    } else if (arg == "--out" && i + 1 < args.size()) {
      out_dir = args[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "ehsim verify-accuracy: unknown option '%s'\n", arg.c_str());
      return 1;
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      std::fprintf(stderr, "ehsim verify-accuracy: unexpected argument '%s'\n", arg.c_str());
      return 1;
    }
  }
  if (spec_path.empty()) {
    std::fprintf(stderr, "ehsim verify-accuracy: missing spec file\n");
    return 1;
  }
  if (!kernels.empty()) {
    options.kernels = parse_kernel_list(kernels);
  }
  io::AnySpec file = io::load_spec_file(spec_path);
  std::optional<experiments::AccuracyReport> report;
  const int wrong_spec = file.dispatch(io::overloaded{
      [&](const experiments::ExperimentSpec& spec) {
        report = experiments::run_accuracy(spec, options);
        return 0;
      },
      [&](const experiments::SweepSpec& sweep) {
        report = experiments::run_accuracy(sweep, options);
        return 0;
      },
      [&](const auto&) {
        std::fprintf(stderr,
                     "ehsim verify-accuracy: '%s' is not an experiment or sweep spec\n",
                     spec_path.c_str());
        return 1;
      }});
  if (wrong_spec != 0) {
    return wrong_spec;
  }
  std::filesystem::create_directories(out_dir);
  const std::string stem =
      (std::filesystem::path(out_dir) / io::safe_file_stem(report->name)).string();
  io::write_file(stem + ".accuracy.json", io::to_json(*report).dump(2) + "\n");
  if (!quiet) {
    std::printf("wrote %s.accuracy.json (oracle: %llu steps at h = %g s)\n", stem.c_str(),
                static_cast<unsigned long long>(report->oracle_steps), report->oracle_step);
    experiments::TablePrinter table(
        {"kernel", "jobs", "max |Vc| rel err", "final Vc rel err", "energy rel err"});
    for (const experiments::KernelAccuracy& row : report->kernels) {
      table.add_row({row.kernel, std::to_string(row.jobs.size()),
                     experiments::format_double(row.bounds.vc_max_rel_error, 6),
                     experiments::format_double(row.bounds.final_vc_rel_error, 6),
                     experiments::format_double(row.bounds.energy_rel_error, 6)});
    }
    table.print(std::cout);
  }
  return 0;
}

/// `ehsim autotune` — run an autotune spec, write the deterministic search
/// record as <name>.autotune.json plus the chosen configuration's result
/// and trace files.
int cmd_autotune(const std::vector<std::string>& args) {
  const auto run = parse_run_args(args);
  if (!run) {
    return 1;
  }
  if (!run->probes.empty() || run->threads != 0) {
    std::fprintf(stderr,
                 "ehsim autotune: --probes/--threads are not supported (the search is "
                 "sequential; declare probes in the spec's base experiment)\n");
    return 1;
  }
  io::AnySpec file = io::load_spec_file(run->spec_path);
  const experiments::AutotuneSpec* spec = file.get_if<experiments::AutotuneSpec>();
  if (spec == nullptr) {
    std::fprintf(stderr, "ehsim autotune: '%s' is not an autotune spec (use `ehsim run`)\n",
                 run->spec_path.c_str());
    return 1;
  }
  const experiments::AutotuneOutcome outcome = experiments::run_autotune(*spec);
  const experiments::AutotuneResult& result = outcome.result;
  std::filesystem::create_directories(run->out_dir);
  const std::string stem =
      (std::filesystem::path(run->out_dir) / io::safe_file_stem(result.name)).string();
  io::write_file(stem + ".autotune.json", io::to_json(result).dump(2) + "\n");
  write_results({outcome.best_run}, *run);
  if (!run->quiet) {
    std::printf("wrote %s.autotune.json (%llu evaluations, %llu sweeps)\n", stem.c_str(),
                static_cast<unsigned long long>(result.evaluations),
                static_cast<unsigned long long>(result.sweeps));
    std::string point;
    for (std::size_t i = 0; i < result.paths.size(); ++i) {
      if (i > 0) {
        point += ", ";
      }
      point += result.paths[i] + " = " +
               experiments::format_double(result.chosen_values[i], 6);
    }
    if (result.feasible) {
      std::printf("chosen: %s on kernel %s — cost %s (%.1f%% of baseline), error %s "
                  "within budget %s\n",
                  point.c_str(), result.chosen_kernel.c_str(),
                  experiments::format_double(result.chosen_cost, 0).c_str(),
                  100.0 * result.cost_ratio,
                  experiments::format_double(result.chosen_error, 6).c_str(),
                  experiments::format_double(result.error_budget, 6).c_str());
    } else {
      std::printf("no configuration met the budget %s; closest: %s on kernel %s "
                  "(error %s)\n",
                  experiments::format_double(result.error_budget, 6).c_str(), point.c_str(),
                  result.chosen_kernel.c_str(),
                  experiments::format_double(result.chosen_error, 6).c_str());
    }
  }
  return 0;
}

int cmd_serve(const std::vector<std::string>& args) {
  serve::ServerOptions options;
  std::string script;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--threads" && i + 1 < args.size()) {
      options.threads = static_cast<std::size_t>(std::stoul(args[++i]));
    } else if (arg == "--out" && i + 1 < args.size()) {
      options.out_dir = args[++i];
    } else if (arg == "--script" && i + 1 < args.size()) {
      script = args[++i];
    } else if (arg == "--queue" && i + 1 < args.size()) {
      options.queue_capacity = static_cast<std::size_t>(std::stoul(args[++i]));
    } else if (arg == "--pool" && i + 1 < args.size()) {
      options.pool_capacity = static_cast<std::size_t>(std::stoul(args[++i]));
    } else if (arg == "--cold") {
      options.cross_request_caches = false;
    } else {
      std::fprintf(stderr, "ehsim serve: unknown option '%s'\n", arg.c_str());
      return 1;
    }
  }
  if (!script.empty()) {
    std::ifstream in(script);
    if (!in) {
      std::fprintf(stderr, "ehsim serve: cannot open script '%s'\n", script.c_str());
      return 1;
    }
    serve::Server server(in, std::cout, options);
    return server.run();
  }
  serve::Server server(std::cin, std::cout, options);
  return server.run();
}

int cmd_echo(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    std::fprintf(stderr, "ehsim echo: expected exactly one spec file\n");
    return 1;
  }
  const io::AnySpec file = io::load_spec_file(args[0]);
  const io::JsonValue json =
      file.dispatch([](const auto& spec) { return io::to_json(spec); });
  std::printf("%s\n", json.dump(2).c_str());
  return 0;
}

int cmd_compare(const std::vector<std::string>& args) {
  std::vector<std::string> paths;
  io::CompareOptions options;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--rtol" && i + 1 < args.size()) {
      options.rtol = std::stod(args[++i]);
    } else if (arg == "--atol" && i + 1 < args.size()) {
      options.atol = std::stod(args[++i]);
    } else if (arg == "--ignore" && i + 1 < args.size()) {
      std::string list = args[++i];
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string key = list.substr(start, comma - start);
        if (!key.empty()) {
          options.ignore_keys.push_back(key);
        }
        if (comma == std::string::npos) {
          break;
        }
        start = comma + 1;
      }
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "ehsim compare: unknown option '%s'\n", arg.c_str());
      return 1;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr, "ehsim compare: expected <expected> <actual>\n");
    return 1;
  }

  const auto is_csv = [](const std::string& path) {
    return path.size() >= 4 && path.substr(path.size() - 4) == ".csv";
  };
  if (is_csv(paths[0]) != is_csv(paths[1])) {
    std::fprintf(stderr, "ehsim compare: cannot compare '%s' with '%s' — one is CSV, "
                         "the other is not\n",
                 paths[0].c_str(), paths[1].c_str());
    return 1;
  }
  std::vector<std::string> diffs;
  if (is_csv(paths[0])) {
    diffs = io::compare_csv(io::read_file(paths[0]), io::read_file(paths[1]), options);
  } else {
    diffs = io::compare_json(io::JsonValue::parse(io::read_file(paths[0])),
                             io::JsonValue::parse(io::read_file(paths[1])), options);
  }
  if (diffs.empty()) {
    std::printf("match: %s == %s (rtol %g, atol %g)\n", paths[0].c_str(), paths[1].c_str(),
                options.rtol, options.atol);
    return 0;
  }
  std::fprintf(stderr, "MISMATCH between %s and %s:\n", paths[0].c_str(), paths[1].c_str());
  for (const std::string& diff : diffs) {
    std::fprintf(stderr, "  %s\n", diff.c_str());
  }
  return 2;
}

int cmd_params() {
  std::printf("device parameters (overrides, sweep axes, optimise variables):\n");
  for (const std::string& path : experiments::param_paths()) {
    std::printf("  %s\n", path.c_str());
  }
  std::printf("\nspec fields (sweep axes, optimise variables):\n");
  for (const std::string& path : experiments::spec_field_paths()) {
    std::printf("  %s\n", path.c_str());
  }
  std::printf("\nprobe kinds (spec \"probes\" entries; keys: label, kind, target,\n"
              "window_start, window_end, threshold, record):\n");
  for (const std::string& kind : experiments::probe_kind_ids()) {
    std::printf("  %s\n", kind.c_str());
  }
  std::printf("\nprobe statistics (optimise \"statistic\"; duty_cycle/crossings need a\n"
              "threshold on the probe):\n");
  for (const std::string& statistic : experiments::probe_statistic_ids()) {
    std::printf("  %s\n", statistic.c_str());
  }
  std::printf("\noptimise spec keys (type \"optimise\"; one variable via\n"
              "variable/lower/upper, or several via the \"variables\" array):\n");
  for (const std::string& key : experiments::optimise_spec_keys()) {
    std::printf("  %s\n", key.c_str());
  }
  std::printf("\noptimise \"variables\" entry keys (per search axis):\n");
  for (const std::string& key : experiments::optimise_variable_keys()) {
    std::printf("  %s\n", key.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  const std::string command = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "run") {
      return cmd_run(args, /*require_sweep=*/false, /*resume=*/false);
    }
    if (command == "sweep") {
      return cmd_run(args, /*require_sweep=*/true, /*resume=*/false);
    }
    if (command == "resume") {
      return cmd_run(args, /*require_sweep=*/false, /*resume=*/true);
    }
    if (command == "ensemble") {
      return cmd_ensemble(args);
    }
    if (command == "optimise" || command == "optimize") {
      return cmd_optimise(args);
    }
    if (command == "verify-accuracy") {
      return cmd_verify_accuracy(args);
    }
    if (command == "autotune") {
      return cmd_autotune(args);
    }
    if (command == "serve") {
      return cmd_serve(args);
    }
    if (command == "echo") {
      return cmd_echo(args);
    }
    if (command == "compare") {
      return cmd_compare(args);
    }
    if (command == "params") {
      return cmd_params();
    }
    if (command == "--help" || command == "-h" || command == "help") {
      return usage(stdout);
    }
    // Machine-parseable failure: one JSON line naming the offending field,
    // plus the human usage text; exit status stays nonzero either way.
    io::JsonValue error = io::JsonValue::make_object();
    error.set("error", "unknown command");
    error.set("command", command);
    error.set("expected",
              "run | sweep | resume | ensemble | optimise | verify-accuracy | autotune | "
              "serve | echo | compare | params | help");
    std::fprintf(stderr, "%s\n", error.dump(-1).c_str());
    return usage();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "ehsim: %s\n", error.what());
    return 1;
  }
}
