# Golden-output CI test: run `ehsim run` (or `ehsim optimise`/`ehsim
# autotune`, via MODE) on a checked-in spec and diff the JSON/CSV output
# against the checked-in golden result with the tolerance-aware
# `ehsim compare` (wall-clock fields ignored).
#
# Required -D variables: EHSIM (binary), SPEC (spec file), GOLDEN_DIR,
# OUT_DIR, NAME (job name / file stem).
# Optional: MODE (run | optimise | autotune, default run), EXTRA_ARGS
# (extra space-separated arguments appended to the run command, e.g. a
# --probes list), RESULT_NAME (autotune only: file stem of the chosen
# configuration's result files — the *base* experiment's name; default
# NAME).

foreach(required EHSIM SPEC GOLDEN_DIR OUT_DIR NAME)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "golden_test.cmake: missing -D${required}")
  endif()
endforeach()
if(NOT DEFINED MODE)
  set(MODE run)
endif()
if(DEFINED EXTRA_ARGS)
  separate_arguments(EXTRA_ARGS)
else()
  set(EXTRA_ARGS "")
endif()

if(MODE STREQUAL "optimise")
  execute_process(
    COMMAND ${EHSIM} optimise ${SPEC} --out ${OUT_DIR} --quiet ${EXTRA_ARGS}
    RESULT_VARIABLE run_rc)
  if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "ehsim optimise failed (${run_rc})")
  endif()

  # cpu_seconds appears once per evaluation inside best_run; min/max step
  # and the solver statistics are deterministic and stay compared.
  execute_process(
    COMMAND ${EHSIM} compare
            ${GOLDEN_DIR}/${NAME}.optimise.json ${OUT_DIR}/${NAME}.optimise.json
            --rtol 1e-6 --atol 1e-9 --ignore cpu_seconds
    RESULT_VARIABLE json_rc)
  if(NOT json_rc EQUAL 0)
    message(FATAL_ERROR "golden optimise JSON mismatch (${json_rc})")
  endif()

  message(STATUS "golden optimise output matches for ${NAME}")
  return()
endif()

if(MODE STREQUAL "autotune")
  if(NOT DEFINED RESULT_NAME)
    set(RESULT_NAME ${NAME})
  endif()
  execute_process(
    COMMAND ${EHSIM} autotune ${SPEC} --out ${OUT_DIR} --quiet ${EXTRA_ARGS}
    RESULT_VARIABLE run_rc)
  if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "ehsim autotune failed (${run_rc})")
  endif()

  # The search record is wall-clock-free by construction — only FP noise is
  # tolerated, nothing is ignored.
  execute_process(
    COMMAND ${EHSIM} compare
            ${GOLDEN_DIR}/${NAME}.autotune.json ${OUT_DIR}/${NAME}.autotune.json
            --rtol 1e-6 --atol 1e-9
    RESULT_VARIABLE json_rc)
  if(NOT json_rc EQUAL 0)
    message(FATAL_ERROR "golden autotune JSON mismatch (${json_rc})")
  endif()

  # The chosen configuration's re-run, named after the base experiment.
  execute_process(
    COMMAND ${EHSIM} compare
            ${GOLDEN_DIR}/${RESULT_NAME}.result.json ${OUT_DIR}/${RESULT_NAME}.result.json
            --rtol 1e-6 --atol 1e-9 --ignore cpu_seconds
    RESULT_VARIABLE best_rc)
  if(NOT best_rc EQUAL 0)
    message(FATAL_ERROR "golden autotune best-run mismatch (${best_rc})")
  endif()

  message(STATUS "golden autotune output matches for ${NAME}")
  return()
endif()

execute_process(
  COMMAND ${EHSIM} run ${SPEC} --out ${OUT_DIR} --quiet ${EXTRA_ARGS}
  RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "ehsim run failed (${run_rc})")
endif()

execute_process(
  COMMAND ${EHSIM} compare
          ${GOLDEN_DIR}/${NAME}.result.json ${OUT_DIR}/${NAME}.result.json
          --rtol 1e-6 --atol 1e-9 --ignore cpu_seconds
  RESULT_VARIABLE json_rc)
if(NOT json_rc EQUAL 0)
  message(FATAL_ERROR "golden JSON mismatch (${json_rc})")
endif()

execute_process(
  COMMAND ${EHSIM} compare
          ${GOLDEN_DIR}/${NAME}.trace.csv ${OUT_DIR}/${NAME}.trace.csv
          --rtol 1e-6 --atol 1e-9
  RESULT_VARIABLE csv_rc)
if(NOT csv_rc EQUAL 0)
  message(FATAL_ERROR "golden CSV trace mismatch (${csv_rc})")
endif()

message(STATUS "golden output matches for ${NAME}")
