# Serve-daemon determinism golden: drive `ehsim serve` end to end with a
# scripted session (run x2, sweep, optimise, stats, shutdown), then assert
#   1. every result file the daemon wrote is BIT-IDENTICAL (rtol 0, atol 0)
#      to a cold one-shot `ehsim run|sweep|optimise` of the same spec —
#      ignoring only the explicitly run-dependent keys cpu_seconds,
#      warm_start and shared_diode_table;
#   2. the cross-request caches actually engaged: the stats event reports at
#      least one session-pool hit, and the daemon exits 0 with no error
#      events.
#
# Required -D variables: EHSIM (binary), SPEC_DIR (checked-in specs:
# golden_charging.json, golden_serve_sweep.json, golden_optimise.json),
# OUT_DIR (scratch).

foreach(required EHSIM SPEC_DIR OUT_DIR)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "serve_golden_test.cmake: missing -D${required}")
  endif()
endforeach()

set(ONESHOT_DIR ${OUT_DIR}/oneshot)
set(SERVE_DIR ${OUT_DIR}/serve)
file(REMOVE_RECURSE ${ONESHOT_DIR} ${SERVE_DIR})
file(MAKE_DIRECTORY ${ONESHOT_DIR} ${SERVE_DIR})

# ---- cold one-shot reference runs ------------------------------------------
execute_process(
  COMMAND ${EHSIM} run ${SPEC_DIR}/golden_charging.json --out ${ONESHOT_DIR} --quiet
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "one-shot run failed (${rc})")
endif()
execute_process(
  COMMAND ${EHSIM} sweep ${SPEC_DIR}/golden_serve_sweep.json --out ${ONESHOT_DIR} --quiet
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "one-shot sweep failed (${rc})")
endif()
execute_process(
  COMMAND ${EHSIM} optimise ${SPEC_DIR}/golden_optimise.json --out ${ONESHOT_DIR} --quiet
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "one-shot optimise failed (${rc})")
endif()

# ---- scripted daemon session -----------------------------------------------
# Request 2 repeats request 1's spec, so it must be served from the prepared-
# session pool (the stats assertion below).
set(SCRIPT ${OUT_DIR}/serve_script.ndjson)
file(WRITE ${SCRIPT} "\
{\"id\": 1, \"type\": \"run\", \"spec_path\": \"${SPEC_DIR}/golden_charging.json\"}
{\"id\": 2, \"type\": \"run\", \"spec_path\": \"${SPEC_DIR}/golden_charging.json\"}
{\"id\": 3, \"type\": \"sweep\", \"spec_path\": \"${SPEC_DIR}/golden_serve_sweep.json\"}
{\"id\": 4, \"type\": \"optimise\", \"spec_path\": \"${SPEC_DIR}/golden_optimise.json\"}
{\"id\": 5, \"type\": \"stats\"}
{\"id\": 6, \"type\": \"shutdown\"}
")

execute_process(
  COMMAND ${EHSIM} serve --script ${SCRIPT} --out ${SERVE_DIR}
  OUTPUT_VARIABLE events
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ehsim serve exited ${rc}")
endif()

if(events MATCHES "\"event\":\"error\"")
  message(FATAL_ERROR "serve session emitted an error event:\n${events}")
endif()
if(NOT events MATCHES "\"event\":\"shutdown\"")
  message(FATAL_ERROR "serve session never acknowledged shutdown:\n${events}")
endif()
# The repeated run (id 2) must have been served from the session pool.
if(NOT events MATCHES "\"session_pool\":{[^}]*\"hits\":([1-9][0-9]*)")
  message(FATAL_ERROR "stats report no session-pool hits:\n${events}")
endif()
# The sweep and optimise requests must have consumed the cross-request
# operating-point caches.
if(NOT events MATCHES "\"op_cache\":{[^}]*\"seeded_runs\":([1-9][0-9]*)")
  message(FATAL_ERROR "stats report no cross-request operating-point seeds:\n${events}")
endif()

# ---- bit-identity: every daemon file equals its cold one-shot twin ---------
file(GLOB reference_files RELATIVE ${ONESHOT_DIR} ${ONESHOT_DIR}/*)
list(LENGTH reference_files reference_count)
if(reference_count EQUAL 0)
  message(FATAL_ERROR "one-shot reference directory is empty")
endif()
foreach(name ${reference_files})
  if(NOT EXISTS ${SERVE_DIR}/${name})
    message(FATAL_ERROR "daemon did not write ${name}")
  endif()
  if(name MATCHES "\\.csv$")
    set(ignore_args "")
  else()
    set(ignore_args --ignore cpu_seconds,warm_start,shared_diode_table)
  endif()
  execute_process(
    COMMAND ${EHSIM} compare ${ONESHOT_DIR}/${name} ${SERVE_DIR}/${name}
            --rtol 0 --atol 0 ${ignore_args}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "serve result ${name} is not bit-identical to the cold one-shot")
  endif()
endforeach()

message(STATUS "serve session bit-identical to cold one-shots across "
               "${reference_count} files, with cross-request cache hits")
