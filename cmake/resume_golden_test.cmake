# Kill/resume golden CI test: the checkpoint/restart acceptance gate.
#
# Runs the same experiment spec twice with an identical checkpoint cadence:
# once straight through, once aborted after its first checkpoint (the CLI's
# --abort-after-checkpoints kill hook, exit code 3) and finished with
# `ehsim resume` from the files left on disk. The two result documents and
# traces must agree bit for bit (--rtol 0 --atol 0), ignoring only
# cpu_seconds — no tolerance games, a restored run IS the original run.
#
# Required -D variables: EHSIM (binary), SPEC (experiment spec file),
# OUT_DIR (scratch), NAME (job name / file stem).
# Optional: EVERY (checkpoint cadence in simulated seconds, default 0.15).

foreach(required EHSIM SPEC OUT_DIR NAME)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "resume_golden_test.cmake: missing -D${required}")
  endif()
endforeach()
if(NOT DEFINED EVERY)
  set(EVERY 0.15)
endif()

file(REMOVE_RECURSE ${OUT_DIR})

# 1. The uninterrupted reference, checkpointing at the same cadence (chunk
#    boundaries are part of the step trajectory, so both executions must
#    cut at the same absolute simulated times).
execute_process(
  COMMAND ${EHSIM} run ${SPEC} --out ${OUT_DIR}/full --quiet
          --checkpoint-dir ${OUT_DIR}/ckpt_full --checkpoint-every ${EVERY}
  RESULT_VARIABLE full_rc)
if(NOT full_rc EQUAL 0)
  message(FATAL_ERROR "uninterrupted checkpointed run failed (${full_rc})")
endif()

# 2. The killed run: stop right after the first committed checkpoint file.
execute_process(
  COMMAND ${EHSIM} run ${SPEC} --out ${OUT_DIR}/killed --quiet
          --checkpoint-dir ${OUT_DIR}/ckpt_kill --checkpoint-every ${EVERY}
          --abort-after-checkpoints 1
  RESULT_VARIABLE kill_rc)
if(NOT kill_rc EQUAL 3)
  message(FATAL_ERROR "aborted run should exit 3 (stopped), got ${kill_rc}")
endif()
if(EXISTS ${OUT_DIR}/killed/${NAME}.result.json)
  message(FATAL_ERROR "aborted run must not write a result document")
endif()

# 3. Resume from the checkpoint files and finish.
execute_process(
  COMMAND ${EHSIM} resume ${SPEC} --out ${OUT_DIR}/resumed --quiet
          --checkpoint-dir ${OUT_DIR}/ckpt_kill --checkpoint-every ${EVERY}
  RESULT_VARIABLE resume_rc)
if(NOT resume_rc EQUAL 0)
  message(FATAL_ERROR "ehsim resume failed (${resume_rc})")
endif()

# 4. Bit identity, modulo wall-clock cost.
execute_process(
  COMMAND ${EHSIM} compare
          ${OUT_DIR}/full/${NAME}.result.json ${OUT_DIR}/resumed/${NAME}.result.json
          --rtol 0 --atol 0 --ignore cpu_seconds
  RESULT_VARIABLE json_rc)
if(NOT json_rc EQUAL 0)
  message(FATAL_ERROR "resumed result diverged from the uninterrupted run (${json_rc})")
endif()

execute_process(
  COMMAND ${EHSIM} compare
          ${OUT_DIR}/full/${NAME}.trace.csv ${OUT_DIR}/resumed/${NAME}.trace.csv
          --rtol 0 --atol 0
  RESULT_VARIABLE csv_rc)
if(NOT csv_rc EQUAL 0)
  message(FATAL_ERROR "resumed trace diverged from the uninterrupted run (${csv_rc})")
endif()

message(STATUS "kill/resume output is bit-identical for ${NAME}")
