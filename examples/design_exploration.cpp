/// \file design_exploration.cpp
/// \brief Automated design-space exploration — the paper's motivation.
///
/// "The main motivation for the research into fast simulation of energy
/// harvesters is development of an automated design approach by which the
/// best topology and optimal parameters of energy harvester are obtained
/// iteratively using multiple simulations." (paper §V)
///
/// This example sweeps the Dickson multiplier stage count and stage
/// capacitance, running a short charging transient for every candidate with
/// the proposed engine, and reports the design maximising the average
/// charging current into the storage. The 20-candidate grid fans out across
/// a sim::BatchRunner thread pool — every candidate owns its model and
/// engine, so the parallel sweep is bit-identical to a serial one — and a
/// golden-section refinement then polishes the winner.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "experiments/cpu_timer.hpp"
#include "experiments/optimise.hpp"
#include "experiments/scenarios.hpp"
#include "sim/batch_runner.hpp"
#include "sim/harvester_session.hpp"

namespace {

/// Average charging current into the supercapacitor over the last 4 s of a
/// 10 s transient, for one design candidate.
double charging_current_ua(std::size_t stages, double stage_cap) {
  using namespace ehsim;
  auto params = experiments::experiment_params(experiments::charging_scenario(10.0));
  params.supercap.initial_voltage = 3.3;  // operating point of interest
  params.multiplier.stages = stages;
  params.multiplier.stage_capacitance = stage_cap;

  sim::HarvesterSession session(params);
  session.run_until(6.0);  // settle the pump

  double charge = 0.0;
  double t_prev = session.time();
  const std::size_t ic = session.system().ic_index();
  session.add_observer([&](double t, std::span<const double>, std::span<const double> y) {
    charge += y[ic] * (t - t_prev);
    t_prev = t;
  });
  session.run_until(10.0);
  return charge / 4.0 * 1e6;
}

struct Candidate {
  std::size_t stages = 0;
  double stage_cap = 0.0;
};

}  // namespace

int main() {
  using namespace ehsim;

  std::printf("design exploration: Dickson stage count x stage capacitance\n");
  std::printf("objective: average charging current into the storage at Vc = 3.3 V\n\n");

  const std::vector<std::size_t> stage_options{3, 4, 5, 6, 7};
  const std::vector<double> cap_options{10e-6, 22e-6, 47e-6, 100e-6};

  std::vector<Candidate> grid;
  for (std::size_t stages : stage_options) {
    for (double c : cap_options) {
      grid.push_back(Candidate{stages, c});
    }
  }

  experiments::WallTimer timer;

  // Phase 1: the whole candidate grid in parallel (deterministic order).
  sim::BatchRunner runner;  // hardware concurrency
  const std::vector<double> currents =
      runner.map_items(grid, [](const Candidate& candidate, std::size_t) {
        return charging_current_ua(candidate.stages, candidate.stage_cap);
      });

  std::printf("%8s", "stages");
  for (double c : cap_options) {
    std::printf("  %7.0fuF", c * 1e6);
  }
  std::printf("\n");

  double best = -1.0;
  std::size_t best_stages = 0;
  double best_cap = 0.0;
  std::size_t slot = 0;
  for (std::size_t stages : stage_options) {
    std::printf("%8zu", stages);
    for (double c : cap_options) {
      const double ua = currents[slot++];
      std::printf("  %7.2fuA", ua);
      if (ua > best) {
        best = ua;
        best_stages = stages;
        best_cap = c;
      }
    }
    std::printf("\n");
  }

  std::printf("\nbest grid design: %zu stages at %.0f uF -> %.2f uA into the storage\n",
              best_stages, best_cap * 1e6, best);
  std::printf("(grid swept on %zu worker threads)\n", runner.thread_count());

  // Phase 2: refine the stage capacitance around the grid winner with a
  // golden-section search — the "optimal parameters obtained iteratively
  // using multiple simulations" loop of the paper's conclusion. Sequential
  // by nature: every probe depends on the previous bracket.
  experiments::OptimiseOptions options;
  options.max_evaluations = 12;
  options.x_tolerance = 0.02;
  const auto refined = experiments::golden_section_maximise(
      [best_stages](double cap) { return charging_current_ua(best_stages, cap); },
      0.5 * best_cap, 2.0 * best_cap, options);
  std::printf("refined optimum: %.1f uF -> %.2f uA (%zu extra simulations)\n",
              refined.x * 1e6, refined.value, refined.evaluations);

  std::printf("\n%zu transient simulations in %.1f s wall time (%zu workers) — the\n"
              "iterative design flow the paper's technique was built to enable.\n",
              grid.size() + refined.evaluations, timer.elapsed_seconds(),
              runner.thread_count());
  return EXIT_SUCCESS;
}
