/// \file quickstart.cpp
/// \brief Minimal end-to-end use of the ehsim public API.
///
/// Builds the complete tunable energy harvester of the paper (microgenerator
/// + 5-stage Dickson multiplier + supercapacitor + microcontroller), runs a
/// few seconds of transient with the proposed linearised state-space engine
/// and prints the headline quantities. The sim::HarvesterSession handle owns
/// the whole model -> engine -> digital-kernel lifecycle.
///
/// Usage: quickstart [simulated_seconds]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/linearised_solver.hpp"
#include "sim/harvester_session.hpp"

int main(int argc, char** argv) {
  using namespace ehsim;

  const double t_end = argc > 1 ? std::stod(argv[1]) : 2.0;

  // 1. Describe the device (defaults reproduce the paper's case study).
  harvester::HarvesterParams params;

  // 2. One handle: mixed-technology system (analogue blocks + digital MCU)
  //    plus the proposed engine over its assembler.
  sim::HarvesterSession::Options options;
  options.with_mcu = true;
  sim::HarvesterSession session(params, options);
  std::printf("model: %zu states, %zu terminal variables (paper: 11 states, 4 terminals)\n",
              session.system().assembler().num_states(),
              session.system().assembler().num_nets());

  // 3. Record waveforms.
  auto& trace = session.enable_trace(1e-2);
  trace.probe_net("Vc");
  const std::size_t vm = session.system().vm_index();
  const std::size_t im = session.system().im_index();
  trace.probe_expression("P_gen", [vm, im](std::span<const double>, std::span<const double> y) {
    return y[vm] * y[im];
  });

  // 4. Co-simulate (initialise + MCU attach + scheduling happen inside).
  session.run_until(t_end);
  const double cpu = session.cpu_seconds();

  // 5. Report.
  const auto& stats = session.stats();
  const auto& solver = dynamic_cast<const core::LinearisedSolver&>(session.engine());
  std::printf("simulated %.2f s in %.3f s CPU (%.1fx real time)\n", t_end, cpu, t_end / cpu);
  std::printf("steps=%llu  jacobian builds=%llu  cache hits=%llu  eq.4 solves=%llu  "
              "history resets=%llu\n",
              static_cast<unsigned long long>(stats.steps),
              static_cast<unsigned long long>(stats.jacobian_builds),
              static_cast<unsigned long long>(stats.jacobian_reuses),
              static_cast<unsigned long long>(stats.algebraic_solves),
              static_cast<unsigned long long>(stats.history_resets));
  std::printf("step size: last=%.3g min=%.3g max=%.3g s; Eq.7 cap=%.3g s\n", stats.last_step,
              stats.min_step, stats.max_step, solver.stability_step_cap());
  const auto& vc = trace.column("Vc");
  const auto& power = trace.column("P_gen");
  double mean_power = 0.0;
  for (double p : power) {
    mean_power += p;
  }
  mean_power /= static_cast<double>(power.empty() ? 1 : power.size());
  std::printf("supercap voltage: %.4f V -> %.4f V\n", vc.front(), vc.back());
  std::printf("mean generator output power (coarse probe): %.1f uW\n", mean_power * 1e6);
  std::printf("resonant frequency now: %.2f Hz (ambient %.2f Hz)\n",
              session.system().generator().resonant_frequency(t_end),
              session.system().vibration().frequency_at(t_end));
  return EXIT_SUCCESS;
}
