/// \file quickstart.cpp
/// \brief Minimal end-to-end use of the ehsim public API.
///
/// Builds the complete tunable energy harvester of the paper (microgenerator
/// + 5-stage Dickson multiplier + supercapacitor + microcontroller), runs a
/// few seconds of transient with the proposed linearised state-space engine
/// and prints the headline quantities.
///
/// Usage: quickstart [simulated_seconds]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/linearised_solver.hpp"
#include "core/mixed_signal.hpp"
#include "core/trace.hpp"
#include "experiments/cpu_timer.hpp"
#include "harvester/harvester_system.hpp"

int main(int argc, char** argv) {
  using namespace ehsim;

  const double t_end = argc > 1 ? std::stod(argv[1]) : 2.0;

  // 1. Describe the device (defaults reproduce the paper's case study).
  harvester::HarvesterParams params;

  // 2. Build the mixed-technology system: analogue blocks + digital MCU.
  harvester::HarvesterSystem system(params, harvester::DeviceEvalMode::kPwlTable);
  std::printf("model: %zu states, %zu terminal variables (paper: 11 states, 4 terminals)\n",
              system.assembler().num_states(), system.assembler().num_nets());

  // 3. Create the proposed engine and record waveforms.
  core::LinearisedSolver solver(system.assembler());
  core::TraceRecorder trace(solver, 1e-2);
  trace.probe_net("Vc");
  const std::size_t vm = system.vm_index();
  const std::size_t im = system.im_index();
  trace.probe_expression("P_gen", [vm, im](std::span<const double>, std::span<const double> y) {
    return y[vm] * y[im];
  });

  // 4. Initialise, attach the MCU probes, co-simulate.
  solver.initialise(0.0);
  system.attach_engine(solver);
  core::MixedSignalSimulator sim(solver, system.kernel());

  experiments::WallTimer timer;
  sim.run_until(t_end);
  const double cpu = timer.elapsed_seconds();

  // 5. Report.
  const auto& stats = solver.stats();
  std::printf("simulated %.2f s in %.3f s CPU (%.1fx real time)\n", t_end, cpu, t_end / cpu);
  std::printf("steps=%llu  jacobian builds=%llu  eq.4 solves=%llu  history resets=%llu\n",
              static_cast<unsigned long long>(stats.steps),
              static_cast<unsigned long long>(stats.jacobian_builds),
              static_cast<unsigned long long>(stats.algebraic_solves),
              static_cast<unsigned long long>(stats.history_resets));
  std::printf("step size: last=%.3g min=%.3g max=%.3g s; Eq.7 cap=%.3g s\n", stats.last_step,
              stats.min_step, stats.max_step, solver.stability_step_cap());
  const auto& vc = trace.column("Vc");
  const auto& power = trace.column("P_gen");
  double mean_power = 0.0;
  for (double p : power) {
    mean_power += p;
  }
  mean_power /= static_cast<double>(power.empty() ? 1 : power.size());
  std::printf("supercap voltage: %.4f V -> %.4f V\n", vc.front(), vc.back());
  std::printf("mean generator output power (coarse probe): %.1f uW\n", mean_power * 1e6);
  std::printf("resonant frequency now: %.2f Hz (ambient %.2f Hz)\n",
              system.generator().resonant_frequency(t_end),
              system.vibration().frequency_at(t_end));
  return EXIT_SUCCESS;
}
