/// \file scenario1_tuning.cpp
/// \brief The paper's Scenario 1 end-to-end: autonomous 1 Hz retuning.
///
/// Runs the complete mixed-technology system — microgenerator, Dickson
/// multiplier, supercapacitor and the microcontroller's Fig. 7 control loop
/// — through the frequency shift of Fig. 8, printing the control timeline
/// and a compact supercapacitor/power waveform. Optionally writes the full
/// trace as CSV.
///
/// Usage: scenario1_tuning [csv_path]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/trace.hpp"
#include "experiments/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace ehsim;

  auto spec = experiments::scenario1();
  spec.trace_interval = 0.2;  // coarse waveform for the console report

  // The experiment session wires the harvester model, the excitation
  // schedule, the engine and the decimated Vc trace in one call.
  sim::HarvesterSession run = experiments::make_experiment_session(spec);
  auto& system = run.system();
  core::TraceRecorder& trace = run.session().trace();
  const std::size_t vm = system.vm_index();
  const std::size_t im = system.im_index();
  trace.probe_expression("P_gen", [vm, im](std::span<const double>, std::span<const double> y) {
    return y[vm] * y[im];
  });

  const auto& shift = spec.excitation.events.front();
  std::printf("scenario 1: ambient %.0f Hz shifts to %.0f Hz at t = %.0f s; span %.0f s\n",
              spec.excitation.initial_frequency_hz, shift.frequency_hz, shift.time,
              spec.duration);
  run.run_until(spec.duration);
  std::printf("simulated in %.2f s CPU (%llu steps)\n\n", run.cpu_seconds(),
              static_cast<unsigned long long>(run.stats().steps));

  std::printf("microcontroller timeline (paper Fig. 7 flow):\n");
  for (const auto& event : system.mcu()->events()) {
    const char* what = "";
    switch (event.type) {
      case harvester::McuEvent::Type::kWakeup:
        what = "watchdog wake-up, Vc =";
        break;
      case harvester::McuEvent::Type::kEnergyLow:
        what = "energy too low, back to sleep; Vc =";
        break;
      case harvester::McuEvent::Type::kFrequencyMatched:
        what = "frequency matched, sleep; f0r =";
        break;
      case harvester::McuEvent::Type::kTuningStarted:
        what = "tuning started, target f =";
        break;
      case harvester::McuEvent::Type::kTuningCompleted:
        what = "tuning completed, f0r =";
        break;
      case harvester::McuEvent::Type::kTuningAborted:
        what = "tuning aborted (low energy), Vc =";
        break;
    }
    std::printf("  t = %7.2f s  %s %.3f\n", event.time, what, event.value);
  }

  std::printf("\nfinal resonance: %.2f Hz (ambient %.2f Hz)\n",
              system.generator().resonant_frequency(spec.duration),
              system.vibration().frequency_at(spec.duration));
  std::printf("supercap: %.4f V -> %.4f V\n", trace.column("Vc").front(),
              trace.column("Vc").back());

  if (argc > 1) {
    std::ofstream csv(argv[1]);
    trace.write_csv(csv);
    std::printf("trace written to %s (%zu points)\n", argv[1], trace.size());
  }
  return EXIT_SUCCESS;
}
