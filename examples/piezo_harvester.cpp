/// \file piezo_harvester.cpp
/// \brief Generality demo: piezoelectric and electrostatic front-ends.
///
/// The paper's conclusion claims the linearised state-space technique "can
/// be applied to other types of microgenerators such as electrostatic or
/// piezoelectric. All that is required are the model equations of each
/// component block." This example exercises both variant blocks:
///  * PiezoGenerator -> Dickson multiplier -> supercapacitor (the full
///    power-processing chain, unchanged from the electromagnetic case), and
///  * ElectrostaticGenerator trickle-charging the storage directly through
///    its high-impedance bias network.
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <memory>

#include "core/solver_config.hpp"
#include "sim/session.hpp"
#include "harvester/dickson_multiplier.hpp"
#include "harvester/electrostatic_generator.hpp"
#include "harvester/piezo_generator.hpp"
#include "harvester/supercapacitor.hpp"
#include "harvester/vibration_source.hpp"

namespace {

using namespace ehsim;

void run_piezo_chain(const harvester::VibrationProfile& vibration) {
  core::SystemAssembler assembler;
  harvester::PiezoParams gen_params;
  const auto gen = assembler.add_block(
      std::make_unique<harvester::PiezoGenerator>(gen_params, vibration));
  harvester::MultiplierParams mult_params;
  const auto mult = assembler.add_block(std::make_unique<harvester::DicksonMultiplier>(
      mult_params, harvester::DeviceEvalMode::kPwlTable));
  harvester::SupercapacitorParams cap_params;
  cap_params.initial_voltage = 0.5;
  const auto cap = assembler.add_block(
      std::make_unique<harvester::Supercapacitor>(cap_params, harvester::LoadParams{}));

  const auto vm = assembler.net("Vm");
  const auto im = assembler.net("Im");
  const auto vc = assembler.net("Vc");
  const auto ic = assembler.net("Ic");
  assembler.bind(gen, 0, vm);
  assembler.bind(gen, 1, im);
  assembler.bind(mult, harvester::DicksonMultiplier::kVm, vm);
  assembler.bind(mult, harvester::DicksonMultiplier::kIm, im);
  assembler.bind(mult, harvester::DicksonMultiplier::kVc, vc);
  assembler.bind(mult, harvester::DicksonMultiplier::kIc, ic);
  assembler.bind(cap, harvester::Supercapacitor::kVc, vc);
  assembler.bind(cap, harvester::Supercapacitor::kIc, ic);
  assembler.elaborate();

  // The piezo electrical pole (Cp against the electrode resistance) is much
  // faster than the electromagnetic coil dynamics and interacts with the
  // rectifier switching; a modest step ceiling keeps the explicit march well
  // inside the Eq. 7 envelope while the diode segments toggle.
  core::SolverConfig config;
  config.h_max = 2e-5;
  sim::Session session(assembler, config);
  session.run_until(4.0);  // settle the pump

  double port_energy = 0.0;
  double charge = 0.0;
  double t_prev = session.time();
  const auto vm_i = assembler.net_index(vm);
  const auto im_i = assembler.net_index(im);
  const auto ic_i = assembler.net_index(ic);
  session.add_observer([&](double t, std::span<const double>, std::span<const double> y) {
    const double dt = t - t_prev;
    t_prev = t;
    port_energy += y[vm_i] * y[im_i] * dt;
    charge += y[ic_i] * dt;
  });
  const double cpu_before = session.cpu_seconds();
  session.run_until(8.0);
  std::printf("piezoelectric -> multiplier -> storage   (%2zu states)\n",
              assembler.num_states());
  std::printf("  P_port = %6.1f uW, I_charge = %5.2f uA   (4 sim-s in %.2f s CPU)\n\n",
              port_energy / 4.0 * 1e6, charge / 4.0 * 1e6,
              session.cpu_seconds() - cpu_before);
}

/// Resistive AC load for the high-impedance electrostatic front-end.
class ResistiveLoad final : public core::AnalogBlock {
 public:
  explicit ResistiveLoad(double ohms) : AnalogBlock("load", 0, 2, 1), ohms_(ohms) {}
  void eval(double, std::span<const double>, std::span<const double> y,
            std::span<double>, std::span<double> fy) const override {
    fy[0] = y[1] - y[0] / ohms_;  // I = V / R into the load
  }
  void jacobians(double, std::span<const double>, std::span<const double>,
                 linalg::Matrix&, linalg::Matrix&, linalg::Matrix&,
                 linalg::Matrix& jyy) const override {
    jyy(0, 0) = -1.0 / ohms_;
    jyy(0, 1) = 1.0;
  }

 private:
  double ohms_;
};

void run_electrostatic_load(const harvester::VibrationProfile& vibration) {
  core::SystemAssembler assembler;
  harvester::ElectrostaticParams gen_params;
  const auto gen = assembler.add_block(
      std::make_unique<harvester::ElectrostaticGenerator>(gen_params, vibration));
  const double r_load = 1e9;  // constant-charge operation needs GOhm loads
  const auto load = assembler.add_block(std::make_unique<ResistiveLoad>(r_load));
  const auto v = assembler.net("V");
  const auto i = assembler.net("I");
  assembler.bind(gen, 0, v);
  assembler.bind(gen, 1, i);
  assembler.bind(load, 0, v);
  assembler.bind(load, 1, i);
  assembler.elaborate();

  sim::Session session(assembler);
  session.run_until(2.0);  // settle the resonant build-up
  double v2_integral = 0.0;
  double t_prev = session.time();
  session.add_observer([&](double t, std::span<const double>, std::span<const double> y) {
    v2_integral += y[0] * y[0] * (t - t_prev);
    t_prev = t;
  });
  const double cpu_before = session.cpu_seconds();
  session.run_until(4.0);
  const double v_rms = std::sqrt(v2_integral / 2.0);
  const double p_rms = v_rms * v_rms / r_load;
  std::printf("electrostatic -> 1 GOhm AC load           (%2zu states)\n",
              assembler.num_states());
  std::printf("  load voltage %.3f V rms, %.2f nW — nW-scale, as expected for an\n"
              "  unoptimised continuous-mode electrostatic transducer"
              "   (2 sim-s in %.2f s CPU)\n\n",
              v_rms, p_rms * 1e9, session.cpu_seconds() - cpu_before);
}

}  // namespace

int main() {
  harvester::VibrationParams vib_params;
  vib_params.acceleration_amplitude = 2.0;  // stronger shake for the small devices
  vib_params.initial_frequency_hz = 70.0;
  const harvester::VibrationProfile vibration(vib_params);

  std::printf("front-end generality: two further transducer physics through the same\n"
              "block interface and engine (paper section V)\n\n");
  run_piezo_chain(vibration);
  run_electrostatic_load(vibration);
  std::printf("(the electromagnetic front-end is exercised by quickstart and the\n"
              "scenario examples; only the block equations changed.)\n");
  return EXIT_SUCCESS;
}
