/// \file custom_block.cpp
/// \brief Extending ehsim with a user-defined component block.
///
/// Shows the complete block-author checklist on a worked example: a
/// thermoelectric generator (Seebeck voltage source with internal
/// resistance and thermal low-pass dynamics) feeding the stock storage
/// block — i.e. a *different energy-harvesting modality* expressed in the
/// paper's state-equations-plus-terminal-variables form (Fig. 3):
///
///   tau_th dTd/dt = (dT_ambient(t) - Td)      (thermal state)
///   fy: V - S*Td + R_int * I = 0               (electrical port)
///
/// Checklist: (1) dimensions (states / terminals / algebraic rows),
/// (2) eval, (3) jacobians, (4) optional names + initial state,
/// (5) optional jacobian_signature for reuse certification.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <numbers>

#include "core/block.hpp"
#include "sim/session.hpp"
#include "harvester/supercapacitor.hpp"

namespace {

/// Thermoelectric generator block: one thermal state, one electrical port.
class ThermoelectricGenerator final : public ehsim::core::AnalogBlock {
 public:
  ThermoelectricGenerator(double seebeck_v_per_k, double internal_ohms,
                          double thermal_tau_s)
      : AnalogBlock("teg", 1, 2, 1),
        seebeck_(seebeck_v_per_k),
        r_int_(internal_ohms),
        tau_(thermal_tau_s) {}

  /// Ambient temperature difference profile: slow 0.02 Hz swing around 20 K.
  [[nodiscard]] static double ambient_delta_t(double t) {
    return 20.0 + 8.0 * std::sin(2.0 * std::numbers::pi * 0.02 * t);
  }

  void initial_state(std::span<double> x) const override { x[0] = ambient_delta_t(0.0); }

  void eval(double t, std::span<const double> x, std::span<const double> y,
            std::span<double> fx, std::span<double> fy) const override {
    fx[0] = (ambient_delta_t(t) - x[0]) / tau_;          // thermal low-pass
    fy[0] = y[0] - seebeck_ * x[0] + r_int_ * y[1];      // V = S*Td - R*I
  }

  void jacobians(double, std::span<const double>, std::span<const double>,
                 ehsim::linalg::Matrix& jxx, ehsim::linalg::Matrix&,
                 ehsim::linalg::Matrix& jyx, ehsim::linalg::Matrix& jyy) const override {
    jxx(0, 0) = -1.0 / tau_;
    jyx(0, 0) = -seebeck_;
    jyy(0, 0) = 1.0;
    jyy(0, 1) = r_int_;
  }

  [[nodiscard]] std::string state_name(std::size_t) const override { return "dT"; }
  [[nodiscard]] std::string terminal_name(std::size_t i) const override {
    return i == 0 ? "V" : "I";
  }

  /// Linear constant-coefficient block: Jacobians never change.
  [[nodiscard]] std::uint64_t jacobian_signature(double, std::span<const double>,
                                                 std::span<const double>) const override {
    return 1;
  }

 private:
  double seebeck_;
  double r_int_;
  double tau_;
};

}  // namespace

int main() {
  using namespace ehsim;

  // 40 mV/K module with 5 Ohm internal resistance, 30 s thermal lag,
  // charging the stock supercapacitor block directly.
  core::SystemAssembler assembler;
  const auto teg =
      assembler.add_block(std::make_unique<ThermoelectricGenerator>(0.04, 5.0, 30.0));
  harvester::SupercapacitorParams cap_params;
  cap_params.initial_voltage = 0.0;
  const auto cap = assembler.add_block(
      std::make_unique<harvester::Supercapacitor>(cap_params, harvester::LoadParams{}));

  const auto v = assembler.net("V");
  const auto i = assembler.net("I");
  assembler.bind(teg, 0, v);
  assembler.bind(teg, 1, i);
  assembler.bind(cap, harvester::Supercapacitor::kVc, v);
  assembler.bind(cap, harvester::Supercapacitor::kIc, i);
  assembler.elaborate();

  std::printf("custom thermoelectric block + stock storage: %zu states, %zu terminals\n",
              assembler.num_states(), assembler.num_nets());

  // The generic Session drives a user-assembled model exactly like the
  // stock harvester: linearised engine, no digital kernel.
  sim::Session session(assembler);
  session.initialise(0.0);
  std::printf("\n#   t[s]   dT[K]    Vc[V]   I[mA]\n");
  for (int k = 1; k <= 10; ++k) {
    const double t = 30.0 * k;
    session.run_until(t);
    const auto& engine = session.engine();
    std::printf("%7.0f  %6.2f  %7.4f  %6.2f\n", t, engine.state()[0], engine.terminals()[0],
                engine.terminals()[1] * 1e3);
  }
  std::printf("\nthe storage charges toward the Seebeck open-circuit voltage through the\n"
              "module's internal resistance — a fourth harvesting modality built from\n"
              "one page of block code.\n");
  return EXIT_SUCCESS;
}
