/// \file bench_serve_amortisation.cpp
/// \brief Cross-request amortisation in the `ehsim serve` daemon.
///
/// The paper's design-study workload ("optimal parameters of energy
/// harvester ... obtained iteratively using multiple simulations") rarely
/// arrives as one batch: interactive tools re-issue near-identical optimise
/// requests one at a time. A cold CLI pays the PWL diode-table build and
/// every t=0 consistency iteration on each invocation; the daemon keeps the
/// process-wide diode-table cache and the exact-signature operating-point
/// cache warm across requests, so request k>1 is seeded by request 1's
/// converged points while staying bit-identical to a cold run.
///
/// This bench issues N identical optimise requests through an in-process
/// Server (stringstream transport, exactly what the CLI wraps) and compares
/// against N cold run_optimise() calls with the diode-table cache reset
/// between them. It fails unless the daemon's cross-request optimise cache
/// actually hit and both paths agree on the optimum.
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "experiments/cpu_timer.hpp"
#include "experiments/optimise_spec.hpp"
#include "experiments/scenarios.hpp"
#include "pwl/table_cache.hpp"
#include "serve/server.hpp"

int main() {
  using namespace ehsim::experiments;
  namespace io = ehsim::io;

  const bool smoke = ehsim::benchio::bench_span() == ehsim::benchio::BenchSpan::kSmoke;
  const std::size_t requests = smoke ? 3 : 5;

  OptimiseSpec spec;
  spec.name = "serve-tuning-study";
  spec.base = scenario1();
  spec.base.name = "serve-tuning-point";
  spec.base.with_mcu = false;
  spec.base.excitation.events.clear();  // steady 70 Hz ambient per candidate
  spec.base.duration = smoke ? 1.0 : 3.0;
  spec.base.trace_interval = 0.0;
  spec.base.probes.push_back(
      ProbeSpec{"P_gen", ProbeSpec::Kind::kGeneratorPower, "", spec.base.duration * 0.5});
  spec.variable = "spec.pre_tuned_hz";
  spec.lower = 66.0;
  spec.upper = 74.0;
  spec.objective = "P_gen";
  spec.statistic = "mean";
  spec.max_evaluations = smoke ? 10 : 16;
  spec.x_tolerance = 1e-3;

  std::printf("=== serve amortisation: %zu repeated optimise requests ===\n\n", requests);

  // Baseline: each request is a fresh process as far as the caches are
  // concerned — reset the process-wide diode-table cache before every call.
  WallTimer cold_timer;
  std::vector<double> cold_best;
  for (std::size_t i = 0; i < requests; ++i) {
    ehsim::pwl::reset_diode_table_cache();
    cold_best.push_back(run_optimise(spec).best.x);
  }
  const double cold_wall = cold_timer.elapsed_seconds();

  // Daemon: the same N requests through one long-lived Server.
  const std::string spec_json = io::to_json(spec).dump(-1);
  std::ostringstream script;
  for (std::size_t i = 0; i < requests; ++i) {
    script << "{\"id\": " << (i + 1) << ", \"type\": \"optimise\", \"spec\": " << spec_json
           << "}\n";
  }
  script << "{\"id\": " << (requests + 1) << ", \"type\": \"stats\"}\n";
  script << "{\"id\": " << (requests + 2) << ", \"type\": \"shutdown\"}\n";

  ehsim::pwl::reset_diode_table_cache();
  std::istringstream in(script.str());
  std::ostringstream out;
  WallTimer warm_timer;
  ehsim::serve::Server server(in, out, {});
  const int rc = server.run();
  const double warm_wall = warm_timer.elapsed_seconds();

  // Pull the per-request optima and the final cache counters off the wire.
  std::vector<double> warm_best;
  double cross_hits = 0.0;
  double diode_hits = 0.0;
  std::istringstream events(out.str());
  std::string line;
  while (std::getline(events, line)) {
    const io::JsonValue event = io::JsonValue::parse(line);
    const std::string& kind = event.at("event").as_string();
    if (kind == "result") {
      warm_best.push_back(event.at("result").at("best").at("x").as_number());
    } else if (kind == "stats") {
      cross_hits = event.at("optimise_cache").at("hits").as_number();
      diode_hits = event.at("diode_table").at("hits").as_number();
    } else if (kind == "error") {
      std::printf("unexpected error event: %s\n", line.c_str());
    }
  }

  bool identical = rc == 0 && warm_best.size() == cold_best.size();
  for (std::size_t i = 0; identical && i < warm_best.size(); ++i) {
    identical = warm_best[i] == cold_best[i];  // bit-identical optimum per request
  }

  std::printf("cold one-shots: %zu requests, %.2f s wall (%.2f s/request)\n", requests,
              cold_wall, cold_wall / static_cast<double>(requests));
  std::printf("serve daemon:   %zu requests, %.2f s wall (%.2f s/request), "
              "%.0f cross-request seed hits, %.0f diode-table hits\n",
              requests, warm_wall, warm_wall / static_cast<double>(requests), cross_hits,
              diode_hits);
  std::printf("speedup: %.2fx\n", cold_wall / warm_wall);

  // The first request must fill the caches and every later one must draw on
  // them; one-shot parity in the optimum is the determinism contract.
  const bool ok = identical && cross_hits > 0.0 && diode_hits > 0.0;
  std::printf("\ncross-request caches amortise at a bit-identical optimum: %s\n",
              ok ? "YES" : "NO");

  io::JsonValue doc = io::JsonValue::make_object();
  doc.set("bench", "serve_amortisation");
  doc.set("requests", static_cast<double>(requests));
  doc.set("cold_wall_seconds", cold_wall);
  doc.set("serve_wall_seconds", warm_wall);
  doc.set("speedup", cold_wall / warm_wall);
  doc.set("optimise_cache_hits", cross_hits);
  doc.set("diode_table_hits", diode_hits);
  doc.set("bit_identical", identical);
  ehsim::benchio::maybe_write_bench_json(doc);

  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
