/// \file bench_ablation_pwl.cpp
/// \brief Ablation A2: piecewise-linear table granularity (paper §III-B).
///
/// "To maintain high modelling accuracy the granularity of the piece-wise
/// linear models can be arbitrarily fine since the size of the look-up
/// tables does not affect the simulation speed."
///
/// Two measurements: (a) google-benchmark micro-timing of the table lookup
/// across sizes — flat, as claimed — versus the exact exponential
/// evaluation; (b) full-system runs across granularities showing accuracy
/// converging while CPU cost stays constant.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/linearised_solver.hpp"
#include "experiments/cpu_timer.hpp"
#include "experiments/metrics.hpp"
#include "experiments/scenarios.hpp"
#include "pwl/diode_table.hpp"
#include "sim/harvester_session.hpp"

namespace {

void BM_TableLookup(benchmark::State& state) {
  const ehsim::pwl::DiodeTable table(ehsim::pwl::DiodeParams{},
                                     static_cast<std::size_t>(state.range(0)));
  double vd = -0.5;
  for (auto _ : state) {
    vd += 0.001;
    if (vd > 0.15) {
      vd = -0.5;
    }
    benchmark::DoNotOptimize(table.conductance_and_source(vd));
  }
  state.SetLabel("segments=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_TableLookup)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_ExactShockley(benchmark::State& state) {
  const ehsim::pwl::DiodeParams params;
  double vd = -0.5;
  for (auto _ : state) {
    vd += 0.001;
    if (vd > 0.15) {
      vd = -0.5;
    }
    benchmark::DoNotOptimize(ehsim::pwl::diode_current(params, vd));
    benchmark::DoNotOptimize(ehsim::pwl::diode_conductance(params, vd));
  }
  state.SetLabel("transcendental evaluation (baseline engines)");
}
BENCHMARK(BM_ExactShockley);

void full_system_sweep() {
  using namespace ehsim;
  std::printf("\n--- full-system granularity sweep (4 s charging) ---\n");
  std::printf("%10s  %10s  %8s  %s\n", "segments", "CPU [s]", "steps", "V5(4s) [V]");
  for (std::size_t segments : {16u, 64u, 256u, 1024u, 4096u}) {
    auto spec = experiments::charging_scenario(4.0);
    auto params = experiments::experiment_params(spec);
    params.multiplier.table_segments = segments;
    sim::HarvesterSession session(params);
    session.run_until(4.0);
    std::printf("%10zu  %10.3f  %8llu  %.5f\n", segments, session.cpu_seconds(),
                static_cast<unsigned long long>(session.stats().steps),
                session.state()[session.system().assembler().state_index({1}, 4)]);
  }
  std::printf("lookup cost is size-independent; accuracy saturates by ~256 segments.\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Ablation A2: PWL table granularity (paper section III-B) ===\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  full_system_sweep();
  return 0;
}
