/// \file bench_ensemble.cpp
/// \brief Monte Carlo ensemble throughput: seed replicas through the batch
/// kernels.
///
/// An EnsembleSpec's replicas differ only in their random-walk drift
/// realisation — structurally they are clones, which is exactly the case
/// the lockstep SoA kernel exists for. This bench runs one K-replica
/// drifting-ambient ensemble through the jobs kernel (independent sessions
/// on a thread pool) and through the lockstep kernel (one shared clock,
/// shared Jacobian factorisations), and fails unless the lockstep march
/// actually shared work across the seed clones (groups formed, factorisations
/// shared) and reproduced its own ensemble statistics bit for bit on a
/// second execution.
#include <cstdio>
#include <cstdlib>

#include "bench_json.hpp"
#include "experiments/cpu_timer.hpp"
#include "experiments/ensemble.hpp"
#include "experiments/scenarios.hpp"

int main() {
  using namespace ehsim::experiments;
  namespace io = ehsim::io;

  const ehsim::benchio::BenchSpan span = ehsim::benchio::bench_span();
  const bool smoke = span == ehsim::benchio::BenchSpan::kSmoke;
  const bool full = span == ehsim::benchio::BenchSpan::kFull;
  const double duration = smoke ? 1.0 : (full ? 20.0 : 5.0);
  const std::size_t replicas = smoke ? 4 : (full ? 16 : 8);

  EnsembleSpec ensemble;
  ensemble.base = charging_scenario(duration);
  ensemble.base.name = "ensemble-drift";
  ensemble.base.trace_interval = 0.0;
  RandomWalkParams walk;
  walk.step_interval = 0.05;
  walk.frequency_sigma = 0.4;
  walk.seed = 1;
  walk.min_frequency_hz = 60.0;
  walk.max_frequency_hz = 80.0;
  ensemble.base.excitation.random_walk(duration * 0.1, duration * 0.8, walk);
  ensemble.base.probes.push_back(ProbeSpec{"P_gen", ProbeSpec::Kind::kGeneratorPower});
  ensemble.num_seeds = replicas;

  std::printf("=== ensemble: %zu seed replicas, %.1f s each ===\n\n", replicas, duration);

  BatchOptions jobs_options;
  jobs_options.batch_kernel = BatchKernel::kJobs;
  BatchStats jobs_stats;
  WallTimer jobs_timer;
  const EnsembleResult jobs = run_ensemble(ensemble, jobs_options, &jobs_stats);
  const double jobs_wall = jobs_timer.elapsed_seconds();

  BatchOptions lockstep_options;
  lockstep_options.batch_kernel = BatchKernel::kLockstep;
  BatchStats lockstep_stats;
  WallTimer lockstep_timer;
  const EnsembleResult lockstep = run_ensemble(ensemble, lockstep_options, &lockstep_stats);
  const double lockstep_wall = lockstep_timer.elapsed_seconds();

  std::printf("jobs kernel:     %.2f s wall, mean final Vc %.6f V (stderr %.2e)\n",
              jobs_wall, jobs.final_vc.mean, jobs.final_vc.stderr_mean);
  std::printf("lockstep kernel: %.2f s wall, mean final Vc %.6f V (stderr %.2e), "
              "%zu groups, %zu shared factorisations\n",
              lockstep_wall, lockstep.final_vc.mean, lockstep.final_vc.stderr_mean,
              lockstep_stats.lockstep_groups, lockstep_stats.shared_factorisations);

  // Clone-sharing: the lockstep march must have grouped the seed replicas
  // and shared factorisations, not degenerated into isolated sessions.
  const bool shared = lockstep_stats.jobs == replicas &&
                      lockstep_stats.lockstep_groups > 0 &&
                      lockstep_stats.shared_factorisations > 0;

  // Determinism: a second lockstep execution reproduces the statistics
  // bit for bit.
  const EnsembleResult again = run_ensemble(ensemble, lockstep_options, nullptr);
  const bool deterministic = again.final_vc.mean == lockstep.final_vc.mean &&
                             again.final_vc.stderr_mean == lockstep.final_vc.stderr_mean &&
                             again.final_vc.minimum == lockstep.final_vc.minimum &&
                             again.final_vc.maximum == lockstep.final_vc.maximum;

  // And the ensemble is not vacuous: the seeds produced distinct outcomes.
  const bool varied = jobs.final_vc.maximum > jobs.final_vc.minimum &&
                      jobs.final_vc.stderr_mean > 0.0;

  const bool ok = shared && deterministic && varied;
  std::printf("\nlockstep shares work across seed clones deterministically: %s\n",
              ok ? "YES" : "NO");

  io::JsonValue doc = io::JsonValue::make_object();
  doc.set("bench", "ensemble");
  doc.set("replicas", static_cast<double>(replicas));
  doc.set("sim_seconds", duration);
  doc.set("jobs_wall_seconds", jobs_wall);
  doc.set("lockstep_wall_seconds", lockstep_wall);
  doc.set("lockstep_groups", static_cast<double>(lockstep_stats.lockstep_groups));
  doc.set("shared_factorisations",
          static_cast<double>(lockstep_stats.shared_factorisations));
  doc.set("final_vc_mean", jobs.final_vc.mean);
  doc.set("final_vc_stderr", jobs.final_vc.stderr_mean);
  doc.set("lockstep_deterministic", deterministic);
  ehsim::benchio::maybe_write_bench_json(doc);

  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
