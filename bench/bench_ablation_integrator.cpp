/// \file bench_ablation_integrator.cpp
/// \brief Ablation A1: integration method/order for the explicit march.
///
/// The paper chooses "the multi-step Adams-Bashforth formula due to its
/// simplicity and accuracy" (§II). This ablation sweeps the AB order 1..4 on
/// the full harvester model and reports CPU cost, step counts and the
/// deviation of the supercapacitor trajectory from a tight reference run —
/// quantifying the accuracy/stability-cap trade-off behind the engine's
/// order-2 default.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/linearised_solver.hpp"
#include "experiments/cpu_timer.hpp"
#include "experiments/metrics.hpp"
#include "experiments/scenarios.hpp"
#include "experiments/table_printer.hpp"
#include "sim/harvester_session.hpp"

namespace {

struct RunResult {
  double cpu = 0.0;
  std::uint64_t steps = 0;
  std::vector<double> time;
  std::vector<double> v5;
};

RunResult run(std::size_t order, double h_max, double span) {
  using namespace ehsim;
  const auto spec = experiments::charging_scenario(span);
  const auto params = experiments::experiment_params(spec);
  sim::HarvesterSession::Options options;
  options.solver.max_ab_order = order;
  options.solver.h_max = h_max;
  sim::HarvesterSession session(params, options);
  const std::size_t v5_index = session.system().assembler().state_index({1}, 4);
  RunResult result;
  session.add_observer([&](double t, std::span<const double> x, std::span<const double>) {
    if (result.time.empty() || t - result.time.back() >= 0.01) {
      result.time.push_back(t);
      result.v5.push_back(x[v5_index]);
    }
  });
  session.run_until(span);
  result.cpu = session.cpu_seconds();
  result.steps = session.stats().steps;
  return result;
}

}  // namespace

int main() {
  using namespace ehsim::experiments;

  const bool full = std::getenv("EHSIM_BENCH_FULL") != nullptr;
  const double span = full ? 30.0 : 6.0;

  std::printf("=== Ablation A1: Adams-Bashforth order (paper section II) ===\n");
  std::printf("supercap charging, %.0f s simulated; reference: AB2 at h_max = 5 us\n\n", span);

  const RunResult reference = run(2, 5e-6, span);
  const auto grid = uniform_grid(1.0, span, 200);
  const auto ref_v5 = resample(reference.time, reference.v5, grid);

  TablePrinter table({"order", "CPU time", "steps", "CPU/sim-s", "V5 NRMSE vs reference"});
  for (std::size_t order = 1; order <= 4; ++order) {
    const RunResult result = run(order, 5e-4, span);
    const auto v5 = resample(result.time, result.v5, grid);
    table.add_row({"AB" + std::to_string(order), format_duration(result.cpu),
                   std::to_string(result.steps), format_double(result.cpu / span, 3),
                   format_double(nrmse(ref_v5, v5), 3)});
  }
  table.print(std::cout);
  std::printf("\nevery order runs AT its Eq. 7 stability cap on this stability-bound\n"
              "model, and the caps shrink with order (real-axis limits 2.0, 1.0, 6/11,\n"
              "0.3): AB4 takes ~6x the steps of AB1. Accuracy follows the step size —\n"
              "the smaller caps of the higher orders resolve the pump waveform better —\n"
              "so the choice is a pure cost/accuracy dial. AB2 (the engine default)\n"
              "pays ~30%% over AB1 for roughly half its error; AB4 doubles the cost\n"
              "again. This is the quantitative backing for the paper's choice of the\n"
              "multi-step Adams-Bashforth family with a modest order.\n");
  return EXIT_SUCCESS;
}
