/// \file bench_ablation_stepcontrol.cpp
/// \brief Ablation A3: the Eq. 7 stability rule and LLE control.
///
/// Demonstrates the paper's stability argument empirically: fixed steps
/// below the Eq. 7 limit integrate correctly, fixed steps above it diverge
/// ("the necessary condition for the forward march-in-time process ... is
/// that the step size be limited"), and the adaptive controller (stability
/// cap + LLE monitor) finds the productive step automatically.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/error.hpp"
#include "core/linearised_solver.hpp"
#include "experiments/cpu_timer.hpp"
#include "experiments/scenarios.hpp"
#include "experiments/table_printer.hpp"
#include "sim/harvester_session.hpp"

namespace {

struct Outcome {
  bool diverged = false;
  double cpu = 0.0;
  std::uint64_t steps = 0;
  double v5 = 0.0;
  double h_cap = 0.0;
};

Outcome run(double fixed_step, bool stability_cap, bool lle, double span) {
  using namespace ehsim;
  const auto spec = experiments::charging_scenario(span);
  const auto params = experiments::experiment_params(spec);
  sim::HarvesterSession::Options options;
  options.solver.fixed_step = fixed_step;
  options.solver.enable_stability_cap = stability_cap;
  options.solver.enable_lle_control = lle;
  sim::HarvesterSession session(params, options);
  Outcome outcome;
  session.initialise(0.0);
  try {
    session.run_until(span);
  } catch (const SolverError&) {
    outcome.diverged = true;
  }
  outcome.cpu = session.cpu_seconds();
  outcome.steps = session.stats().steps;
  const auto& solver = dynamic_cast<const core::LinearisedSolver&>(session.engine());
  outcome.h_cap = solver.stability_step_cap();
  if (!outcome.diverged) {
    outcome.v5 = session.state()[session.system().assembler().state_index({1}, 4)];
  }
  return outcome;
}

}  // namespace

int main() {
  using namespace ehsim::experiments;

  const bool full = std::getenv("EHSIM_BENCH_FULL") != nullptr;
  const double span = full ? 10.0 : 3.0;

  std::printf("=== Ablation A3: step control (paper Eqs. 3, 6, 7) ===\n");
  std::printf("supercap charging, %.0f s simulated span\n\n", span);

  TablePrinter table({"configuration", "outcome", "CPU", "steps", "V5 [V]"});

  // The adaptive reference: stability cap + LLE.
  const Outcome adaptive = run(0.0, true, true, span);
  table.add_row({"adaptive (Eq.7 cap + LLE)", adaptive.diverged ? "DIVERGED" : "ok",
                 format_duration(adaptive.cpu), std::to_string(adaptive.steps),
                 format_double(adaptive.v5, 4)});
  const double h_ref = adaptive.h_cap;

  for (double scale : {0.5, 0.9, 1.5, 3.0}) {
    const double h = h_ref * scale;
    const Outcome fixed = run(h, false, false, span);
    char label[96];
    std::snprintf(label, sizeof label, "fixed h = %.2f x Eq.7 cap (no safeguards)", scale);
    table.add_row({label, fixed.diverged ? "DIVERGED" : "ok", format_duration(fixed.cpu),
                   std::to_string(fixed.steps),
                   fixed.diverged ? "-" : format_double(fixed.v5, 4)});
  }
  // Fixed step WITH the cap enabled: the cap rescues an over-ambitious h.
  const Outcome rescued = run(h_ref * 3.0, true, false, span);
  table.add_row({"fixed h = 3.0 x cap, Eq.7 cap enabled", rescued.diverged ? "DIVERGED" : "ok",
                 format_duration(rescued.cpu), std::to_string(rescued.steps),
                 format_double(rescued.v5, 4)});

  table.print(std::cout);
  std::printf("\nthe Eq. 7 envelope is sharp: slightly inside it the march is stable,\n"
              "outside it the feed-forward sweep diverges — the paper's central\n"
              "stability claim, reproduced on the full 11-state harvester model.\n");
  return EXIT_SUCCESS;
}
