/// \file bench_table1_cpu_times.cpp
/// \brief Reproduces paper Table I: "CPU times of different simulation
/// environments" — the supercapacitor charging curve of the energy harvester.
///
/// The paper timed full charging runs on a Pentium 4: SystemVision
/// (VHDL-AMS) 4 h 24 min, OrCAD (PSPICE) 9 h 48 min, SystemC-A 6 h 40 min.
/// This bench runs the same experiment — fixed 70 Hz excitation, storage
/// charging from empty, no control activity — on the three Newton-Raphson
/// baseline profiles and on the proposed linearised state-space engine over
/// the identical model. Default: a scaled simulated span with
/// per-simulated-second extrapolation (the charge curve's CPU cost per
/// simulated second is constant after the initial transient); set
/// EHSIM_BENCH_FULL=1 for longer spans.
///
/// Absolute times are hardware-dependent; the reproducible observables are
/// (a) every NR profile is dramatically slower than the proposed engine and
/// (b) the profile ordering PSPICE > SystemC-A > SystemVision of Table I.
///
/// EHSIM_BENCH_SMOKE=1 runs a seconds-scale span (the CI bench-smoke job);
/// EHSIM_BENCH_JSON=<path> writes the measured rows as a JSON artifact.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "bench_json.hpp"
#include "experiments/scenarios.hpp"
#include "experiments/table_printer.hpp"

namespace {

struct Row {
  const char* label;
  ehsim::experiments::EngineKind kind;
  double paper_seconds;  ///< Table I value
};

}  // namespace

int main() {
  using namespace ehsim::experiments;

  const ehsim::benchio::BenchSpan mode = ehsim::benchio::bench_span();
  // Simulated seconds measured per engine.
  const double span = mode == ehsim::benchio::BenchSpan::kFull      ? 120.0
                      : mode == ehsim::benchio::BenchSpan::kSmoke   ? 4.0
                                                                    : 12.0;
  const double paper_charge_span = 4.0 * 3600.0;  // nominal full-charge span

  std::printf("=== Table I: CPU times of different simulation environments ===\n");
  std::printf("Supercapacitor charging curve, 70 Hz excitation, %.0f s simulated span\n",
              span);
  std::printf("(EHSIM_BENCH_FULL=1 lengthens the span; paper hosts: P4, 2 GB RAM)\n\n");

  const Row rows[] = {
      {"SystemVision (VHDL-AMS)", EngineKind::kSystemVision, 4.0 * 3600 + 24 * 60},
      {"OrCAD (PSPICE)", EngineKind::kPspice, 9.0 * 3600 + 48 * 60},
      {"SystemC-A (Visual C++)", EngineKind::kSystemCA, 6.0 * 3600 + 40 * 60},
      {"proposed (linearised state-space)", EngineKind::kProposed, 0.0},
  };

  TablePrinter table({"simulator", "CPU time", "CPU/sim-s", "extrapolated full charge",
                      "paper (Table I)", "steps", "NR iters"});

  double proposed_per_sim_second = 0.0;
  double baseline_sum = 0.0;
  int baseline_count = 0;

  ehsim::io::JsonValue doc = ehsim::io::JsonValue::make_object();
  doc.set("bench", "table1_cpu_times");
  doc.set("simulated_span", span);
  ehsim::io::JsonValue doc_rows = ehsim::io::JsonValue::make_array();

  for (const Row& row : rows) {
    ExperimentSpec spec = charging_scenario(span);
    spec.engine = row.kind;
    const ScenarioResult result = run_experiment(spec);
    const double per_sim_second = result.cpu_seconds / result.sim_seconds;
    if (row.kind == EngineKind::kProposed) {
      proposed_per_sim_second = per_sim_second;
    } else {
      baseline_sum += per_sim_second;
      ++baseline_count;
    }
    table.add_row({row.label, format_duration(result.cpu_seconds),
                   format_double(per_sim_second, 3) + " s",
                   format_duration(per_sim_second * paper_charge_span),
                   row.paper_seconds > 0.0 ? format_duration(row.paper_seconds) : "-",
                   std::to_string(result.stats.steps),
                   std::to_string(result.stats.newton_iterations)});

    ehsim::io::JsonValue entry = ehsim::io::JsonValue::make_object();
    entry.set("simulator", row.label);
    entry.set("engine", engine_kind_id(row.kind));
    entry.set("cpu_seconds", result.cpu_seconds);
    entry.set("cpu_per_sim_second", per_sim_second);
    entry.set("steps", result.stats.steps);
    entry.set("newton_iterations", result.stats.newton_iterations);
    doc_rows.push_back(std::move(entry));
  }
  table.print(std::cout);
  doc.set("rows", std::move(doc_rows));

  if (proposed_per_sim_second > 0.0 && baseline_count > 0) {
    const double mean_baseline = baseline_sum / baseline_count;
    doc.set("mean_baseline_over_proposed", mean_baseline / proposed_per_sim_second);
    std::printf(
        "\nmean NR-baseline / proposed CPU ratio: %.1fx\n"
        "paper's claim: >= two orders of magnitude vs commercial simulators; the\n"
        "measured ratio here is a lower bound (no commercial elaboration/event\n"
        "overhead is emulated — see DESIGN.md section 3).\n",
        mean_baseline / proposed_per_sim_second);
  }
  ehsim::benchio::maybe_write_bench_json(doc);
  return EXIT_SUCCESS;
}
