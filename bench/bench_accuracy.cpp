/// \file bench_accuracy.cpp
/// \brief Oracle accuracy bounds + error-budget autotune acceptance gate.
///
/// Two halves, both judged against the extended-precision reference oracle
/// (src/ref):
///   1. verify-accuracy over all three batch kernels of a charging scenario
///      with a mid-run retune — the measured Vc / energy error bounds land
///      in BENCH_accuracy.json so the per-push artifacts record the
///      accuracy trajectory next to the speed one.
///   2. an autotune run over an h_max x lle_tolerance ladder with a kernel
///      axis. The bench exits non-zero unless the tuner (a) declares a
///      feasible configuration, (b) that configuration does measurably less
///      work than the defaults (cost_ratio < 1), (c) an *independent*
///      re-measurement of the chosen configuration against the oracle stays
///      inside the tuner's own budget, and (d) a second autotune run
///      reproduces the deterministic search record exactly (operator==,
///      i.e. byte-identical JSON).
#include <cstdio>
#include <cstdlib>

#include "bench_json.hpp"
#include "experiments/accuracy.hpp"
#include "experiments/autotune.hpp"
#include "experiments/scenarios.hpp"

int main() {
  using namespace ehsim::experiments;
  namespace io = ehsim::io;

  const ehsim::benchio::BenchSpan span = ehsim::benchio::bench_span();
  const bool smoke = span == ehsim::benchio::BenchSpan::kSmoke;
  const bool full = span == ehsim::benchio::BenchSpan::kFull;
  const double duration = smoke ? 1.0 : (full ? 10.0 : 3.0);
  const double oracle_step = smoke ? 2e-4 : 1e-4;

  ExperimentSpec spec = scenario1();
  spec.name = "bench-accuracy";
  spec.duration = duration;
  spec.with_mcu = false;
  spec.trace_interval = 0.02;
  spec.power_bin_width = duration / 4.0;
  spec.excitation.events.clear();
  spec.excitation.step_frequency(duration * 0.4, 71.0);

  std::printf("=== oracle accuracy bounds: %.1f s charging + retune, oracle h = %g ===\n\n",
              duration, oracle_step);

  AccuracyOptions options;
  options.kernels = {BatchKernel::kJobs, BatchKernel::kLockstep,
                     BatchKernel::kLockstepExpm};
  options.oracle_step = oracle_step;
  const AccuracyReport report = run_accuracy(spec, options);

  std::printf("%-14s %12s %12s %12s\n", "kernel", "Vc max rel", "final Vc", "energy");
  for (const KernelAccuracy& row : report.kernels) {
    std::printf("%-14s %12.3e %12.3e %12.3e\n", row.kernel.c_str(),
                row.bounds.vc_max_rel_error, row.bounds.final_vc_rel_error,
                row.bounds.energy_rel_error);
  }

  AutotuneSpec tune;
  tune.name = "bench-autotune";
  tune.base = spec;
  tune.knobs.push_back({"solver.h_max", {0.0005, 0.001, 0.002}});
  tune.knobs.push_back({"solver.lle_tolerance", {0.25, 0.5}});
  tune.kernels = {BatchKernel::kJobs, BatchKernel::kLockstepExpm};
  tune.error_budget = 0.05;
  tune.oracle_step = oracle_step;
  tune.max_evaluations = 40;

  std::printf("\n=== autotune: budget %.2g on combined error ===\n\n", tune.error_budget);
  const AutotuneOutcome outcome = run_autotune(tune);
  const AutotuneResult& result = outcome.result;
  std::printf("baseline: cost %.0f, error %.3e\n", result.baseline_cost,
              result.baseline_error);
  std::printf("chosen:   cost %.0f, error %.3e, kernel %s, cost ratio %.3f "
              "(%zu evaluations, %zu sweeps)\n",
              result.chosen_cost, result.chosen_error, result.chosen_kernel.c_str(),
              result.cost_ratio, static_cast<std::size_t>(result.evaluations),
              static_cast<std::size_t>(result.sweeps));

  // (a) + (b): a feasible configuration that beats the defaults on the
  // deterministic work proxy.
  const bool tuned = result.feasible && result.chosen_error <= result.error_budget &&
                     result.cost_ratio < 1.0;

  // (c) the strong form of "inside its own budget": re-measure the chosen
  // spec independently instead of trusting the tuner's bookkeeping.
  AccuracyOptions recheck_options;
  recheck_options.kernels = {outcome.chosen_kernel};
  recheck_options.oracle_step = oracle_step;
  const AccuracyReport recheck = run_accuracy(outcome.chosen_spec, recheck_options);
  double remeasured = 0.0;
  for (const KernelAccuracy& row : recheck.kernels) {
    remeasured = row.bounds.combined();
  }
  const bool inside_budget = remeasured <= tune.error_budget;
  std::printf("re-measured chosen-config error: %.3e (budget %.2g) — %s\n", remeasured,
              tune.error_budget, inside_budget ? "inside" : "OUTSIDE");

  // (d) the search record is deterministic end to end.
  const bool deterministic = run_autotune(tune).result == result;

  const bool ok = tuned && inside_budget && deterministic;
  std::printf("\nautotune tunes within its own budget, deterministically: %s\n",
              ok ? "YES" : "NO");

  io::JsonValue doc = io::JsonValue::make_object();
  doc.set("bench", "accuracy");
  doc.set("sim_seconds", duration);
  doc.set("oracle_step", oracle_step);
  io::JsonValue kernels = io::JsonValue::make_array();
  for (const KernelAccuracy& row : report.kernels) {
    io::JsonValue entry = io::JsonValue::make_object();
    entry.set("kernel", row.kernel);
    entry.set("vc_max_rel_error", row.bounds.vc_max_rel_error);
    entry.set("final_vc_rel_error", row.bounds.final_vc_rel_error);
    entry.set("energy_rel_error", row.bounds.energy_rel_error);
    kernels.push_back(std::move(entry));
  }
  doc.set("kernels", std::move(kernels));
  doc.set("autotune_baseline_cost", result.baseline_cost);
  doc.set("autotune_chosen_cost", result.chosen_cost);
  doc.set("autotune_cost_ratio", result.cost_ratio);
  doc.set("autotune_chosen_error", result.chosen_error);
  doc.set("autotune_remeasured_error", remeasured);
  doc.set("autotune_feasible", result.feasible);
  doc.set("autotune_deterministic", deterministic);
  ehsim::benchio::maybe_write_bench_json(doc);

  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
