/// \file bench_optimise_warm_start.cpp
/// \brief Cross-evaluation operating-point warm starts in the optimise
/// driver — the paper's §V workload ("optimal parameters of energy
/// harvester ... obtained iteratively using multiple simulations").
///
/// A golden-section tuning study evaluates the same model at a sequence of
/// nearby parameter values; every evaluation used to pay the full cold-start
/// consistency iterations for its t=0 operating point. With
/// OptimiseSpec::warm_start the driver caches converged operating points by
/// structural signature and seeds later evaluations, which must reproduce
/// the same optimum (seeded solves converge to the engine's own init
/// tolerance) with measurably fewer total consistency iterations.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_json.hpp"
#include "experiments/cpu_timer.hpp"
#include "experiments/optimise_spec.hpp"
#include "experiments/scenarios.hpp"

int main() {
  using namespace ehsim::experiments;

  OptimiseSpec spec;
  spec.name = "tuning-study";
  spec.base = scenario1();
  spec.base.name = "tuning-point";
  spec.base.with_mcu = false;
  spec.base.excitation.events.clear();  // steady 70 Hz ambient per candidate
  spec.base.duration =
      ehsim::benchio::bench_span() == ehsim::benchio::BenchSpan::kSmoke ? 1.5 : 6.0;
  spec.base.trace_interval = 0.0;
  spec.base.probes.push_back(
      ProbeSpec{"P_gen", ProbeSpec::Kind::kGeneratorPower, "", spec.base.duration * 0.5});
  spec.variable = "spec.pre_tuned_hz";
  spec.lower = 66.0;
  spec.upper = 74.0;
  spec.objective = "P_gen";
  spec.statistic = "mean";
  spec.max_evaluations = 24;
  spec.x_tolerance = 1e-4;

  std::printf("=== optimise warm starts: golden-section tuning study ===\n");
  std::printf("variable %s in [%.1f, %.1f] Hz, objective mean %s, %zu evaluations max\n\n",
              spec.variable.c_str(), spec.lower, spec.upper, spec.objective.c_str(),
              spec.max_evaluations);

  WallTimer cold_timer;
  const OptimiseResult cold = run_optimise(spec);
  const double cold_wall = cold_timer.elapsed_seconds();

  OptimiseSpec warm_spec = spec;
  warm_spec.warm_start = true;
  WallTimer warm_timer;
  const OptimiseResult warm = run_optimise(warm_spec);
  const double warm_wall = warm_timer.elapsed_seconds();

  std::printf("cold:        best %s = %.4f Hz (objective %.6e), %zu evaluations, "
              "%llu consistency iterations, %.2f s wall\n",
              spec.variable.c_str(), cold.best.x, cold.best.value,
              cold.evaluations.size(),
              static_cast<unsigned long long>(cold.init_iterations), cold_wall);
  std::printf("warm-start:  best %s = %.4f Hz (objective %.6e), %zu evaluations, "
              "%llu consistency iterations (%zu seeded, %zu rejected), %.2f s wall\n",
              spec.variable.c_str(), warm.best.x, warm.best.value,
              warm.evaluations.size(),
              static_cast<unsigned long long>(warm.init_iterations),
              warm.warm_start_hits, warm.warm_start_rejects, warm_wall);

  const double dx = std::abs(warm.best.x - cold.best.x);
  std::printf("\n|Δbest.x| = %.2e Hz (bracket tolerance %.1e)\n", dx, spec.x_tolerance);
  const bool ok = warm.init_iterations < cold.init_iterations &&
                  warm.warm_start_hits > 0 && dx <= spec.x_tolerance * spec.upper;
  std::printf("warm start saves consistency iterations at the same optimum: %s\n",
              ok ? "YES" : "NO");

  namespace io = ehsim::io;
  io::JsonValue doc = io::JsonValue::make_object();
  doc.set("bench", "optimise_warm_start");
  doc.set("evaluations", static_cast<double>(cold.evaluations.size()));
  doc.set("cold_wall_seconds", cold_wall);
  doc.set("warm_wall_seconds", warm_wall);
  doc.set("best_x_cold", cold.best.x);
  doc.set("best_x_warm", warm.best.x);
  io::JsonValue warm_json = io::JsonValue::make_object();
  warm_json.set("hits", static_cast<double>(warm.warm_start_hits));
  warm_json.set("rejects", static_cast<double>(warm.warm_start_rejects));
  warm_json.set("init_iterations_cold", cold.init_iterations);
  warm_json.set("init_iterations_warm", warm.init_iterations);
  doc.set("warm_start", std::move(warm_json));
  ehsim::benchio::maybe_write_bench_json(doc);

  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
