/// \file bench_fig8a_power_output.cpp
/// \brief Reproduces paper Fig. 8(a): microgenerator output power during the
/// 1 Hz tuning process.
///
/// "The waveform shows that when the ambient frequency shifts from 70 to
/// 71 Hz, as expected the output power drops down and goes up before and
/// after tuning. The simulated RMS power is 118 uW when the microgenerator
/// is tuned at 70 Hz and 117 uW when it is tuned at 71 Hz. These values
/// match well with the reported practical test value of 116 uW."
#include <cstdio>
#include <cstdlib>

#include "experiments/scenarios.hpp"

int main() {
  using namespace ehsim::experiments;

  ExperimentSpec spec = scenario1();
  if (std::getenv("EHSIM_BENCH_FULL") == nullptr) {
    spec.duration = 160.0;  // enough to cover shift + retune + recovery
  }
  spec.power_bin_width = 1.0;

  std::printf("=== Fig. 8(a): output power from the microgenerator, scenario 1 ===\n");
  std::printf("ambient 70 Hz -> 71 Hz at t = %.0f s; proposed engine\n\n",
              spec.excitation.events.front().time);

  const ScenarioResult result = run_experiment(spec);

  std::printf("# time[s]  mean_power[uW]  rms_power[uW]\n");
  for (std::size_t i = 0; i < result.power_time.size(); i += 2) {
    std::printf("%8.1f  %10.1f  %10.1f\n", result.power_time[i], result.power_mean[i] * 1e6,
                result.power_rms[i] * 1e6);
  }

  double tune_completed = 0.0;
  for (const auto& event : result.mcu_events) {
    if (event.type == ehsim::harvester::McuEvent::Type::kTuningCompleted) {
      tune_completed = event.time;
    }
  }

  std::printf("\nRMS power tuned at 70 Hz (pre-shift window):  %6.1f uW   (paper: 118 uW)\n",
              result.rms_power_before * 1e6);
  std::printf("RMS power tuned at 71 Hz (post-tune window):  %6.1f uW   (paper: 117 uW)\n",
              result.rms_power_after * 1e6);
  std::printf("practical measurement reported by the paper:   116 uW\n");
  std::printf("tuning completed at t = %.1f s; final resonance %.2f Hz\n", tune_completed,
              result.final_resonance_hz);
  return EXIT_SUCCESS;
}
