/// \file bench_table2_scenarios.cpp
/// \brief Reproduces paper Table II: CPU times of the existing and proposed
/// simulation techniques on the two tuning scenarios.
///
/// Paper values (P4 host): Scenario 1 (1 Hz retune) — SystemVision 2185 s
/// vs proposed 20.3 s; Scenario 2 (14 Hz retune) — 7 h vs 228 s. Both
/// engines here run the complete mixed-technology model (analogue blocks +
/// watchdog + MCU process) through the same co-simulation scheduler.
///
/// Default: scaled scenario spans (1/10 of the full durations) to keep the
/// bench interactive; EHSIM_BENCH_FULL=1 runs the full spans of DESIGN.md §7
/// and EHSIM_BENCH_SMOKE=1 shrinks them further for the CI bench-smoke job.
/// EHSIM_BENCH_JSON=<path> writes the measured rows as a JSON artifact.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "bench_json.hpp"
#include "experiments/scenarios.hpp"
#include "experiments/table_printer.hpp"

int main() {
  using namespace ehsim::experiments;

  const ehsim::benchio::BenchSpan mode = ehsim::benchio::bench_span();
  const double scale = mode == ehsim::benchio::BenchSpan::kFull    ? 1.0
                       : mode == ehsim::benchio::BenchSpan::kSmoke ? 0.01
                                                                   : 0.1;

  std::printf("=== Table II: CPU times of existing and proposed simulation techniques ===\n");
  std::printf("scenario spans scaled by %.2f (EHSIM_BENCH_FULL=1 for full spans)\n\n", scale);

  struct PaperRow {
    double existing_s;
    double proposed_s;
  };
  const PaperRow paper[2] = {{2185.0, 20.3}, {7.0 * 3600.0, 228.0}};

  TablePrinter table({"scenario", "technique", "CPU time", "steps", "NR iters",
                      "retuned to", "paper CPU (full span)"});

  ehsim::io::JsonValue doc = ehsim::io::JsonValue::make_object();
  doc.set("bench", "table2_scenarios");
  doc.set("span_scale", scale);
  ehsim::io::JsonValue doc_rows = ehsim::io::JsonValue::make_array();

  double ratio[2] = {0.0, 0.0};
  int row_index = 0;
  for (ExperimentSpec spec : {scenario1(), scenario2()}) {
    spec.duration *= scale;
    // Keep the frequency shift inside the scaled span.
    ExcitationEvent& shift = spec.excitation.events.front();
    shift.time = std::min(shift.time, spec.duration * 0.2);

    spec.engine = EngineKind::kProposed;
    const ScenarioResult proposed = run_experiment(spec);
    spec.engine = EngineKind::kSystemVision;
    const ScenarioResult existing = run_experiment(spec);
    ratio[row_index] = existing.cpu_seconds / proposed.cpu_seconds;

    table.add_row({spec.name, "existing (VHDL-AMS, Newton-Raphson)",
                   format_duration(existing.cpu_seconds), std::to_string(existing.stats.steps),
                   std::to_string(existing.stats.newton_iterations),
                   format_double(existing.final_resonance_hz, 4) + " Hz",
                   format_duration(paper[row_index].existing_s)});
    table.add_row({spec.name, "proposed (linearised state-space)",
                   format_duration(proposed.cpu_seconds), std::to_string(proposed.stats.steps),
                   "-", format_double(proposed.final_resonance_hz, 4) + " Hz",
                   format_duration(paper[row_index].proposed_s)});

    for (const ScenarioResult* result : {&existing, &proposed}) {
      ehsim::io::JsonValue entry = ehsim::io::JsonValue::make_object();
      entry.set("scenario", spec.name);
      entry.set("engine", result->engine);
      entry.set("sim_seconds", result->sim_seconds);
      entry.set("cpu_seconds", result->cpu_seconds);
      entry.set("steps", result->stats.steps);
      entry.set("newton_iterations", result->stats.newton_iterations);
      entry.set("final_resonance_hz", result->final_resonance_hz);
      doc_rows.push_back(std::move(entry));
    }
    ++row_index;
  }
  table.print(std::cout);
  doc.set("rows", std::move(doc_rows));
  doc.set("ratio_scenario1", ratio[0]);
  doc.set("ratio_scenario2", ratio[1]);

  std::printf("\nmeasured existing/proposed CPU ratios: scenario 1: %.1fx, scenario 2: %.1fx\n",
              ratio[0], ratio[1]);
  std::printf("paper ratios: scenario 1: %.0fx, scenario 2: %.0fx (commercial overhead\n"
              "not emulated here — measured ratios are a lower bound; see DESIGN.md)\n",
              paper[0].existing_s / paper[0].proposed_s,
              paper[1].existing_s / paper[1].proposed_s);
  ehsim::benchio::maybe_write_bench_json(doc);
  return EXIT_SUCCESS;
}
