/// \file bench_json.hpp
/// \brief Shared bench plumbing: span selection and the CI perf artifact.
///
/// The table benches honour two environment variables:
///   EHSIM_BENCH_SMOKE=1  — seconds-scale spans for the CI bench-smoke job,
///   EHSIM_BENCH_FULL=1   — the paper's full durations.
/// EHSIM_BENCH_JSON=<path> additionally writes the measured rows as a JSON
/// document (uploaded as a BENCH_*.json workflow artifact, so the perf
/// trajectory is recorded per push).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "io/json.hpp"
#include "io/spec_json.hpp"

namespace ehsim::benchio {

enum class BenchSpan { kSmoke, kDefault, kFull };

/// EHSIM_BENCH_SMOKE wins over EHSIM_BENCH_FULL when both are set (CI sets
/// only the former).
inline BenchSpan bench_span() {
  if (std::getenv("EHSIM_BENCH_SMOKE") != nullptr) {
    return BenchSpan::kSmoke;
  }
  if (std::getenv("EHSIM_BENCH_FULL") != nullptr) {
    return BenchSpan::kFull;
  }
  return BenchSpan::kDefault;
}

/// Write \p document to $EHSIM_BENCH_JSON when set; no-op otherwise.
inline void maybe_write_bench_json(const io::JsonValue& document) {
  const char* path = std::getenv("EHSIM_BENCH_JSON");
  if (path == nullptr || *path == '\0') {
    return;
  }
  io::write_file(path, document.dump(2) + "\n");
  std::printf("\nbench JSON written to %s\n", path);
}

}  // namespace ehsim::benchio
