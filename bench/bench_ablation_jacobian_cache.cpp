/// \file bench_ablation_jacobian_cache.cpp
/// \brief Ablation A6: Jacobian-reuse signatures.
///
/// The paper saves computation by retrieving linearised device values from
/// look-up tables instead of evaluating physical equations (§III-B). This
/// library takes the idea to its natural end point: a piecewise-linear
/// model's Jacobians are piecewise *constant*, so blocks certify unchanged
/// linearisations through cheap signatures (diode conductance bands,
/// quantised operating points) and the engine skips Jacobian assembly, the
/// LLE update and the Jyy factorisation entirely between segment crossings.
/// This bench measures what that is worth on the full harvester model, and
/// asserts the LLE-drift contract: the step controller observes the same
/// signature-driven drift sequence whether reuse is on or off (explicit
/// zero-drift observations on signature-stable refreshes), so both arms
/// march through the *same* steps and land on the same state bits.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "experiments/scenarios.hpp"
#include "experiments/table_printer.hpp"
#include "sim/harvester_session.hpp"

namespace {

struct Outcome {
  double cpu = 0.0;
  std::uint64_t steps = 0;
  std::uint64_t builds = 0;
  std::uint64_t reuses = 0;
  double min_step = 0.0;
  double max_step = 0.0;
  std::uint64_t step_time_hash = 0;  ///< FNV over the accepted-step time bits
  double v5 = 0.0;
};

Outcome run(bool reuse, double span) {
  using namespace ehsim;
  const auto params = experiments::experiment_params(experiments::charging_scenario(span));
  sim::HarvesterSession::Options options;
  options.solver.enable_jacobian_reuse = reuse;
  sim::HarvesterSession session(params, options);
  std::uint64_t hash = 1469598103934665603ull;
  session.add_observer([&hash](double t, std::span<const double>, std::span<const double>) {
    std::uint64_t bits;
    std::memcpy(&bits, &t, sizeof bits);
    hash ^= bits;
    hash *= 1099511628211ull;
  });
  session.run_until(span);
  Outcome out;
  out.step_time_hash = hash;
  out.cpu = session.cpu_seconds();
  out.steps = session.stats().steps;
  out.builds = session.stats().jacobian_builds;
  out.reuses = session.stats().jacobian_reuses;
  out.min_step = session.stats().min_step;
  out.max_step = session.stats().max_step;
  out.v5 = session.state()[session.system().assembler().state_index({1}, 4)];
  return out;
}

}  // namespace

int main() {
  using namespace ehsim::experiments;

  const bool full = std::getenv("EHSIM_BENCH_FULL") != nullptr;
  const double span = full ? 30.0 : 8.0;

  std::printf("=== Ablation A6: Jacobian-reuse signatures (extension of paper sec. III-B) ===\n");
  std::printf("supercap charging, %.0f s simulated span\n\n", span);

  const Outcome on = run(true, span);
  const Outcome off = run(false, span);

  TablePrinter table({"configuration", "CPU", "steps", "Jacobian rebuilds", "cache hits",
                      "V5 [V]"});
  table.add_row({"signatures on (default)", format_duration(on.cpu), std::to_string(on.steps),
                 std::to_string(on.builds), std::to_string(on.reuses),
                 format_double(on.v5, 5)});
  table.add_row({"signatures off (rebuild every step)", format_duration(off.cpu),
                 std::to_string(off.steps), std::to_string(off.builds),
                 std::to_string(off.reuses), format_double(off.v5, 5)});
  table.print(std::cout);

  std::printf("\nreuse skips %.0f%% of rebuilds (%.2fx end-to-end on this 11-state model;\n"
              "assembly+LU is what the skip saves, so the margin grows with model size).\n",
              100.0 * (1.0 - static_cast<double>(on.builds) / static_cast<double>(off.builds)),
              off.cpu / on.cpu);

  // LLE-drift contract: the controller observes signature-driven drift
  // (explicit zero on stable refreshes) in both arms, so the accepted-step
  // time sequences must be bit-identical. State bits may differ in the last
  // ulps — the reuse arm eliminates with the cached within-band Jacobians —
  // but the physics must agree far inside the PWL model tolerance.
  const bool step_identical = on.steps == off.steps && on.min_step == off.min_step &&
                              on.max_step == off.max_step &&
                              on.step_time_hash == off.step_time_hash;
  const double v5_rel_diff =
      std::abs(on.v5 - off.v5) / std::max({std::abs(on.v5), std::abs(off.v5), 1e-30});
  std::printf("reuse-on and reuse-off arms step-identical: %s "
              "(step-time hash %016llx, V5 rel. diff %.1e)\n",
              step_identical ? "YES" : "NO",
              static_cast<unsigned long long>(on.step_time_hash), v5_rel_diff);
  if (!step_identical || v5_rel_diff > 1e-9) {
    std::printf("MISMATCH: steps %llu vs %llu, V5 %.17g vs %.17g\n",
                static_cast<unsigned long long>(on.steps),
                static_cast<unsigned long long>(off.steps), on.v5, off.v5);
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
