/// \file bench_ablation_jacobian_cache.cpp
/// \brief Ablation A6: Jacobian-reuse signatures.
///
/// The paper saves computation by retrieving linearised device values from
/// look-up tables instead of evaluating physical equations (§III-B). This
/// library takes the idea to its natural end point: a piecewise-linear
/// model's Jacobians are piecewise *constant*, so blocks certify unchanged
/// linearisations through cheap signatures (diode conductance bands,
/// quantised operating points) and the engine skips Jacobian assembly, the
/// LLE update and the Jyy factorisation entirely between segment crossings.
/// This bench measures what that is worth on the full harvester model.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "experiments/scenarios.hpp"
#include "experiments/table_printer.hpp"
#include "sim/harvester_session.hpp"

namespace {

struct Outcome {
  double cpu = 0.0;
  std::uint64_t steps = 0;
  std::uint64_t builds = 0;
  std::uint64_t reuses = 0;
  double v5 = 0.0;
};

Outcome run(bool reuse, double span) {
  using namespace ehsim;
  const auto params = experiments::scenario_params(experiments::charging_scenario(span));
  sim::HarvesterSession::Options options;
  options.solver.enable_jacobian_reuse = reuse;
  sim::HarvesterSession session(params, options);
  session.run_until(span);
  Outcome out;
  out.cpu = session.cpu_seconds();
  out.steps = session.stats().steps;
  out.builds = session.stats().jacobian_builds;
  out.reuses = session.stats().jacobian_reuses;
  out.v5 = session.state()[session.system().assembler().state_index({1}, 4)];
  return out;
}

}  // namespace

int main() {
  using namespace ehsim::experiments;

  const bool full = std::getenv("EHSIM_BENCH_FULL") != nullptr;
  const double span = full ? 30.0 : 8.0;

  std::printf("=== Ablation A6: Jacobian-reuse signatures (extension of paper sec. III-B) ===\n");
  std::printf("supercap charging, %.0f s simulated span\n\n", span);

  const Outcome on = run(true, span);
  const Outcome off = run(false, span);

  TablePrinter table({"configuration", "CPU", "steps", "Jacobian rebuilds", "cache hits",
                      "V5 [V]"});
  table.add_row({"signatures on (default)", format_duration(on.cpu), std::to_string(on.steps),
                 std::to_string(on.builds), std::to_string(on.reuses),
                 format_double(on.v5, 5)});
  table.add_row({"signatures off (rebuild every step)", format_duration(off.cpu),
                 std::to_string(off.steps), std::to_string(off.builds),
                 std::to_string(off.reuses), format_double(off.v5, 5)});
  table.print(std::cout);

  std::printf("\nreuse skips %.0f%% of rebuilds for a %.2fx end-to-end speed-up at\n"
              "identical physics (the skip criterion is exact within PWL segments).\n",
              100.0 * (1.0 - static_cast<double>(on.builds) / static_cast<double>(off.builds)),
              off.cpu / on.cpu);
  return EXIT_SUCCESS;
}
