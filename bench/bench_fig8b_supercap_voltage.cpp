/// \file bench_fig8b_supercap_voltage.cpp
/// \brief Reproduces paper Fig. 8(b): simulated vs experimental supercap
/// voltage during the 1 Hz tuning scenario.
///
/// "As can be seen, the simulation waveform correlates well with the
/// experimental measurement." The physical measurement is substituted by a
/// perturbed-plant run (extra leakage and parasitic losses — exactly the
/// differences the paper blames for the residual deviation); the bench
/// quantifies the correlation with Pearson r and NRMSE.
#include <cstdio>
#include <cstdlib>

#include "experiments/metrics.hpp"
#include "experiments/reference_data.hpp"
#include "experiments/scenarios.hpp"

int main() {
  using namespace ehsim::experiments;

  ExperimentSpec spec = scenario1();
  if (std::getenv("EHSIM_BENCH_FULL") == nullptr) {
    spec.duration = 160.0;
  }

  std::printf("=== Fig. 8(b): supercapacitor voltage, simulation vs experiment ===\n");
  std::printf("scenario 1 (70 -> 71 Hz at t = %.0f s), %.0f s span\n\n",
              spec.excitation.events.front().time, spec.duration);

  const ScenarioResult sim = run_experiment(spec);
  const ExperimentalTrace measured = make_experimental_trace(spec, 1.0);

  const auto sim_on_grid = resample(sim.time, sim.vc, measured.time);

  std::printf("# time[s]  simulated_Vc[V]  measured_Vc[V]\n");
  for (std::size_t i = 0; i < measured.time.size(); i += 5) {
    std::printf("%8.1f  %12.4f  %12.4f\n", measured.time[i], sim_on_grid[i], measured.vc[i]);
  }

  const double r = pearson_correlation(sim_on_grid, measured.vc);
  const double err = nrmse(measured.vc, sim_on_grid);
  std::printf("\nPearson correlation simulation vs measurement: r = %.4f\n", r);
  std::printf("NRMSE (normalised by measured range):          %.3f\n", err);
  std::printf("paper: \"the simulation waveform correlates well with the experimental\n"
              "measurement\", residual differences attributed to leakage and parasitic\n"
              "loss — reproduced here by construction of the measurement model.\n");
  return EXIT_SUCCESS;
}
