/// \file bench_microkernels.cpp
/// \brief Ablation A5: micro-kernel costs behind the Tables I/II story.
///
/// Times the primitive operations whose balance decides the engine
/// comparison: the dense LU factorisation the Newton-Raphson baseline pays
/// at every iteration (cubic in the model size), the Eq. 4 elimination
/// solve, the Adams-Bashforth update, table lookups, and the full-system
/// eval/jacobian assembly of the 11-state harvester model.
#include <benchmark/benchmark.h>

#include <random>

#include "core/assembler.hpp"
#include "experiments/scenarios.hpp"
#include "harvester/harvester_system.hpp"
#include "linalg/eigen.hpp"
#include "linalg/lu.hpp"
#include "ode/ab_coefficients.hpp"
#include "ode/explicit_integrators.hpp"

namespace {

ehsim::linalg::Matrix random_dominant(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  ehsim::linalg::Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      a(r, c) = dist(rng);
      sum += std::abs(a(r, c));
    }
    a(r, r) = sum + 1.0;
  }
  return a;
}

/// Dense LU — the per-Newton-iteration cost of the baseline engines.
void BM_LuFactor(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_dominant(n, 7);
  ehsim::linalg::LuFactorization lu;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lu.factor(a));
  }
  state.SetLabel("n=" + std::to_string(n));
}
BENCHMARK(BM_LuFactor)->Arg(4)->Arg(8)->Arg(11)->Arg(15)->Arg(22)->Arg(32);

/// The Eq. 4 elimination solve of the proposed engine (4x4 for the full
/// harvester).
void BM_Eq4Solve(benchmark::State& state) {
  const auto a = random_dominant(4, 11);
  ehsim::linalg::LuFactorization lu(a);
  std::vector<double> rhs{1.0, -2.0, 0.5, 3.0};
  std::vector<double> x(4);
  for (auto _ : state) {
    lu.solve(rhs, x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_Eq4Solve);

/// Variable-step AB coefficient computation + state update (11 states).
void BM_AbStep(benchmark::State& state) {
  ehsim::ode::AbHistory history(11, 2);
  std::vector<double> f(11, 0.1);
  history.push(0.0, f);
  history.push(1e-5, f);
  std::vector<double> x(11, 1.0);
  double t = 1e-5;
  for (auto _ : state) {
    t += 1e-5;
    history.step(t, x);
    history.push(t, f);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_AbStep);

/// Full-system eval + Jacobian assembly of the 11-state harvester.
void BM_HarvesterAssembly(benchmark::State& state) {
  using namespace ehsim;
  const auto params = experiments::experiment_params(experiments::charging_scenario(1.0));
  harvester::HarvesterSystem system(params, harvester::DeviceEvalMode::kPwlTable, false);
  auto& assembler = system.assembler();
  linalg::Vector x(assembler.num_states());
  linalg::Vector y(assembler.num_nets());
  linalg::Vector fx(assembler.num_states());
  linalg::Vector fy(assembler.num_nets());
  linalg::Matrix jxx, jxy, jyx, jyy;
  assembler.jacobians(0.0, x.span(), y.span(), jxx, jxy, jyx, jyy);
  double t = 0.0;
  for (auto _ : state) {
    t += 1e-5;
    assembler.eval(t, x.span(), y.span(), fx.span(), fy.span());
    assembler.jacobians(t, x.span(), y.span(), jxx, jxy, jyx, jyy);
    benchmark::DoNotOptimize(fx.data());
  }
}
BENCHMARK(BM_HarvesterAssembly);

/// Jacobian signature check — the cost of certifying Jacobian reuse.
void BM_JacobianSignature(benchmark::State& state) {
  using namespace ehsim;
  const auto params = experiments::experiment_params(experiments::charging_scenario(1.0));
  harvester::HarvesterSystem system(params, harvester::DeviceEvalMode::kPwlTable, false);
  auto& assembler = system.assembler();
  linalg::Vector x(assembler.num_states());
  linalg::Vector y(assembler.num_nets());
  for (auto _ : state) {
    benchmark::DoNotOptimize(assembler.jacobian_signature(0.0, x.span(), y.span()));
  }
}
BENCHMARK(BM_JacobianSignature);

/// QR eigenvalues of the 11x11 eliminated system — the Eq. 7 stability
/// recomputation (amortised over hundreds of steps).
void BM_Eigenvalues11(benchmark::State& state) {
  const auto a = random_dominant(11, 23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ehsim::linalg::eigenvalues(a));
  }
}
BENCHMARK(BM_Eigenvalues11);

}  // namespace

BENCHMARK_MAIN();
