/// \file bench_scaling.cpp
/// \brief Ablation A4: model-size scaling and the stiffness caveat.
///
/// Two sweeps: (a) multiplier stage count 1..12 (model grows from 7 to 18
/// states): the baseline pays a cubically growing LU per Newton iteration,
/// but the proposed engine is not free either — more simultaneously
/// conducting diodes stiffen the input-filter node, tightening its Eq. 7
/// stability cap. (b) The paper's own caveat: "the technique is unlikely to
/// offer a speed advantage when applied to strongly stiff systems" — the
/// Eq. 13 coil variant with decreasing inductance adds a progressively
/// faster parasitic mode and the explicit step count grows accordingly.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "baseline/nr_engine.hpp"
#include "core/linearised_solver.hpp"
#include "experiments/cpu_timer.hpp"
#include "experiments/scenarios.hpp"
#include "experiments/table_printer.hpp"
#include "sim/harvester_session.hpp"

namespace {

double time_engine(ehsim::experiments::EngineKind kind,
                   const ehsim::harvester::HarvesterParams& params, double span,
                   std::uint64_t* steps_out = nullptr) {
  using namespace ehsim;
  sim::HarvesterSession::Options options;
  options.mode = experiments::device_mode_for(kind);
  options.engine_factory = [kind](core::SystemAssembler& system) {
    return experiments::make_engine(kind, system);
  };
  sim::HarvesterSession session(params, options);
  session.run_until(span);
  if (steps_out != nullptr) {
    *steps_out = session.stats().steps;
  }
  return session.cpu_seconds();
}

}  // namespace

int main() {
  using namespace ehsim::experiments;

  const bool full = std::getenv("EHSIM_BENCH_FULL") != nullptr;
  const double span = full ? 5.0 : 1.5;

  std::printf("=== Ablation A4: model-size scaling and stiffness (paper section II) ===\n\n");
  std::printf("--- (a) multiplier stages: states grow, LU cost grows cubically ---\n");

  TablePrinter table({"stages", "states", "proposed CPU", "NR baseline CPU", "speed-up"});
  for (std::size_t stages : {1u, 3u, 5u, 8u, 12u}) {
    auto params = experiment_params(charging_scenario(span));
    params.multiplier.stages = stages;
    const double proposed = time_engine(EngineKind::kProposed, params, span);
    const double baseline = time_engine(EngineKind::kSystemVision, params, span);
    table.add_row({std::to_string(stages), std::to_string(stages + 1 + 2 + 3),
                   format_duration(proposed), format_duration(baseline),
                   format_double(baseline / proposed, 3) + "x"});
  }
  table.print(std::cout);

  std::printf("\n--- (b) stiffness: Eq. 13 coil variant, decreasing Lc ---\n");
  TablePrinter stiff({"Lc [mH]", "proposed CPU", "proposed steps", "NR baseline CPU",
                      "speed-up"});
  for (double lc : {50e-3, 20e-3, 9.5e-3, 4e-3}) {
    auto params = experiment_params(charging_scenario(span));
    params.generator.coil_inductance = lc;
    std::uint64_t steps = 0;
    const double proposed = time_engine(EngineKind::kProposed, params, span, &steps);
    const double baseline = time_engine(EngineKind::kSystemVision, params, span);
    char label[32];
    std::snprintf(label, sizeof label, "%.1f", lc * 1e3);
    stiff.add_row({label, format_duration(proposed), std::to_string(steps),
                   format_duration(baseline), format_double(baseline / proposed, 3) + "x"});
  }
  stiff.print(std::cout);
  std::printf("\nsmaller Lc shortens the coil time constant; the Eq. 7 cap forces more\n"
              "explicit steps (see the step column) while the implicit baseline's step\n"
              "count is stability-immune — the paper's stiff-system caveat, quantified.\n");
  return EXIT_SUCCESS;
}
