/// \file bench_scaling.cpp
/// \brief Ablation A4: model-size scaling and the stiffness caveat.
///
/// Two sweeps: (a) multiplier stage count 1..12 (model grows from 7 to 18
/// states): the baseline pays a cubically growing LU per Newton iteration,
/// but the proposed engine is not free either — more simultaneously
/// conducting diodes stiffen the input-filter node, tightening its Eq. 7
/// stability cap. (b) The paper's own caveat: "the technique is unlikely to
/// offer a speed advantage when applied to strongly stiff systems" — the
/// Eq. 13 coil variant with decreasing inductance adds a progressively
/// faster parasitic mode and the explicit step count grows accordingly.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "baseline/nr_engine.hpp"
#include "bench_json.hpp"
#include "core/linearised_solver.hpp"
#include "experiments/cpu_timer.hpp"
#include "experiments/scenarios.hpp"
#include "experiments/table_printer.hpp"
#include "sim/harvester_session.hpp"

namespace {

double time_engine(ehsim::experiments::EngineKind kind,
                   const ehsim::harvester::HarvesterParams& params, double span,
                   std::uint64_t* steps_out = nullptr) {
  using namespace ehsim;
  sim::HarvesterSession::Options options;
  options.mode = experiments::device_mode_for(kind);
  options.engine_factory = [kind](core::SystemAssembler& system) {
    return experiments::make_engine(kind, system);
  };
  sim::HarvesterSession session(params, options);
  session.run_until(span);
  if (steps_out != nullptr) {
    *steps_out = session.stats().steps;
  }
  return session.cpu_seconds();
}

}  // namespace

int main() {
  using namespace ehsim::experiments;

  const bool full = std::getenv("EHSIM_BENCH_FULL") != nullptr;
  const double span = full ? 5.0 : 1.5;

  std::printf("=== Ablation A4: model-size scaling and stiffness (paper section II) ===\n\n");
  std::printf("--- (a) multiplier stages: states grow, LU cost grows cubically ---\n");

  TablePrinter table({"stages", "states", "proposed CPU", "NR baseline CPU", "speed-up"});
  for (std::size_t stages : {1u, 3u, 5u, 8u, 12u}) {
    auto params = experiment_params(charging_scenario(span));
    params.multiplier.stages = stages;
    const double proposed = time_engine(EngineKind::kProposed, params, span);
    const double baseline = time_engine(EngineKind::kSystemVision, params, span);
    table.add_row({std::to_string(stages), std::to_string(stages + 1 + 2 + 3),
                   format_duration(proposed), format_duration(baseline),
                   format_double(baseline / proposed, 3) + "x"});
  }
  table.print(std::cout);

  std::printf("\n--- (b) stiffness: Eq. 13 coil variant, decreasing Lc ---\n");
  TablePrinter stiff({"Lc [mH]", "proposed CPU", "proposed steps", "NR baseline CPU",
                      "speed-up"});
  for (double lc : {50e-3, 20e-3, 9.5e-3, 4e-3}) {
    auto params = experiment_params(charging_scenario(span));
    params.generator.coil_inductance = lc;
    std::uint64_t steps = 0;
    const double proposed = time_engine(EngineKind::kProposed, params, span, &steps);
    const double baseline = time_engine(EngineKind::kSystemVision, params, span);
    char label[32];
    std::snprintf(label, sizeof label, "%.1f", lc * 1e3);
    stiff.add_row({label, format_duration(proposed), std::to_string(steps),
                   format_duration(baseline), format_double(baseline / proposed, 3) + "x"});
  }
  stiff.print(std::cout);
  std::printf("\nsmaller Lc shortens the coil time constant; the Eq. 7 cap forces more\n"
              "explicit steps (see the step column) while the implicit baseline's step\n"
              "count is stability-immune — the paper's stiff-system caveat, quantified.\n");

  // (c) Batch-size scaling of the lockstep kernel: N identical jobs cost one
  // integration plus N-1 state copies, so the speedup over the per-job serial
  // reference approaches N. Identical members stay bit-identical; the expm
  // arm is bounded-error by construction.
  std::printf("\n--- (c) lockstep batch-size scaling: N identical jobs, 1 thread ---\n");
  TablePrinter lockstep_table(
      {"jobs", "per-job wall", "lockstep wall", "speed-up", "expm wall", "expm segments"});
  namespace io = ehsim::io;
  io::JsonValue rows = io::JsonValue::make_array();
  double speedup_at_four = 0.0;
  bool exact = true;
  bool bounded = true;
  for (std::size_t n : {2u, 4u, 8u}) {
    const std::vector<ScenarioJob> jobs(n, ScenarioJob{charging_scenario(span), std::nullopt});

    WallTimer serial_timer;
    const auto serial = run_scenario_batch(jobs, BatchOptions{.threads = 1});
    const double serial_wall = serial_timer.elapsed_seconds();

    BatchStats lockstep_stats;
    WallTimer lockstep_timer;
    const auto lockstep = run_scenario_batch(
        jobs, BatchOptions{.threads = 1, .batch_kernel = BatchKernel::kLockstep},
        &lockstep_stats);
    const double lockstep_wall = lockstep_timer.elapsed_seconds();

    BatchStats expm_stats;
    WallTimer expm_timer;
    const auto expm = run_scenario_batch(
        jobs, BatchOptions{.threads = 1, .batch_kernel = BatchKernel::kLockstepExpm},
        &expm_stats);
    const double expm_wall = expm_timer.elapsed_seconds();

    for (std::size_t i = 0; i < n; ++i) {
      exact = exact && lockstep[i].final_vc == serial[i].final_vc &&
              lockstep[i].vc == serial[i].vc;
      bounded = bounded && std::abs(expm[i].final_vc - serial[i].final_vc) <=
                               1e-3 * std::max(1.0, std::abs(serial[i].final_vc));
    }
    const double speedup = serial_wall / lockstep_wall;
    if (n == 4u) {
      speedup_at_four = speedup;
    }
    lockstep_table.add_row({std::to_string(n), format_duration(serial_wall),
                            format_duration(lockstep_wall),
                            format_double(speedup, 3) + "x", format_duration(expm_wall),
                            std::to_string(expm_stats.expm_segments)});

    io::JsonValue row = io::JsonValue::make_object();
    row.set("jobs", static_cast<double>(n));
    row.set("serial_wall_seconds", serial_wall);
    row.set("lockstep_wall_seconds", lockstep_wall);
    row.set("speedup_vs_serial", speedup);
    row.set("shared_factorisations", lockstep_stats.shared_factorisations);
    row.set("expm_wall_seconds", expm_wall);
    row.set("expm_segments", expm_stats.expm_segments);
    rows.push_back(std::move(row));
  }
  lockstep_table.print(std::cout);
  std::printf("\nlockstep bit-identical to per-job on identical batches: %s\n",
              exact ? "YES" : "NO");
  std::printf("expm finals within 1e-3 of per-job: %s\n", bounded ? "YES" : "NO");

  io::JsonValue doc = io::JsonValue::make_object();
  doc.set("bench", "scaling_lockstep_batch");
  doc.set("rows", std::move(rows));
  ehsim::benchio::maybe_write_bench_json(doc);

  // A 4-member identical batch must come in at least 2x over per-job serial
  // (it deletes 3 of 4 integrations) and must not trade away correctness.
  if (!exact || !bounded || speedup_at_four < 2.0) {
    std::printf("FAIL: lockstep identical-batch speedup %.2fx < 2x at 4 jobs "
                "(or exactness lost)\n",
                speedup_at_four);
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
