/// \file bench_fig9_wide_tuning.cpp
/// \brief Reproduces paper Fig. 9: scenario 2 — the 14 Hz (maximum range)
/// tuning process, simulation vs experimental supercapacitor voltage.
///
/// "In Scenario 2, we increase the frequency variation to 14 Hz which
/// presents a more challenging simulation case due to the wider frequency
/// range. Yet there is close correlation between simulation and
/// experimental waveforms."
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "experiments/cpu_timer.hpp"
#include "experiments/metrics.hpp"
#include "experiments/reference_data.hpp"
#include "experiments/scenarios.hpp"
#include "experiments/sweep.hpp"

namespace {

/// Wide-tuning design sweep: the scenario-2 retune repeated for a fan of
/// target frequencies, expressed as a declarative SweepSpec over the shift
/// event's target frequency and executed serially, across a 4-thread
/// BatchRunner pool, and once more with cross-job operating-point warm
/// starts. Parallel and warm-started results must be bit-identical to
/// serial (the sweep only varies a mid-run event, so every job shares one
/// structural signature and seeds converge to the exact cold operating
/// point).
void run_batch_sweep() {
  using namespace ehsim::experiments;

  SweepSpec sweep;
  sweep.base = scenario2();
  sweep.base.name = "wide-tuning";
  // CI smoke keeps the sweep seconds-scale; the counters (steps, consistency
  // iterations, warm-start hits) stay deterministic at any span. The shift
  // sits at 3/4 of the span: until then every job is a clone of job 0, which
  // is the regime the lockstep kernel amortises (one integration drives the
  // whole batch).
  sweep.base.duration =
      ehsim::benchio::bench_span() == ehsim::benchio::BenchSpan::kSmoke ? 40.0 : 120.0;
  sweep.base.excitation.events.front().time = 0.75 * sweep.base.duration;
  sweep.axes.push_back(
      SweepAxis{"excitation.event[0].frequency_hz", {66.0, 69.0, 72.0, 75.0, 78.0, 81.0}, {}});
  const std::vector<ExperimentSpec> jobs = sweep.expand();

  std::printf("\n=== wide-tuning SweepSpec through sim::BatchRunner (%zu jobs) ===\n",
              jobs.size());

  BatchStats cold_batch;
  WallTimer serial_timer;
  const auto serial = run_sweep(sweep, BatchOptions{.threads = 1}, &cold_batch);
  const double serial_wall = serial_timer.elapsed_seconds();

  BatchStats batch;
  WallTimer parallel_timer;
  const auto parallel = run_sweep(sweep, BatchOptions{.threads = 4}, &batch);
  const double parallel_wall = parallel_timer.elapsed_seconds();

  BatchStats warm_batch;
  WallTimer warm_timer;
  const auto warm =
      run_sweep(sweep, BatchOptions{.threads = 4, .warm_start = true}, &warm_batch);
  const double warm_wall = warm_timer.elapsed_seconds();

  // Lockstep arms run the same sweep serially on one global clock; the
  // pre-shift clone prefix costs one integration instead of six. Bounded
  // error vs the per-job reference once the jobs diverge.
  BatchStats lockstep_batch;
  WallTimer lockstep_timer;
  const auto lockstep = run_sweep(
      sweep, BatchOptions{.threads = 1, .batch_kernel = BatchKernel::kLockstep},
      &lockstep_batch);
  const double lockstep_wall = lockstep_timer.elapsed_seconds();

  BatchStats expm_batch;
  WallTimer expm_timer;
  const auto expm = run_sweep(
      sweep, BatchOptions{.threads = 1, .batch_kernel = BatchKernel::kLockstepExpm},
      &expm_batch);
  const double expm_wall = expm_timer.elapsed_seconds();

  bool lockstep_bounded = lockstep.size() == serial.size() && expm.size() == serial.size();
  for (std::size_t i = 0; lockstep_bounded && i < serial.size(); ++i) {
    const double scale = std::max(1.0, std::abs(serial[i].final_vc));
    lockstep_bounded = std::abs(lockstep[i].final_vc - serial[i].final_vc) <= 1e-3 * scale &&
                       std::abs(expm[i].final_vc - serial[i].final_vc) <= 1e-3 * scale;
  }

  bool identical = serial.size() == parallel.size() && serial.size() == warm.size();
  for (std::size_t i = 0; identical && i < serial.size(); ++i) {
    identical = serial[i].time == parallel[i].time && serial[i].vc == parallel[i].vc &&
                serial[i].final_resonance_hz == parallel[i].final_resonance_hz &&
                serial[i].time == warm[i].time && serial[i].vc == warm[i].vc &&
                serial[i].final_resonance_hz == warm[i].final_resonance_hz;
  }

  std::printf("# target[Hz]  final_f0r[Hz]  final_Vc[V]  steps\n");
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    std::printf("%10.1f  %12.2f  %11.4f  %8llu\n",
                jobs[i].excitation.events.front().frequency_hz,
                parallel[i].final_resonance_hz, parallel[i].final_vc,
                static_cast<unsigned long long>(parallel[i].stats.steps));
  }
  std::printf("\nserial (1 thread):   %.2f s wall\n", serial_wall);
  std::printf("parallel (4 threads): %.2f s wall  (%.2fx, %u hardware threads)\n",
              parallel_wall, serial_wall / parallel_wall,
              std::thread::hardware_concurrency());
  std::printf("shared diode-table hits in the parallel batch: %zu of %zu jobs\n",
              batch.shared_table_hits, batch.jobs);
  std::printf("warm starts (4 threads): %.2f s wall, %zu/%zu jobs seeded, %zu rejected\n",
              warm_wall, warm_batch.warm_start_hits, warm_batch.jobs,
              warm_batch.warm_start_rejects);
  std::printf("consistency iterations: %llu cold -> %llu warm-started\n",
              static_cast<unsigned long long>(cold_batch.init_iterations),
              static_cast<unsigned long long>(warm_batch.init_iterations));
  std::printf("parallel+warm traces bit-identical to serial: %s\n",
              identical ? "YES" : "NO");
  const double lockstep_speedup = serial_wall / lockstep_wall;
  std::printf("\nlockstep (1 thread):      %.2f s wall  (%.2fx vs per-job serial)\n",
              lockstep_wall, lockstep_speedup);
  std::printf("  %llu shared groups, %llu shared factorisations\n",
              static_cast<unsigned long long>(lockstep_batch.lockstep_groups),
              static_cast<unsigned long long>(lockstep_batch.shared_factorisations));
  std::printf("lockstep_expm (1 thread): %.2f s wall  (%.2fx), %llu expm segments\n",
              expm_wall, serial_wall / expm_wall,
              static_cast<unsigned long long>(expm_batch.expm_segments));
  std::printf("lockstep finals within 1e-3 of per-job serial: %s\n",
              lockstep_bounded ? "YES" : "NO");
  if (!identical || warm_batch.init_iterations >= cold_batch.init_iterations) {
    std::exit(EXIT_FAILURE);
  }
  // The lockstep kernel earns its keep or the bench fails: the clone-prefix
  // sweep must run at least 2x faster than the per-job serial reference,
  // with real sharing and bounded error.
  if (!lockstep_bounded || lockstep_batch.shared_factorisations == 0 ||
      lockstep_speedup < 2.0) {
    std::printf("FAIL: lockstep speedup %.2fx < 2x (or unbounded error / no sharing)\n",
                lockstep_speedup);
    std::exit(EXIT_FAILURE);
  }

  // CI perf artifact: the warm-start counters ride the BENCH_*.json
  // trajectory next to the wall-clock numbers.
  namespace io = ehsim::io;
  io::JsonValue doc = io::JsonValue::make_object();
  doc.set("bench", "fig9_wide_tuning_sweep");
  doc.set("jobs", static_cast<double>(batch.jobs));
  doc.set("serial_wall_seconds", serial_wall);
  doc.set("parallel_wall_seconds", parallel_wall);
  doc.set("warm_wall_seconds", warm_wall);
  doc.set("shared_table_hits", static_cast<double>(batch.shared_table_hits));
  io::JsonValue warm_json = io::JsonValue::make_object();
  warm_json.set("hits", static_cast<double>(warm_batch.warm_start_hits));
  warm_json.set("rejects", static_cast<double>(warm_batch.warm_start_rejects));
  warm_json.set("init_iterations_cold", cold_batch.init_iterations);
  warm_json.set("init_iterations_warm", warm_batch.init_iterations);
  doc.set("warm_start", std::move(warm_json));
  io::JsonValue lockstep_json = io::JsonValue::make_object();
  lockstep_json.set("wall_seconds", lockstep_wall);
  lockstep_json.set("speedup_vs_serial", lockstep_speedup);
  lockstep_json.set("groups", lockstep_batch.lockstep_groups);
  lockstep_json.set("shared_factorisations", lockstep_batch.shared_factorisations);
  lockstep_json.set("expm_wall_seconds", expm_wall);
  lockstep_json.set("expm_segments", expm_batch.expm_segments);
  doc.set("lockstep", std::move(lockstep_json));
  ehsim::benchio::maybe_write_bench_json(doc);
}

}  // namespace

int main() {
  using namespace ehsim::experiments;

  ExperimentSpec spec = scenario2();
  if (ehsim::benchio::bench_span() == ehsim::benchio::BenchSpan::kSmoke) {
    spec.duration = 120.0;  // seconds-scale CI smoke span (shift + burst start)
  } else if (std::getenv("EHSIM_BENCH_FULL") == nullptr) {
    spec.duration = 330.0;  // covers shift + the long actuation burst + recovery
  }
  const ExcitationEvent& shift = spec.excitation.events.front();

  std::printf("=== Fig. 9: scenario 2 (14 Hz tuning), simulation vs experiment ===\n");
  std::printf("ambient %.1f Hz -> %.1f Hz at t = %.0f s, %.0f s span\n\n",
              spec.excitation.initial_frequency_hz, shift.frequency_hz, shift.time,
              spec.duration);

  const ScenarioResult sim = run_experiment(spec);
  const ExperimentalTrace measured = make_experimental_trace(spec, 2.0);
  const auto sim_on_grid = resample(sim.time, sim.vc, measured.time);

  std::printf("# time[s]  simulated_Vc[V]  measured_Vc[V]\n");
  for (std::size_t i = 0; i < measured.time.size(); i += 5) {
    std::printf("%8.1f  %12.4f  %12.4f\n", measured.time[i], sim_on_grid[i], measured.vc[i]);
  }

  std::printf("\nMCU activity:\n");
  for (const auto& event : sim.mcu_events) {
    const char* what = "?";
    switch (event.type) {
      case ehsim::harvester::McuEvent::Type::kWakeup:
        what = "wakeup (Vc)";
        break;
      case ehsim::harvester::McuEvent::Type::kEnergyLow:
        what = "energy low (Vc)";
        break;
      case ehsim::harvester::McuEvent::Type::kFrequencyMatched:
        what = "frequency matched (f0r)";
        break;
      case ehsim::harvester::McuEvent::Type::kTuningStarted:
        what = "tuning started (target Hz)";
        break;
      case ehsim::harvester::McuEvent::Type::kTuningCompleted:
        what = "tuning completed (f0r)";
        break;
      case ehsim::harvester::McuEvent::Type::kTuningAborted:
        what = "tuning aborted (Vc)";
        break;
    }
    std::printf("  t=%8.1f s  %-28s %.3f\n", event.time, what, event.value);
  }

  const double r = pearson_correlation(sim_on_grid, measured.vc);
  const double err = nrmse(measured.vc, sim_on_grid);
  std::printf("\nfinal resonance: %.2f Hz (target %.1f Hz)\n", sim.final_resonance_hz,
              shift.frequency_hz);
  std::printf("Pearson correlation simulation vs measurement: r = %.4f\n", r);
  std::printf("NRMSE:                                          %.3f\n", err);
  std::printf("paper: \"our technique is accurate even for energy harvester with a wide\n"
              "frequency tuning range\".\n");

  run_batch_sweep();
  return EXIT_SUCCESS;
}
